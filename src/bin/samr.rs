//! `samr` — command-line front end for the SAMR meta-partitioner
//! reproduction.
//!
//! ```text
//! samr generate <app> [--config paper|reduced|smoke] [--seed N] [--binary] [--out FILE]
//! samr analyze  <trace-file>
//! samr simulate <trace-file> [--partitioner NAME] [--nprocs N]
//! samr compare  <trace-file> [--nprocs N]
//! samr apps
//! ```
//!
//! `generate` runs an application kernel and writes its hierarchy trace
//! (JSON-lines by default, compact binary with `--binary`); `analyze`
//! runs the paper's model over a trace and prints the per-step penalties;
//! `simulate` partitions every snapshot and prints the measured per-step
//! metrics; `compare` runs the META1 static-vs-dynamic comparison.

use samr::apps::{generate_trace, AppKind, TraceGenConfig};
use samr::meta::compare_on_trace;
use samr::model::ModelPipeline;
use samr::partition::{
    DomainSfcPartitioner, HybridPartitioner, PatchPartitioner, Partitioner,
};
use samr::sim::{simulate_trace, SimConfig};
use samr::trace::io::{decode_binary, encode_binary, read_jsonl, write_jsonl};
use samr::trace::HierarchyTrace;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  samr generate <app> [--config paper|reduced|smoke] [--seed N] [--binary] [--out FILE]\n  samr analyze  <trace-file>\n  samr simulate <trace-file> [--partitioner domain|patch|hybrid] [--nprocs N]\n  samr compare  <trace-file> [--nprocs N]\n  samr apps"
    );
    ExitCode::from(2)
}

fn parse_app(name: &str) -> Option<AppKind> {
    match name.to_ascii_uppercase().as_str() {
        "TP2D" => Some(AppKind::Tp2d),
        "BL2D" => Some(AppKind::Bl2d),
        "SC2D" => Some(AppKind::Sc2d),
        "RM2D" => Some(AppKind::Rm2d),
        _ => None,
    }
}

/// Value of `--flag V` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_trace(path: &str) -> Result<HierarchyTrace, String> {
    let mut file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut head = [0u8; 8];
    let n = file.read(&mut head).map_err(|e| format!("read {path}: {e}"))?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    if n == 8 && &head == b"SAMRTRC1" {
        let mut bytes = Vec::new();
        BufReader::new(file)
            .read_to_end(&mut bytes)
            .map_err(|e| format!("read {path}: {e}"))?;
        decode_binary(bytes.into()).map_err(|e| format!("decode {path}: {e}"))
    } else {
        read_jsonl(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let app = args
        .first()
        .and_then(|a| parse_app(a))
        .ok_or("expected an application: TP2D | BL2D | SC2D | RM2D")?;
    let mut cfg = match flag_value(args, "--config").as_deref() {
        None | Some("paper") => TraceGenConfig::paper(),
        Some("reduced") => samr::experiments::configs::reduced(),
        Some("smoke") => TraceGenConfig::smoke(),
        Some(other) => return Err(format!("unknown config '{other}'")),
    };
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    }
    eprintln!(
        "generating {} trace: {} steps, base {:?}, {} levels …",
        app.name(),
        cfg.steps,
        cfg.base_cells,
        cfg.max_levels
    );
    let trace = generate_trace(app, &cfg);
    let out = flag_value(args, "--out")
        .unwrap_or_else(|| format!("{}.trace", app.name().to_lowercase()));
    let mut file = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    if has_flag(args, "--binary") {
        file.write_all(&encode_binary(&trace))
            .map_err(|e| format!("write {out}: {e}"))?;
    } else {
        write_jsonl(&trace, &mut file).map_err(|e| format!("write {out}: {e}"))?;
    }
    eprintln!("wrote {} snapshots to {out}", trace.len());
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let states = ModelPipeline::new().run(&trace);
    println!("step,beta_l,beta_c,beta_m,d1,d2,d3,request,offer,points,workload");
    for (s, snap) in states.iter().zip(&trace.snapshots) {
        println!(
            "{},{:.6},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}",
            s.step,
            s.beta_l,
            s.beta_c,
            s.beta_m,
            s.point.d1,
            s.point.d2,
            s.point.d3,
            s.tradeoff2.request,
            s.tradeoff2.offer,
            snap.hierarchy.total_points(),
            snap.hierarchy.workload()
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let nprocs: usize = flag_value(args, "--nprocs")
        .map(|v| v.parse().map_err(|e| format!("bad nprocs: {e}")))
        .transpose()?
        .unwrap_or(16);
    let partitioner: Box<dyn Partitioner + Sync> =
        match flag_value(args, "--partitioner").as_deref() {
            None | Some("hybrid") => Box::new(HybridPartitioner::default()),
            Some("domain") => Box::new(DomainSfcPartitioner::default()),
            Some("patch") => Box::new(PatchPartitioner::default()),
            Some(other) => return Err(format!("unknown partitioner '{other}'")),
        };
    let cfg = SimConfig {
        nprocs,
        ..SimConfig::default()
    };
    let res = simulate_trace(&trace, partitioner.as_ref(), &cfg);
    println!("# partitioner: {} on {} processors", res.partitioner, nprocs);
    println!("step,load_imbalance,rel_comm,rel_migration,comm_cells,migration_cells,step_time");
    for s in &res.steps {
        println!(
            "{},{:.6},{:.6},{:.6},{},{},{:.1}",
            s.step, s.load_imbalance, s.rel_comm, s.rel_migration, s.comm_cells,
            s.migration_cells, s.step_time
        );
    }
    eprintln!("total estimated execution time: {:.0}", res.total_time);
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let nprocs: usize = flag_value(args, "--nprocs")
        .map(|v| v.parse().map_err(|e| format!("bad nprocs: {e}")))
        .transpose()?
        .unwrap_or(16);
    let cfg = SimConfig {
        nprocs,
        ..SimConfig::default()
    };
    let res = compare_on_trace(&trace, &cfg);
    println!("partitioner,total_time,mean_imbalance,mean_rel_comm,mean_rel_migration");
    for r in res
        .static_runs
        .iter()
        .chain([&res.octant_run, &res.meta_run])
    {
        println!(
            "{},{:.0},{:.4},{:.4},{:.4}",
            r.name, r.total_time, r.mean_imbalance, r.mean_rel_comm, r.mean_rel_migration
        );
    }
    eprintln!(
        "meta vs best static: {:.3}; meta vs worst static: {:.3}",
        res.meta_vs_best(),
        res.meta_vs_worst()
    );
    Ok(())
}

fn cmd_apps() -> Result<(), String> {
    let cfg = TraceGenConfig::paper();
    println!("app,description");
    for kind in AppKind::ALL {
        let kernel = samr::apps::tracegen::make_kernel(kind, &cfg);
        println!("{},{}", kind.name(), kernel.description());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "compare" => cmd_compare(rest),
        "apps" => cmd_apps(),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
