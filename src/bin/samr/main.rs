//! `samr` — command-line front end for the SAMR meta-partitioner
//! reproduction.
//!
//! ```text
//! samr generate <app> [--config paper|reduced|smoke] [--seed N] [--binary] [--out FILE]
//! samr analyze  <trace-file>
//! samr simulate <trace-file> [--partitioner NAME] [--nprocs N]
//! samr compare  <trace-file> [--nprocs N]
//! samr campaign [--apps A,B] [--dims 2,3] [--partitioners P,Q] [--nprocs N,M]
//!               [--ghost-widths G,H] [--config paper|reduced|smoke]
//!               [--policies static,adaptive:balance,…]
//!               [--machines uniform,fast-net,slow-net,slow-cpu] [--out DIR]
//!               [--spec FILE] [--threads N] [--shard I/N | --workers N]
//!               [--shard-strategy round-robin|size-aware]
//!               [--resume] [--retries N]
//! samr campaign-merge DIR… [--out DIR]
//! samr pareto DIR [--objectives imbalance,comm,migration,overhead] [--predict]
//! samr bench [--suite kernels|partition|campaign|sim|regrid|adaptive|all] [--quick] [--out DIR]
//!            [--check BASELINE.json]… [--tolerance PCT] [--allow-budget-mismatch]
//! samr apps
//! samr partitioners
//! ```
//!
//! `generate` runs an application kernel and **streams** its hierarchy
//! trace to disk snapshot by snapshot (JSON-lines by default, compact
//! binary with `--binary`) — the trace is never whole in memory;
//! `analyze` folds the paper's model over a trace stream and prints the
//! per-step penalties; `simulate` runs a trace stream through the
//! windowed partitioning driver and prints the measured per-step
//! metrics; `compare` runs the META1 static-vs-dynamic comparison,
//! draining the trace stream once and replaying it per partitioner;
//! `campaign` expands a cartesian sweep (apps × partitioners × policies
//! × nprocs × ghost widths × machines) into a deterministic plan and
//! executes it through
//! `samr-engine` — in-process rayon by default (optionally capped with
//! `--threads`), one shard of the plan with `--shard I/N` (per-shard
//! artifact directory plus JSON manifest), or `--workers N` child
//! processes that each run one shard and are merged automatically;
//! `campaign-merge` validates independently produced shard directories
//! (same plan hash, every scenario exactly once, every artifact stamped
//! by a matching completion record) and reassembles the canonical
//! campaign artifacts, byte-identical to the unsharded run; `pareto`
//! (see [`pareto`]) prints the multi-objective trade-off front of a
//! finished campaign directory and, with `--predict`, scores the same
//! scenarios through the paper's model to report predicted-vs-observed
//! front agreement; `bench` (see [`bench`]) runs the fixed wall-clock
//! benchmark suites, emits `BENCH_<suite>.json` reports, and checks
//! fresh runs against checked-in baselines.
//!
//! Campaign execution is crash-consistent: every artifact is written
//! tmp-then-rename and every finished scenario is stamped with a
//! completion record, so `--resume` re-runs exactly the scenarios a
//! killed or crashed campaign had not finished, and `--retries N` (with
//! `--workers`) relaunches a dead worker with `--resume` instead of
//! failing the sweep.

use samr::apps::{trace_source_any, AppKind, TraceGenConfig};
use samr::engine::{
    build_thread_pool, configs, find_shard_dirs, merge_shards, Campaign, CampaignExecutor,
    CampaignPlan, CampaignSpec, ExecOutput, PartitionerSpec, PolicySpec, ShardExecutor,
    ShardStrategy, WorkerExecutor,
};
use samr::meta::compare_on_sources;
use samr::model::{ModelAccumulator, ModelConfig};
use samr::sim::{MachineModel, SimConfig, SimResult};
use samr::trace::io::{open_trace_source, write_binary_source, JsonlSnapshotWriter, TraceIoError};
use samr::trace::{AnySnapshotSource, Snapshot, SnapshotSource};
use std::fs::File;

mod bench;
mod pareto;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  samr generate <app> [--config paper|reduced|smoke] [--seed N] [--binary] [--out FILE]\n  samr analyze  <trace-file>\n  samr simulate <trace-file> [--partitioner NAME] [--nprocs N]\n  samr compare  <trace-file> [--nprocs N]\n  samr campaign [--apps A,B] [--dims 2,3] [--partitioners P,Q] [--nprocs N,M] [--ghost-widths G,H]\n                [--config paper|reduced|smoke] [--policies static,adaptive:balance,...]\n                [--machines uniform,fast-net,slow-net,slow-cpu] [--out DIR]\n                [--spec FILE] [--threads N] [--shard I/N | --workers N] [--shard-strategy round-robin|size-aware]\n                [--resume] [--retries N]\n  samr campaign-merge DIR... [--out DIR]\n  samr pareto DIR [--objectives imbalance,comm,migration,overhead] [--predict]\n  samr bench [--suite kernels|partition|campaign|sim|regrid|adaptive|all] [--quick] [--out DIR]\n             [--check BASELINE.json]... [--tolerance PCT] [--allow-budget-mismatch]\n  samr apps\n  samr partitioners"
    );
    ExitCode::from(2)
}

/// Value of `--flag V` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_config(args: &[String]) -> Result<TraceGenConfig, String> {
    match flag_value(args, "--config").as_deref() {
        None | Some("paper") => Ok(configs::paper()),
        Some("reduced") => Ok(configs::reduced()),
        Some("smoke") => Ok(TraceGenConfig::smoke()),
        Some(other) => Err(format!("unknown config '{other}'")),
    }
}

/// Parse a comma-separated list through `parse`, or return the default.
fn parse_list<T>(
    args: &[String],
    flag: &str,
    default: Vec<T>,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(parse)
            .collect(),
    }
}

/// Open a trace file as a streaming snapshot source (format and
/// dimension sniffed from the header).
fn load_source(path: &str) -> Result<AnySnapshotSource, String> {
    open_trace_source(Path::new(path)).map_err(|e| format!("open {path}: {e}"))
}

/// Stream a generator source to a writer, one snapshot at a time.
fn stream_out<const D: usize>(
    src: &mut (dyn SnapshotSource<D> + '_),
    out: &str,
    binary: bool,
) -> Result<usize, TraceIoError> {
    let file = File::create(out)?;
    if binary {
        return write_binary_source(src, BufWriter::new(file)).map(|n| n as usize);
    }
    let mut n = 0usize;
    let mut w = JsonlSnapshotWriter::new(BufWriter::new(file), src.meta())?;
    while let Some(snap) = src.next_snapshot()? {
        w.write_snapshot(&snap)?;
        n += 1;
    }
    w.finish()?;
    Ok(n)
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let app = args
        .first()
        .and_then(|a| AppKind::parse(a))
        .ok_or("expected an application: TP2D | BL2D | SC2D | RM2D | PC2D | SP3D")?;
    let mut cfg = parse_config(args)?;
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    }
    eprintln!(
        "generating {} trace ({}-D): {} steps, base {:?}, {} levels …",
        app.name(),
        app.dim(),
        cfg.steps,
        cfg.base_cells,
        cfg.max_levels
    );
    let out =
        flag_value(args, "--out").unwrap_or_else(|| format!("{}.trace", app.name().to_lowercase()));
    let binary = has_flag(args, "--binary");
    // The generator streams straight to disk: one snapshot resident at a
    // time, whatever the trace length.
    let n = match trace_source_any(app, &cfg) {
        AnySnapshotSource::D2(mut s) => stream_out::<2>(&mut s, &out, binary),
        AnySnapshotSource::D3(mut s) => stream_out::<3>(&mut s, &out, binary),
    }
    .map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {n} snapshots to {out}");
    Ok(())
}

/// Fold the model over a snapshot stream, printing one CSV row per step
/// as it is produced (two snapshots resident at most).
fn analyze_source<const D: usize>(
    src: &mut (dyn SnapshotSource<D> + '_),
) -> Result<(), TraceIoError> {
    let mut acc = ModelAccumulator::new(ModelConfig::default());
    let mut prev: Option<Snapshot<D>> = None;
    while let Some(snap) = src.next_snapshot()? {
        let s = acc.step(prev.as_ref().map(|p| &p.hierarchy), &snap);
        println!(
            "{},{:.6},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}",
            s.step,
            s.beta_l,
            s.beta_c,
            s.beta_m,
            s.point.d1,
            s.point.d2,
            s.point.d3,
            s.tradeoff2.request,
            s.tradeoff2.offer,
            snap.hierarchy.total_points(),
            snap.hierarchy.workload()
        );
        prev = Some(snap);
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let mut source = load_source(path)?;
    println!("step,beta_l,beta_c,beta_m,d1,d2,d3,request,offer,points,workload");
    match &mut source {
        AnySnapshotSource::D2(s) => analyze_source::<2>(s),
        AnySnapshotSource::D3(s) => analyze_source::<3>(s),
    }
    .map_err(|e| format!("analyze {path}: {e}"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let mut source = load_source(path)?;
    let nprocs: usize = flag_value(args, "--nprocs")
        .map(|v| v.parse().map_err(|e| format!("bad nprocs: {e}")))
        .transpose()?
        .unwrap_or(16);
    let spec = match flag_value(args, "--partitioner") {
        None => PartitionerSpec::parse("hybrid")?,
        Some(name) => PartitionerSpec::parse(&name)?,
    };
    let cfg = SimConfig {
        nprocs,
        ..SimConfig::default()
    };
    let res: SimResult = match &mut source {
        AnySnapshotSource::D2(s) => spec.simulate_source::<2>(s, &cfg),
        AnySnapshotSource::D3(s) => spec.simulate_source::<3>(s, &cfg),
    }
    .map_err(|e| format!("simulate {path}: {e}"))?;
    println!(
        "# partitioner: {} on {} processors",
        res.partitioner, nprocs
    );
    println!("step,load_imbalance,rel_comm,rel_migration,comm_cells,migration_cells,step_time");
    for s in &res.steps {
        println!(
            "{},{:.6},{:.6},{:.6},{},{},{:.1}",
            s.step,
            s.load_imbalance,
            s.rel_comm,
            s.rel_migration,
            s.comm_cells,
            s.migration_cells,
            s.step_time
        );
    }
    eprintln!("total estimated execution time: {:.0}", res.total_time);
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    // Sniff the dimension once; the comparison drains the stream a
    // single time into a shared trace and replays it per partitioner.
    let dim = load_source(path)?.dim();
    let nprocs: usize = flag_value(args, "--nprocs")
        .map(|v| v.parse().map_err(|e| format!("bad nprocs: {e}")))
        .transpose()?
        .unwrap_or(16);
    let cfg = SimConfig {
        nprocs,
        ..SimConfig::default()
    };
    let res = match dim {
        2 => compare_on_sources::<2, _, _>(
            || {
                open_trace_source(Path::new(path)).map(|s| match s {
                    AnySnapshotSource::D2(s) => s,
                    AnySnapshotSource::D3(_) => unreachable!("dimension sniffed as 2-D"),
                })
            },
            &cfg,
        ),
        _ => compare_on_sources::<3, _, _>(
            || {
                open_trace_source(Path::new(path)).map(|s| match s {
                    AnySnapshotSource::D3(s) => s,
                    AnySnapshotSource::D2(_) => unreachable!("dimension sniffed as 3-D"),
                })
            },
            &cfg,
        ),
    }
    .map_err(|e| format!("compare {path}: {e}"))?;
    println!("partitioner,total_time,mean_imbalance,mean_rel_comm,mean_rel_migration");
    for r in res
        .static_runs
        .iter()
        .chain([&res.octant_run, &res.meta_run])
    {
        println!(
            "{},{:.0},{:.4},{:.4},{:.4}",
            r.name, r.total_time, r.mean_imbalance, r.mean_rel_comm, r.mean_rel_migration
        );
    }
    eprintln!(
        "meta vs best static: {:.3}; meta vs worst static: {:.3}",
        res.meta_vs_best(),
        res.meta_vs_worst()
    );
    Ok(())
}

/// The campaign spec from CLI arguments: loaded whole from `--spec
/// FILE` (the form worker processes are handed, so every worker plans
/// the exact same campaign), or assembled from the axis flags.
fn parse_campaign_spec(args: &[String]) -> Result<CampaignSpec, String> {
    if let Some(path) = flag_value(args, "--spec") {
        // The spec file defines every campaign axis; silently ignoring
        // an axis flag next to it would run a different campaign than
        // the command line reads.
        const AXIS_FLAGS: [&str; 9] = [
            "--apps",
            "--dims",
            "--partitioners",
            "--policies",
            "--nprocs",
            "--ghost-widths",
            "--config",
            "--machines",
            "--machine",
        ];
        if let Some(conflict) = AXIS_FLAGS.iter().find(|f| has_flag(args, f)) {
            return Err(format!(
                "{conflict} conflicts with --spec: the spec file defines every campaign axis"
            ));
        }
        let json = std::fs::read_to_string(&path).map_err(|e| format!("read spec {path}: {e}"))?;
        return serde_json::from_str(&json).map_err(|e| format!("parse spec {path}: {e}"));
    }
    let apps = parse_list(args, "--apps", AppKind::ALL.to_vec(), |name| {
        AppKind::parse(name).ok_or_else(|| format!("unknown app '{name}'"))
    })?;
    let default_dims: Vec<usize> = {
        let mut d: Vec<usize> = apps.iter().map(|a| a.dim()).collect();
        d.dedup();
        d
    };
    let dims = parse_list(args, "--dims", default_dims, |v| {
        v.parse().map_err(|e| format!("bad dim '{v}': {e}"))
    })?;
    let partitioners = parse_list(
        args,
        "--partitioners",
        vec![PartitionerSpec::parse("hybrid")?],
        PartitionerSpec::parse,
    )?;
    let policies = parse_list(
        args,
        "--policies",
        vec![PolicySpec::Static],
        PolicySpec::parse,
    )?;
    let nprocs = parse_list(args, "--nprocs", vec![16usize], |v| {
        v.parse().map_err(|e| format!("bad nprocs '{v}': {e}"))
    })?;
    let ghost_widths = parse_list(args, "--ghost-widths", vec![1i64], |v| {
        v.parse().map_err(|e| format!("bad ghost width '{v}': {e}"))
    })?;
    // Campaigns default to the reduced configuration: the full paper
    // config is available with `--config paper` but generates each
    // 100-step 5-level trace in tens of seconds.
    let trace = match flag_value(args, "--config").as_deref() {
        None | Some("reduced") => configs::reduced(),
        Some("paper") => configs::paper(),
        Some("smoke") => TraceGenConfig::smoke(),
        Some(other) => return Err(format!("unknown config '{other}'")),
    };
    // `--machines` sweeps the machine axis; `--machine` (singular) is
    // kept as an alias for a one-machine campaign.
    let machine_flag = if has_flag(args, "--machines") {
        "--machines"
    } else {
        "--machine"
    };
    let machines = parse_list(
        args,
        machine_flag,
        vec![MachineModel::default()],
        MachineModel::parse,
    )?;
    Ok(CampaignSpec::new(trace)
        .apps(apps)
        .dims(dims)
        .partitioners(partitioners)
        .policies(policies)
        .nprocs(nprocs)
        .ghost_widths(ghost_widths)
        .machines(machines))
}

/// Parse `--shard I/N` into `(shard, nshards)`.
fn parse_shard(args: &[String]) -> Result<Option<(usize, usize)>, String> {
    let Some(value) = flag_value(args, "--shard") else {
        return Ok(None);
    };
    let err = || format!("bad --shard '{value}' (expected I/N with I < N, e.g. 0/3)");
    let (i, n) = value.split_once('/').ok_or_else(err)?;
    let shard: usize = i.parse().map_err(|_| err())?;
    let nshards: usize = n.parse().map_err(|_| err())?;
    if nshards == 0 || shard >= nshards {
        return Err(err());
    }
    Ok(Some((shard, nshards)))
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let spec = parse_campaign_spec(args)?;
    if spec.is_empty() {
        return Err("campaign expands to zero scenarios".into());
    }
    let strategy = match flag_value(args, "--shard-strategy") {
        None => ShardStrategy::default(),
        Some(name) => ShardStrategy::parse(&name)?,
    };
    let threads: Option<usize> = flag_value(args, "--threads")
        .map(|v| v.parse().map_err(|e| format!("bad --threads '{v}': {e}")))
        .transpose()?;
    let workers: Option<usize> = flag_value(args, "--workers")
        .map(|v| v.parse().map_err(|e| format!("bad --workers '{v}': {e}")))
        .transpose()?;
    let shard = parse_shard(args)?;
    if shard.is_some() && workers.is_some() {
        return Err("--shard and --workers are mutually exclusive".into());
    }
    if workers == Some(0) {
        return Err("--workers must be at least 1".into());
    }
    let resume = has_flag(args, "--resume");
    let retries: usize = flag_value(args, "--retries")
        .map(|v| v.parse().map_err(|e| format!("bad --retries '{v}': {e}")))
        .transpose()?
        .unwrap_or(0);
    if retries > 0 && workers.is_none() {
        return Err(
            "--retries only applies to --workers campaigns (each worker \
                    is relaunched with --resume when it dies)"
                .into(),
        );
    }
    let out_dir =
        PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "results/campaign".into()));
    let active_apps = spec
        .apps
        .iter()
        .filter(|a| spec.dims.contains(&a.dim()))
        .count();
    eprintln!(
        "campaign: {} scenarios ({} apps x {} partitioners x {} policies x {} nprocs x {} ghost widths x {} machines, dims {:?}) -> {}",
        spec.len(),
        active_apps,
        spec.partitioners.len(),
        spec.policies.len(),
        spec.nprocs.len(),
        spec.ghost_widths.len(),
        spec.machines.len(),
        spec.dims,
        out_dir.display()
    );

    if let Some(nworkers) = workers {
        // Multi-process path: plan here, run every shard as a child
        // process, merge the shard directories back into the canonical
        // artifacts. Each worker gets an explicit thread cap so the
        // workers together do not oversubscribe the host.
        let plan = CampaignPlan::new(&spec, nworkers, strategy);
        let worker_threads = threads.or_else(|| {
            std::thread::available_parallelism()
                .ok()
                .map(|n| (n.get() / nworkers).max(1))
        });
        eprintln!(
            "spawning {nworkers} workers ({} threads each, strategy {}, {} retries{})",
            worker_threads.map_or("auto".into(), |t| t.to_string()),
            strategy.name(),
            retries,
            if resume { ", resuming" } else { "" },
        );
        let mut exec = WorkerExecutor::current_exe(worker_threads)
            .map_err(|e| format!("locate samr binary: {e}"))?;
        exec.retries = retries;
        exec.resume = resume;
        // Dispatch through the executor trait: the worker fleet is just
        // one strategy for executing the plan.
        let executor: &dyn CampaignExecutor = &exec;
        let ExecOutput::Shards(shard_dirs) = executor
            .execute(&plan, &out_dir)
            .map_err(|e| e.to_string())?
        else {
            return Err("worker executor unexpectedly ran in-process".into());
        };
        let report = merge_shards(&shard_dirs, &out_dir).map_err(|e| e.to_string())?;
        eprintln!(
            "merged {} scenarios from {} shards into {} (plan {})",
            report.scenario_count,
            report.shards,
            out_dir.display(),
            report.plan_hash
        );
        return Ok(());
    }

    let run_in_process = || -> Result<(), String> {
        if let Some((shard, nshards)) = shard {
            // One shard of the plan: per-shard artifact directory plus
            // manifest; a later `samr campaign-merge` reassembles.
            let plan = CampaignPlan::new(&spec, nshards, strategy);
            let executor = ShardExecutor { shard, resume };
            let run = executor
                .run_shard(&plan, &out_dir)
                .map_err(|e| e.to_string())?;
            for outcome in &run.outcomes {
                println!("{}", outcome.digest());
            }
            eprintln!(
                "shard {shard}/{nshards}: wrote {} of {} scenarios to {} ({} resumed as \
                 already complete, plan {})",
                run.outcomes.len(),
                plan.len(),
                run.dir.display(),
                run.skipped,
                plan.plan_hash
            );
            return Ok(());
        }
        let run = Campaign::run_to_dir_resume(&spec, &out_dir, resume)
            .map_err(|e| format!("write artifacts: {e}"))?;
        for outcome in &run.outcomes {
            println!("{}", outcome.digest());
        }
        eprintln!(
            "wrote {} artifacts ({} scenarios executed, {} resumed as already complete) to {}",
            run.paths.len(),
            run.outcomes.len(),
            run.skipped,
            out_dir.display()
        );
        Ok(())
    };
    match threads {
        // A scoped rayon pool caps campaign parallelism without
        // affecting the rest of the process — the knob shard workers on
        // one host use to share cores instead of oversubscribing them.
        Some(t) => {
            let pool = build_thread_pool(t)?;
            pool.install(run_in_process)
        }
        None => run_in_process(),
    }
}

fn cmd_campaign_merge(args: &[String]) -> Result<(), String> {
    // Positional arguments are shard directories — or one campaign
    // directory whose `shard-*-of-*` children are the shards.
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--out" {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            return Err(format!("unknown flag '{a}'"));
        }
        dirs.push(PathBuf::from(a));
        i += 1;
    }
    if dirs.is_empty() {
        return Err("expected shard directories (or one campaign directory) to merge".into());
    }
    let (shard_dirs, default_out) =
        if dirs.len() == 1 && !dirs[0].join("shard.manifest.json").exists() {
            // One campaign directory: discover its shard children.
            let found = find_shard_dirs(&dirs[0])
                .map_err(|e| format!("scan {}: {e}", dirs[0].display()))?;
            if found.is_empty() {
                return Err(format!(
                    "{} contains no shard-*-of-* directories",
                    dirs[0].display()
                ));
            }
            (found, dirs[0].clone())
        } else {
            let parent = dirs[0]
                .parent()
                .map(Path::to_path_buf)
                .unwrap_or_else(|| PathBuf::from("."));
            (dirs, parent)
        };
    let out_dir = flag_value(args, "--out").map_or(default_out, PathBuf::from);
    let report = merge_shards(&shard_dirs, &out_dir).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} scenarios from {} shards into {} (plan {})",
        report.scenario_count,
        report.shards,
        out_dir.display(),
        report.plan_hash
    );
    println!("{}", report.csv_path.display());
    Ok(())
}

fn cmd_apps() -> Result<(), String> {
    let cfg = configs::paper();
    println!("app,dim,description");
    for kind in AppKind::EVERY {
        println!("{},{},{}", kind.name(), kind.dim(), kind.describe(&cfg));
    }
    Ok(())
}

fn cmd_partitioners() -> Result<(), String> {
    let machine = MachineModel::default();
    println!("name,stateful,configured_name");
    for (name, spec) in PartitionerSpec::registry() {
        println!("{},{},{}", name, spec.stateful(), spec.name(&machine));
    }
    // The repartitioning-policy registry: every `--policies` value with
    // the hysteresis thresholds the adaptive presets switch on.
    println!();
    println!("policy,imbalance_enter,imbalance_exit,comm_enter,patience,balanced");
    for (name, spec) in PolicySpec::registry() {
        match spec {
            PolicySpec::Static => println!("{name},-,-,-,-,-"),
            PolicySpec::Adaptive(cfg) => println!(
                "{},{},{},{},{},{}",
                name,
                cfg.imbalance_enter,
                cfg.imbalance_exit,
                cfg.comm_enter,
                cfg.switch_patience,
                cfg.balanced.name(),
            ),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "compare" => cmd_compare(rest),
        "campaign" => cmd_campaign(rest),
        "campaign-merge" => cmd_campaign_merge(rest),
        "pareto" => pareto::cmd_pareto(rest),
        "bench" => bench::cmd_bench(rest),
        "apps" => cmd_apps(),
        "partitioners" => cmd_partitioners(),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
