//! `samr bench` — run the fixed wall-clock benchmark suites and emit
//! machine-readable `BENCH_<suite>.json` reports, or check a fresh run
//! against checked-in baselines.
//!
//! ```text
//! samr bench [--suite kernels|partition|campaign|all] [--quick] [--out DIR]
//! samr bench --check BASELINE.json [--check …] [--tolerance PCT] [--quick]
//! ```
//!
//! Emit mode runs the selected suites (default: all three) and writes
//! one `BENCH_<suite>.json` per suite into `--out` (default: the
//! current directory). Check mode loads each baseline file, re-runs
//! that file's suite, and fails — exit status 1 — when any baseline
//! bench is missing or more than `--tolerance` percent slower (default
//! 10). `--quick` shrinks the measurement budget for smoke runs; quick
//! numbers are for plumbing validation, not for pinning baselines.

use crate::{flag_value, has_flag};
use samr::bench::harness::{compare, validate, BenchBudget, BenchRecord, BenchReport};
use samr::bench::suites;
use std::path::PathBuf;

/// Every value of a repeatable `--flag V` occurrence, in order.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn run_suite(suite: &str, budget: BenchBudget) -> Result<BenchReport, String> {
    let rep = match suite {
        "kernels" => suites::kernels_report(budget),
        "partition" => suites::partition_report(budget),
        "campaign" => suites::campaign_report(budget),
        other => {
            return Err(format!(
                "unknown suite '{other}' (expected kernels | partition | campaign | all)"
            ))
        }
    };
    validate(&rep).map_err(|e| format!("suite '{suite}' produced an invalid report: {e}"))?;
    Ok(rep)
}

fn print_record(b: &BenchRecord) {
    match (&b.throughput, &b.throughput_units) {
        (Some(tp), Some(units)) => eprintln!(
            "  {:<28} {:>14.0} ns/op  {:>14.3e} {units}",
            b.name, b.ns_per_op, tp
        ),
        _ => eprintln!("  {:<28} {:>14.0} ns/op", b.name, b.ns_per_op),
    }
}

/// For every `<name>`/`<name>_scalar` pair in a report, print the
/// optimized-over-scalar speedup — the number the perf trajectory is
/// judged by.
fn print_speedups(rep: &BenchReport) {
    for b in &rep.benches {
        let Some(base) = rep.get(&format!("{}_scalar", b.name)) else {
            continue;
        };
        eprintln!(
            "  {:<28} {:>13.2}x vs scalar reference",
            b.name,
            base.ns_per_op / b.ns_per_op
        );
    }
}

fn run_checks(args: &[String], checks: &[String], budget: BenchBudget) -> Result<(), String> {
    let tolerance: f64 = flag_value(args, "--tolerance")
        .map(|v| v.parse().map_err(|e| format!("bad --tolerance '{v}': {e}")))
        .transpose()?
        .unwrap_or(10.0);
    if !(0.0..=10_000.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} out of range (0..=10000)"));
    }
    let mut failures = 0usize;
    for path in checks {
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let baseline: BenchReport =
            serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
        validate(&baseline).map_err(|e| format!("baseline {path} is invalid: {e}"))?;
        eprintln!(
            "checking suite '{}' against {path} (tolerance {tolerance}%)",
            baseline.suite
        );
        let current = run_suite(&baseline.suite, budget)?;
        let regressions = compare(&current, &baseline, tolerance);
        if regressions.is_empty() {
            eprintln!("  ok: {} benches within tolerance", baseline.benches.len());
        } else {
            for r in &regressions {
                eprintln!("  REGRESSION {r}");
            }
            failures += regressions.len();
        }
    }
    if failures > 0 {
        return Err(format!("{failures} benchmark regression(s)"));
    }
    Ok(())
}

pub fn cmd_bench(args: &[String]) -> Result<(), String> {
    let budget = if has_flag(args, "--quick") {
        BenchBudget::quick()
    } else {
        BenchBudget::default_budget()
    };
    let checks = flag_values(args, "--check");
    if !checks.is_empty() {
        return run_checks(args, &checks, budget);
    }
    if has_flag(args, "--tolerance") {
        return Err("--tolerance only applies with --check".into());
    }
    let selected: Vec<&str> = match flag_value(args, "--suite").as_deref() {
        None | Some("all") => vec!["kernels", "partition", "campaign"],
        Some(s) => vec![match s {
            "kernels" => "kernels",
            "partition" => "partition",
            "campaign" => "campaign",
            other => {
                return Err(format!(
                    "unknown suite '{other}' (expected kernels | partition | campaign | all)"
                ))
            }
        }],
    };
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| ".".into()));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    for suite in selected {
        eprintln!(
            "running suite '{suite}' ({} budget) …",
            if has_flag(args, "--quick") {
                "quick"
            } else {
                "full"
            }
        );
        let rep = run_suite(suite, budget)?;
        for b in &rep.benches {
            print_record(b);
        }
        print_speedups(&rep);
        let path = out_dir.join(format!("BENCH_{suite}.json"));
        let json = serde_json::to_string_pretty(&rep)
            .map_err(|e| format!("serialize {suite} report: {e}"))?;
        std::fs::write(&path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!(
            "wrote {} ({} benches, {} threads, {})",
            path.display(),
            rep.benches.len(),
            rep.threads,
            rep.git_describe
        );
    }
    Ok(())
}
