//! `samr bench` — run the fixed wall-clock benchmark suites and emit
//! machine-readable `BENCH_<suite>.json` reports, or check a fresh run
//! against checked-in baselines.
//!
//! ```text
//! samr bench [--suite kernels|partition|campaign|sim|regrid|adaptive|all] [--quick] [--out DIR]
//! samr bench --check BASELINE.json [--check …] [--tolerance PCT] [--quick]
//!            [--allow-budget-mismatch]
//! ```
//!
//! Emit mode runs the selected suites (default: all six) and writes
//! one `BENCH_<suite>.json` per suite into `--out` (default: the
//! current directory). Check mode loads each baseline file, re-runs
//! that file's suite, and fails — exit status 1 — when any baseline
//! bench is missing or more than `--tolerance` percent slower (default
//! 10). The two modes are exclusive: emit-only flags (`--out`,
//! `--suite`) next to `--check` are rejected rather than silently
//! ignored. `--quick` shrinks the measurement budget for smoke runs;
//! quick numbers are for plumbing validation, not for pinning
//! baselines — so a check whose run budget differs from the baseline's
//! recorded budget refuses the apples-to-oranges comparison unless
//! `--allow-budget-mismatch` explicitly (and loudly) overrides it.

use crate::{flag_value, has_flag};
use samr::bench::harness::{compare, speedup, validate, BenchBudget, BenchRecord, BenchReport};
use samr::bench::suites;
use std::path::PathBuf;

/// Every value of a repeatable `--flag V` occurrence, in order.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn run_suite(suite: &str, budget: BenchBudget) -> Result<BenchReport, String> {
    let rep = match suite {
        "kernels" => suites::kernels_report(budget),
        "partition" => suites::partition_report(budget),
        "campaign" => suites::campaign_report(budget),
        "sim" => suites::sim_report(budget),
        "regrid" => suites::regrid_report(budget),
        "adaptive" => suites::adaptive_report(budget),
        other => {
            return Err(format!(
                "unknown suite '{other}' (expected kernels | partition | campaign | sim | regrid | adaptive | all)"
            ))
        }
    };
    validate(&rep).map_err(|e| format!("suite '{suite}' produced an invalid report: {e}"))?;
    Ok(rep)
}

fn print_record(b: &BenchRecord) {
    match (&b.throughput, &b.throughput_units) {
        (Some(tp), Some(units)) => eprintln!(
            "  {:<28} {:>14.0} ns/op  {:>14.3e} {units}",
            b.name, b.ns_per_op, tp
        ),
        _ => eprintln!("  {:<28} {:>14.0} ns/op", b.name, b.ns_per_op),
    }
}

/// For every `<name>`/`<name>_scalar` and `<name>`/`<name>_naive` pair
/// in a report, print the optimized-over-baseline speedup — the number
/// the perf trajectory is judged by.
fn print_speedups(rep: &BenchReport) {
    for b in &rep.benches {
        let pair = [("_scalar", "scalar"), ("_naive", "naive")]
            .into_iter()
            .find_map(|(suffix, label)| {
                rep.get(&format!("{}{suffix}", b.name)).map(|r| (r, label))
            });
        let Some((base, label)) = pair else {
            continue;
        };
        // A degenerate timing (ns_per_op of 0, or non-finite) must not
        // print as an infinite or NaN speedup.
        match speedup(base, b) {
            Some(x) => eprintln!("  {:<28} {:>13.2}x vs {label} reference", b.name, x),
            None => eprintln!("  {:<28} speedup undefined (degenerate timing)", b.name),
        }
    }
}

fn run_checks(args: &[String], checks: &[String], budget: BenchBudget) -> Result<(), String> {
    let tolerance: f64 = flag_value(args, "--tolerance")
        .map(|v| v.parse().map_err(|e| format!("bad --tolerance '{v}': {e}")))
        .transpose()?
        .unwrap_or(10.0);
    if !(0.0..=10_000.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} out of range (0..=10000)"));
    }
    let mut failures = 0usize;
    for path in checks {
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let baseline: BenchReport =
            serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
        validate(&baseline).map_err(|e| format!("baseline {path} is invalid: {e}"))?;
        // Numbers measured under different budgets are not comparable:
        // a quick re-run against a full-budget baseline would report
        // phantom regressions (or mask real ones). Refuse unless the
        // operator explicitly accepts the noise.
        let run_budget = budget.name();
        if baseline.budget != run_budget {
            if has_flag(args, "--allow-budget-mismatch") {
                eprintln!(
                    "warning: comparing a '{run_budget}'-budget run against the \
                     '{}'-budget baseline {path}: timings are not \
                     apples-to-apples, expect noise (--allow-budget-mismatch)",
                    baseline.budget
                );
            } else {
                return Err(format!(
                    "baseline {path} was measured under the '{}' budget but this \
                     run uses '{run_budget}': the comparison would be \
                     apples-to-oranges. Re-run with the matching budget, or pass \
                     --allow-budget-mismatch to compare anyway",
                    baseline.budget
                ));
            }
        }
        eprintln!(
            "checking suite '{}' against {path} (tolerance {tolerance}%, {run_budget} budget)",
            baseline.suite
        );
        let current = run_suite(&baseline.suite, budget)?;
        let regressions = compare(&current, &baseline, tolerance);
        if regressions.is_empty() {
            eprintln!("  ok: {} benches within tolerance", baseline.benches.len());
        } else {
            for r in &regressions {
                eprintln!("  REGRESSION {r}");
            }
            failures += regressions.len();
        }
    }
    if failures > 0 {
        return Err(format!("{failures} benchmark regression(s)"));
    }
    Ok(())
}

pub fn cmd_bench(args: &[String]) -> Result<(), String> {
    let budget = if has_flag(args, "--quick") {
        BenchBudget::quick()
    } else {
        BenchBudget::default_budget()
    };
    let checks = flag_values(args, "--check");
    if !checks.is_empty() {
        // Check mode never writes reports or picks suites (each baseline
        // names its own suite): silently ignoring an emit-only flag
        // would do something other than what the command line reads —
        // the same policy as `--spec` vs axis flags in `campaign`.
        for conflict in ["--out", "--suite"] {
            if has_flag(args, conflict) {
                return Err(format!(
                    "{conflict} conflicts with --check: check mode re-runs each \
                     baseline's own suite and writes nothing"
                ));
            }
        }
        return run_checks(args, &checks, budget);
    }
    if has_flag(args, "--tolerance") {
        return Err("--tolerance only applies with --check".into());
    }
    if has_flag(args, "--allow-budget-mismatch") {
        return Err("--allow-budget-mismatch only applies with --check".into());
    }
    let selected: Vec<&str> = match flag_value(args, "--suite").as_deref() {
        None | Some("all") => vec!["kernels", "partition", "campaign", "sim", "regrid", "adaptive"],
        Some(s) => vec![match s {
            "kernels" => "kernels",
            "partition" => "partition",
            "campaign" => "campaign",
            "sim" => "sim",
            "regrid" => "regrid",
            "adaptive" => "adaptive",
            other => {
                return Err(format!(
                    "unknown suite '{other}' (expected kernels | partition | campaign | sim | regrid | adaptive | all)"
                ))
            }
        }],
    };
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| ".".into()));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    for suite in selected {
        eprintln!(
            "running suite '{suite}' ({} budget) …",
            if has_flag(args, "--quick") {
                "quick"
            } else {
                "full"
            }
        );
        let rep = run_suite(suite, budget)?;
        for b in &rep.benches {
            print_record(b);
        }
        print_speedups(&rep);
        let path = out_dir.join(format!("BENCH_{suite}.json"));
        let json = serde_json::to_string_pretty(&rep)
            .map_err(|e| format!("serialize {suite} report: {e}"))?;
        std::fs::write(&path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!(
            "wrote {} ({} benches, {} threads, {})",
            path.display(),
            rep.benches.len(),
            rep.threads,
            rep.git_describe
        );
    }
    Ok(())
}
