//! `samr pareto` — print the trade-off front of a finished campaign
//! directory, and optionally score the same scenarios through the
//! paper's model to report predicted-vs-observed front agreement.
//!
//! ```text
//! samr pareto DIR [--objectives imbalance,comm,migration,overhead] [--predict]
//! ```
//!
//! The front is recomputed from the per-scenario summary artifacts (so
//! `--objectives` can select any axis subset); with the default
//! objective set it is exactly the `campaign.pareto.json` the campaign
//! runner and the shard merger wrote. `--predict` runs the `samr-core`
//! model over each scenario's trace with the scenario's processor
//! count as `p_ref`, builds a *predicted* front over the
//! model-predictable axes (β_l → imbalance, β_c → comm, β_m →
//! migration; the overhead axis has no model analogue and is dropped),
//! and reports per-axis Pearson correlation plus front
//! precision/recall/Jaccard — the predicted-where-the-front-bends
//! result the 2004 paper could not compute.

use crate::{flag_value, has_flag};
use samr::engine::pareto::{
    compute_front, load_entries, parse_objectives, Objective, ParetoEntry, ParetoFront,
};
use samr::model::{ModelConfig, ModelPipeline, ModelState};
use samr::sim::metrics::pearson;
use samr::trace::AnyTrace;
use std::collections::HashMap;
use std::path::Path;

/// The model-predictable axes: each maps to one per-step penalty.
const PREDICTABLE: [Objective; 3] = [Objective::Imbalance, Objective::Comm, Objective::Migration];

fn print_front(front: &ParetoFront) {
    println!(
        "# plan {} · {} scenarios · objectives: {}",
        front.plan_hash,
        front.scenario_count,
        front.objectives.join(",")
    );
    println!(
        "# front: {} of {} scenarios non-dominated",
        front.front.len(),
        front.scenario_count
    );
    let header: Vec<String> = front
        .objectives
        .iter()
        .map(|o| format!("{o:>12}"))
        .collect();
    println!(
        "{:>4} {:32} {:24} {}",
        "id",
        "slug",
        "partitioner",
        header.join(" ")
    );
    for p in front.front_points() {
        let values: Vec<String> = p.objectives.iter().map(|v| format!("{v:>12.6}")).collect();
        println!(
            "{:>4} {:32} {:24} {}",
            p.id,
            p.slug,
            p.partitioner,
            values.join(" ")
        );
    }
    println!("\n# front ownership by partitioner family");
    for fam in &front.families {
        println!(
            "  {:24} {:>3} of {:>3} scenarios on the front",
            fam.partitioner, fam.on_front, fam.scenarios
        );
    }
    println!("\n# best corner per objective");
    for r in &front.regions {
        println!(
            "  {:12} {:>12.6}  {} ({})",
            r.objective, r.value, r.slug, r.partitioner
        );
    }
}

/// Mean of a model-state series' penalty under one objective.
fn mean_penalty(states: &[ModelState], objective: Objective) -> f64 {
    if states.is_empty() {
        return 0.0;
    }
    let sum: f64 = states
        .iter()
        .map(|s| match objective {
            Objective::Imbalance => s.beta_l,
            Objective::Comm => s.beta_c,
            Objective::Migration => s.beta_m,
            Objective::Overhead => unreachable!("overhead is not model-predictable"),
        })
        .sum();
    sum / states.len() as f64
}

/// Predicted-vs-observed front agreement report.
fn predict(entries: &[ParetoEntry], objectives: &[Objective]) -> Result<(), String> {
    let axes: Vec<Objective> = objectives
        .iter()
        .copied()
        .filter(|o| PREDICTABLE.contains(o))
        .collect();
    if axes.is_empty() {
        return Err("--predict needs at least one model-predictable objective \
             (imbalance, comm or migration); overhead has no model analogue"
            .into());
    }
    let dropped: Vec<&str> = objectives
        .iter()
        .filter(|o| !PREDICTABLE.contains(o))
        .map(|o| o.name())
        .collect();
    if !dropped.is_empty() {
        eprintln!(
            "note: objective(s) {} have no model analogue and are excluded from prediction",
            dropped.join(", ")
        );
    }
    // The model is a function of the trace and its configuration alone —
    // partitioner-independent by design — so predictions differentiate
    // scenarios by (app, trace, p_ref = nprocs). Cache the series per
    // that key: a partitioner sweep re-uses one run per processor count.
    let mut cache: HashMap<String, Vec<ModelState>> = HashMap::new();
    let mut predicted: Vec<Vec<f64>> = Vec::with_capacity(entries.len());
    for e in entries {
        let s = &e.summary.scenario;
        let key = format!(
            "{}:{}:{}",
            s.app.name(),
            s.sim.nprocs,
            serde_json::to_string(&s.trace).map_err(|err| err.to_string())?
        );
        if !cache.contains_key(&key) {
            let pipeline = ModelPipeline::with_config(ModelConfig {
                p_ref: s.sim.nprocs,
                ..ModelConfig::default()
            });
            let trace = samr::engine::cached_trace(s.app, &s.trace);
            let states = match &*trace {
                AnyTrace::D2(t) => pipeline.run(t),
                AnyTrace::D3(t) => pipeline.run(t),
            };
            cache.insert(key.clone(), states);
        }
        let states = &cache[&key];
        predicted.push(axes.iter().map(|o| mean_penalty(states, *o)).collect());
    }
    // Per-axis shape agreement: does the model order scenarios the way
    // the measurements do?
    println!("\n# predicted vs observed (model with p_ref = scenario nprocs)");
    for (i, o) in axes.iter().enumerate() {
        let obs: Vec<f64> = entries.iter().map(|e| o.value(&e.summary)).collect();
        let pred: Vec<f64> = predicted.iter().map(|v| v[i]).collect();
        println!(
            "  {:12} pearson(predicted, observed) = {:+.3}",
            o.name(),
            pearson(&pred, &obs)
        );
    }
    // Front agreement over the predictable axes: observed front from
    // the measurements, predicted front from the penalties, both
    // through the same dominance kernel.
    let observed = compute_front("observed", &axes, entries).map_err(|e| e.to_string())?;
    let observed_ids: Vec<usize> = observed.front.clone();
    let pred_mask = samr::engine::pareto::front_mask(&predicted);
    let predicted_ids: Vec<usize> = entries
        .iter()
        .zip(&pred_mask)
        .filter(|(_, &m)| m)
        .map(|(e, _)| e.id)
        .collect();
    let inter = predicted_ids
        .iter()
        .filter(|id| observed_ids.contains(id))
        .count();
    let union = predicted_ids.len() + observed_ids.len() - inter;
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    println!(
        "  front agreement over ({}): precision {:.3} ({} of {} predicted), \
         recall {:.3} ({} of {} observed), jaccard {:.3}",
        axes.iter().map(|o| o.name()).collect::<Vec<_>>().join(","),
        ratio(inter, predicted_ids.len()),
        inter,
        predicted_ids.len(),
        ratio(inter, observed_ids.len()),
        inter,
        observed_ids.len(),
        ratio(inter, union),
    );
    println!("  predicted front ids: {predicted_ids:?}");
    println!("  observed  front ids: {observed_ids:?}");
    Ok(())
}

pub fn cmd_pareto(args: &[String]) -> Result<(), String> {
    let dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("expected a campaign directory (run `samr campaign --out DIR` first)")?;
    let dir = Path::new(dir);
    let objectives = match flag_value(args, "--objectives") {
        None => Objective::ALL.to_vec(),
        Some(list) => parse_objectives(&list).map_err(|e| e.to_string())?,
    };
    let (plan_hash, entries) = load_entries(dir).map_err(|e| e.to_string())?;
    if entries.is_empty() {
        return Err("the campaign has no scenarios to analyze".into());
    }
    let front = compute_front(&plan_hash, &objectives, &entries).map_err(|e| e.to_string())?;
    print_front(&front);
    if has_flag(args, "--predict") {
        predict(&entries, &objectives)?;
    }
    Ok(())
}
