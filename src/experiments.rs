//! The experiment harness: regenerates every data figure of the paper.
//!
//! One [`ValidationRun`] bundles everything a figure needs: the model
//! series (β_c, β_m — the red curves of Figures 4–7), the measured series
//! from the partitioned execution simulation (relative communication and
//! migration — the blue curves), the load-imbalance series (Figure 1) and
//! the *shape statistics* the paper's visual comparison corresponds to
//! (correlations, amplitude ratios, peak lags, dominant oscillation
//! periods). Used by the examples, the integration tests and the
//! criterion benches so that all three report the same numbers.

use samr_apps::{generate_trace, AppKind, TraceGenConfig};
use samr_core::{ModelPipeline, ModelState};
use samr_partition::{DomainSfcPartitioner, HybridPartitioner};
use samr_sim::metrics::{dominant_period, peak_lag, pearson};
use samr_sim::{simulate_trace, SeriesSummary, SimConfig, SimResult};
use samr_trace::HierarchyTrace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache of generated traces: trace generation costs tens of seconds at
/// paper scale, and every figure, test and bench wants the same traces.
fn trace_cache() -> &'static Mutex<HashMap<(AppKind, u32, i64, i64, u64), Arc<HierarchyTrace>>> {
    static CACHE: OnceLock<Mutex<HashMap<(AppKind, u32, i64, i64, u64), Arc<HierarchyTrace>>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Generate (or fetch from the process-wide cache) the trace of an
/// application under a configuration.
pub fn cached_trace(kind: AppKind, cfg: &TraceGenConfig) -> Arc<HierarchyTrace> {
    let key = (kind, cfg.steps, cfg.base_cells, cfg.ref_resolution, cfg.seed);
    if let Some(t) = trace_cache().lock().unwrap().get(&key) {
        return Arc::clone(t);
    }
    let trace = Arc::new(generate_trace(kind, cfg));
    trace_cache()
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&trace));
    trace
}

/// Shape statistics comparing a model series against a measured series —
/// the quantitative version of the paper's visual §5.2 assessment.
#[derive(Clone, Copy, Debug)]
pub struct ShapeStats {
    /// Pearson correlation between model and measurement.
    pub correlation: f64,
    /// `mean(model) / mean(measured)`: > 1 means the model is
    /// "aggressive" (overshoots), < 1 "cautious".
    pub amplitude_ratio: f64,
    /// Lag (steps) at which cross-correlation peaks; positive = the model
    /// *leads* the measurement.
    pub model_lead: i64,
    /// Dominant oscillation period of the model series, if any.
    pub model_period: Option<usize>,
    /// Dominant oscillation period of the measured series, if any.
    pub measured_period: Option<usize>,
}

impl ShapeStats {
    /// Compare a model series against a measurement.
    pub fn compare(model: &[f64], measured: &[f64]) -> Self {
        let m_mean = SeriesSummary::of(measured).mean;
        Self {
            correlation: pearson(model, measured),
            amplitude_ratio: if m_mean > 0.0 {
                SeriesSummary::of(model).mean / m_mean
            } else {
                f64::INFINITY
            },
            model_lead: peak_lag(model, measured, 4),
            model_period: dominant_period(model),
            measured_period: dominant_period(measured),
        }
    }
}

/// Everything needed to regenerate one of Figures 4–7 (plus Figure 1's
/// series for BL2D): per-step model and measurement series and their
/// shape statistics.
pub struct ValidationRun {
    /// Which application kernel.
    pub app: AppKind,
    /// Per-step model states (β_l, β_c, β_m, classification points).
    pub model: Vec<ModelState>,
    /// Simulation result under the static neutral hybrid set-up (§5.1.2).
    pub sim: SimResult,
    /// Secondary simulation under the clean domain-based SFC partitioner —
    /// the paper's contribution (5), "complementary communication results
    /// for dimension I using the new metric". The domain-based run has no
    /// partial-ordering noise, so it isolates how well β_c tracks the
    /// grid's inherent communication need.
    pub sim_domain: SimResult,
    /// Shape statistics: β_c vs. actual relative communication (left
    /// panel, hybrid partitioner as in the paper's figures).
    pub comm_shape: ShapeStats,
    /// Shape statistics: β_c vs. the domain-based run's communication
    /// (complementary dimension-I results).
    pub comm_shape_domain: ShapeStats,
    /// Shape statistics: β_m vs. actual relative migration (right panel).
    pub migration_shape: ShapeStats,
}

impl ValidationRun {
    /// Run the full §5.1 pipeline for one application: trace → model and
    /// trace → Nature+Fable-style partitioning → execution simulation.
    pub fn execute(app: AppKind, cfg: &TraceGenConfig, sim_cfg: &SimConfig) -> Self {
        let trace = cached_trace(app, cfg);
        Self::from_trace(app, &trace, sim_cfg)
    }

    /// Same, from an already generated trace.
    pub fn from_trace(app: AppKind, trace: &HierarchyTrace, sim_cfg: &SimConfig) -> Self {
        let model = ModelPipeline::new().run(trace);
        let hybrid = HybridPartitioner::default();
        let sim = simulate_trace(trace, &hybrid, sim_cfg);
        let domain = DomainSfcPartitioner::default();
        let sim_domain = simulate_trace(trace, &domain, sim_cfg);
        // Step 0 has neither a migration measurement nor a β_m (no
        // previous hierarchy); compare from step 1 on.
        let beta_c: Vec<f64> = model.iter().skip(1).map(|s| s.beta_c).collect();
        let beta_m: Vec<f64> = model.iter().skip(1).map(|s| s.beta_m).collect();
        let rel_comm: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_comm).collect();
        let rel_comm_dom: Vec<f64> = sim_domain
            .steps
            .iter()
            .skip(1)
            .map(|s| s.rel_comm)
            .collect();
        let rel_mig: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_migration).collect();
        let comm_shape = ShapeStats::compare(&beta_c, &rel_comm);
        let comm_shape_domain = ShapeStats::compare(&beta_c, &rel_comm_dom);
        let migration_shape = ShapeStats::compare(&beta_m, &rel_mig);
        Self {
            app,
            model,
            sim,
            sim_domain,
            comm_shape,
            comm_shape_domain,
            migration_shape,
        }
    }

    /// The figure number this run reproduces (paper order: RM2D=4,
    /// BL2D=5, SC2D=6, TP2D=7).
    pub fn figure_number(&self) -> u32 {
        match self.app {
            AppKind::Rm2d => 4,
            AppKind::Bl2d => 5,
            AppKind::Sc2d => 6,
            AppKind::Tp2d => 7,
        }
    }

    /// Render the figure data as CSV: one row per step with both panels'
    /// series (plus load imbalance, which Figure 1 uses).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "step,beta_l,beta_c,beta_m,rel_comm,rel_comm_domain,rel_migration,load_imbalance,total_points\n",
        );
        for ((m, s), sd) in self
            .model
            .iter()
            .zip(&self.sim.steps)
            .zip(&self.sim_domain.steps)
        {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                m.step,
                m.beta_l,
                m.beta_c,
                m.beta_m,
                s.rel_comm,
                sd.rel_comm,
                s.rel_migration,
                s.load_imbalance,
                s.total_points
            ));
        }
        out
    }

    /// One-paragraph textual summary of the shape comparison (printed by
    /// the examples and recorded in EXPERIMENTS.md).
    pub fn summary(&self) -> String {
        format!(
            "Figure {} ({}): comm[hybrid] r={:.3} amp={:.2} lead={}; comm[domain] r={:.3} amp={:.2}; migration r={:.3} amp={:.2} lead={}; periods model/measured comm {:?}/{:?} mig {:?}/{:?}",
            self.figure_number(),
            self.app.name(),
            self.comm_shape.correlation,
            self.comm_shape.amplitude_ratio,
            self.comm_shape.model_lead,
            self.comm_shape_domain.correlation,
            self.comm_shape_domain.amplitude_ratio,
            self.migration_shape.correlation,
            self.migration_shape.amplitude_ratio,
            self.migration_shape.model_lead,
            self.comm_shape.model_period,
            self.comm_shape.measured_period,
            self.migration_shape.model_period,
            self.migration_shape.measured_period,
        )
    }
}

/// The standard experiment configurations.
pub mod configs {
    use super::*;

    /// The paper's full §5.1.1 configuration.
    pub fn paper() -> TraceGenConfig {
        TraceGenConfig::paper()
    }

    /// Reduced configuration for CI-speed integration tests: the same
    /// pipeline and regrid schedule, smaller grids, 40 steps, 4 levels.
    pub fn reduced() -> TraceGenConfig {
        TraceGenConfig {
            steps: 40,
            base_cells: 48,
            max_levels: 4,
            ref_resolution: 96,
            ..TraceGenConfig::paper()
        }
    }

    /// The paper-faithful simulation configuration (16 processors).
    pub fn sim() -> SimConfig {
        SimConfig::default()
    }
}
