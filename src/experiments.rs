//! Back-compatibility shim: the experiment harness lives in
//! [`samr_engine`] now.
//!
//! The trace cache, [`ShapeStats`], [`ValidationRun`] and the standard
//! [`configs`] moved into the campaign engine (`samr-engine`, re-exported
//! as [`crate::engine`]), which generalizes the single-figure pipeline
//! this module used to hard-code into declarative cartesian sweeps. The
//! original paths keep working through these re-exports; new code should
//! depend on `samr::engine` (or `samr-engine` directly) and use
//! [`samr_engine::Campaign`] for anything that runs more than one
//! (app × partitioner × nprocs) combination.

pub use samr_engine::configs;
pub use samr_engine::store::cached_trace;
pub use samr_engine::{ShapeStats, ValidationRun};
