//! # samr — meta-partitioner reproduction facade
//!
//! This crate re-exports every subsystem of the reproduction of
//! *"A Partitioner-Centric Model for SAMR Partitioning Trade-off
//! Optimization: Part II"* (Steensland & Ray, SAND2003-8725 / ICPP 2004)
//! under one roof, and hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`.
//!
//! ## Subsystem map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `samr-geom` | integer boxes, region algebra, space-filling curves |
//! | [`grid`] | `samr-grid` | patches, levels, hierarchies, Berger–Rigoutsos clustering |
//! | [`apps`] | `samr-apps` | the four application kernels (TP2D, BL2D, SC2D, RM2D) |
//! | [`trace`] | `samr-trace` | hierarchy trace format and statistics |
//! | [`partition`] | `samr-partition` | SFC / patch-based / hybrid partitioners |
//! | [`sim`] | `samr-sim` | trace-driven execution simulator |
//! | [`model`] | `samr-core` | the paper's model: penalties and classification space |
//! | [`meta`] | `samr-meta` | the adaptive meta-partitioner |
//! | [`engine`] | `samr-engine` | scenario descriptions, the partitioner registry, campaign sweeps |
//! | [`mod@bench`] | `samr-bench` | wall-clock benchmark suites and the `BENCH_*.json` report harness |
//!
//! ## Quickstart
//!
//! ```
//! use samr::apps::{AppKind, TraceGenConfig};
//! use samr::model::ModelPipeline;
//!
//! // Generate a short BL2D hierarchy trace and compute the paper's
//! // per-step penalties ab initio from the unpartitioned hierarchy.
//! let trace = samr::apps::generate_trace(AppKind::Bl2d, &TraceGenConfig::smoke());
//! let states = ModelPipeline::new().run(&trace);
//! assert_eq!(states.len(), trace.len());
//! for s in &states {
//!     assert!((0.0..=1.0).contains(&s.beta_m));
//! }
//! ```

pub mod experiments;

pub use samr_apps as apps;
pub use samr_bench as bench;
pub use samr_core as model;
pub use samr_engine as engine;
pub use samr_geom as geom;
pub use samr_grid as grid;
pub use samr_meta as meta;
pub use samr_partition as partition;
pub use samr_sim as sim;
pub use samr_trace as trace;
