//! META1 integration: dynamic selection versus static choices, end to
//! end on real application traces.

use samr::apps::{AppKind, TraceGenConfig};
use samr::experiments::cached_trace;
use samr::meta::{compare_on_trace, MetaPartitioner};
use samr::partition::{validate_partition, Partitioner};
use samr::sim::{MachineModel, SimConfig};

#[test]
fn meta_partitions_are_valid_on_real_traces() {
    let trace = cached_trace(AppKind::Sc2d, &TraceGenConfig::smoke());
    let trace = trace.as_2d().expect("SC2D is 2-D");
    let meta = MetaPartitioner::new();
    for snap in &trace.snapshots {
        let part = meta.partition(&snap.hierarchy, 8);
        assert_eq!(validate_partition(&snap.hierarchy, &part), Ok(()));
    }
    assert_eq!(meta.decisions().len(), trace.len());
}

#[test]
fn meta_beats_the_worst_static_choice_everywhere() {
    // The cost of a wrong static choice is what the meta-partitioner
    // eliminates: on every app it must beat the worst static partitioner.
    let cfg = TraceGenConfig::smoke();
    let sim_cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let res = compare_on_trace(trace.as_2d().expect("paper app"), &sim_cfg);
        assert!(
            res.meta_vs_worst() < 1.0,
            "{}: meta {:.0} vs worst static {:.0}",
            kind.name(),
            res.meta_run.total_time,
            res.worst_static().total_time
        );
    }
}

#[test]
fn meta_stays_close_to_the_oracle_static_choice() {
    // The oracle (best-in-hindsight) static choice is a strong baseline;
    // the dynamic selection must stay within 35 % of it on every app.
    let cfg = TraceGenConfig::smoke();
    let sim_cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let res = compare_on_trace(trace.as_2d().expect("paper app"), &sim_cfg);
        assert!(
            res.meta_vs_best() < 1.35,
            "{}: meta {:.0} vs best static {:.0}",
            kind.name(),
            res.meta_run.total_time,
            res.best_static().total_time
        );
    }
}

#[test]
fn machine_and_application_change_the_static_winner() {
    // The PAC argument (§3): the best partitioner P depends on the
    // application A *and* the computer C. A deep, strongly localized
    // hierarchy on a compute-bound machine with a fast interconnect is
    // the §3.1 worst case for domain-based cuts (intractable imbalance),
    // so a balance-first family must win there — while on the real
    // application traces with a balanced machine, the domain-based
    // family wins (communication dominates). Hence: no static choice is
    // universally best.
    use samr::geom::Rect2;
    use samr::grid::GridHierarchy;
    use samr::trace::{HierarchyTrace, Snapshot, TraceMeta};

    // Deep localized pyramid on a small base grid, static over 8 steps.
    let meta_info = TraceMeta {
        app: "SYNTH-DEEP".into(),
        description: "deep localized refinement pyramid".into(),
        base_domain: Rect2::from_extents(16, 16),
        ratio: 2,
        max_levels: 4,
        regrid_interval: 4,
        min_block: 2,
        seed: 0,
    };
    let mut trace = HierarchyTrace::new(meta_info);
    for i in 0..8u32 {
        trace.push(Snapshot {
            step: i,
            time: i as f64,
            hierarchy: GridHierarchy::from_level_rects(
                Rect2::from_extents(16, 16),
                2,
                &[
                    vec![],
                    vec![Rect2::from_coords(0, 0, 11, 11)],
                    vec![Rect2::from_coords(0, 0, 15, 15)],
                    vec![Rect2::from_coords(0, 0, 23, 23)],
                ],
            ),
        });
    }
    // Compute-bound machine with a fast interconnect.
    let fast_net = MachineModel {
        cell_update: 10.0,
        cell_transfer: 0.2,
        message_latency: 1.0,
        migration_transfer: 0.1,
        partition_unit: 1.0,
    };
    let deep_res = compare_on_trace(
        &trace,
        &SimConfig {
            nprocs: 16,
            machine: fast_net,
            ..SimConfig::default()
        },
    );
    let deep_winner = deep_res.best_static().name.clone();
    assert!(
        deep_winner.starts_with("patch"),
        "deep localized + fast network should favour per-level balancing, got {deep_winner}"
    );

    // A real application trace on the balanced default machine.
    let app_trace = cached_trace(AppKind::Sc2d, &TraceGenConfig::smoke());
    let app_res = compare_on_trace(
        app_trace.as_2d().expect("SC2D is 2-D"),
        &SimConfig {
            nprocs: 8,
            ..SimConfig::default()
        },
    );
    let app_winner = app_res.best_static().name.clone();
    assert_ne!(
        deep_winner, app_winner,
        "the static winner must depend on (A, C)"
    );
}
