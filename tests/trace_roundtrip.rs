//! Trace serialization round-trips on real application traces, and the
//! model is invariant under serialization (the §5.1 methodology depends
//! on traces being a faithful interchange format).

use samr::apps::{AppKind, TraceGenConfig};
use samr::experiments::cached_trace;
use samr::model::ModelPipeline;
use samr::trace::io::{decode_binary, encode_binary, read_jsonl, write_jsonl};

#[test]
fn jsonl_roundtrip_on_real_traces() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(*trace, back, "{}", kind.name());
    }
}

#[test]
fn binary_roundtrip_on_real_traces() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let bytes = encode_binary(&trace);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(*trace, back, "{}", kind.name());
    }
}

#[test]
fn model_is_invariant_under_serialization() {
    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Bl2d, &cfg);
    let direct = ModelPipeline::new().run(&trace);
    let roundtripped = decode_binary(encode_binary(&trace)).unwrap();
    let indirect = ModelPipeline::new().run(&roundtripped);
    assert_eq!(direct, indirect);
}

#[test]
fn binary_is_compact() {
    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Sc2d, &cfg);
    let mut json = Vec::new();
    write_jsonl(&trace, &mut json).unwrap();
    let bin = encode_binary(&trace);
    assert!(
        bin.len() * 3 < json.len(),
        "binary {} vs jsonl {}",
        bin.len(),
        json.len()
    );
}
