//! Trace serialization round-trips on real application traces — 2-D and
//! 3-D — and the model is invariant under serialization (the §5.1
//! methodology depends on traces being a faithful interchange format).

use samr::apps::{AppKind, TraceGenConfig};
use samr::experiments::cached_trace;
use samr::model::ModelPipeline;
use samr::trace::io::{
    decode_binary, decode_binary_any, encode_binary, encode_binary_any, read_jsonl, read_jsonl_any,
    write_jsonl,
};
use samr::trace::AnyTrace;

fn cfg_3d() -> TraceGenConfig {
    TraceGenConfig {
        base_cells: 16,
        steps: 5,
        ..TraceGenConfig::smoke()
    }
}

#[test]
fn jsonl_roundtrip_on_real_traces() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let trace = trace.as_2d().expect("paper app");
        let mut buf = Vec::new();
        write_jsonl(trace, &mut buf).unwrap();
        let back = read_jsonl::<2, _>(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(*trace, back, "{}", kind.name());
    }
}

#[test]
fn binary_roundtrip_on_real_traces() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let trace = trace.as_2d().expect("paper app");
        let bytes = encode_binary(trace);
        let back = decode_binary::<2>(bytes).unwrap();
        assert_eq!(*trace, back, "{}", kind.name());
    }
}

#[test]
fn streaming_writer_and_reader_roundtrip_real_traces_via_files() {
    use samr::trace::io::{open_trace_source, BinarySnapshotWriter, JsonlSnapshotWriter};
    use samr::trace::{AnyTrace, MemorySource, SnapshotSource};

    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Bl2d, &cfg);
    let t2 = trace.as_2d().expect("BL2D is 2-D");
    let dir = std::env::temp_dir().join(format!("samr-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Stream out one snapshot at a time in both formats, then stream
    // back in through the sniffing file opener.
    let bin_path = dir.join("bl2d.bin.trace");
    {
        let file = std::fs::File::create(&bin_path).unwrap();
        let mut w = BinarySnapshotWriter::new(std::io::BufWriter::new(file), &t2.meta).unwrap();
        let mut src = MemorySource::new(t2);
        while let Some(s) = src.next_snapshot().unwrap() {
            w.write_snapshot(&s).unwrap();
        }
        w.finish().unwrap();
    }
    let jsonl_path = dir.join("bl2d.jsonl.trace");
    {
        let file = std::fs::File::create(&jsonl_path).unwrap();
        let mut w = JsonlSnapshotWriter::new(std::io::BufWriter::new(file), &t2.meta).unwrap();
        let mut src = MemorySource::new(t2);
        while let Some(s) = src.next_snapshot().unwrap() {
            w.write_snapshot(&s).unwrap();
        }
        w.finish().unwrap();
    }
    for path in [&bin_path, &jsonl_path] {
        let src = open_trace_source(path).unwrap();
        assert_eq!(src.dim(), 2);
        let back = src.collect().unwrap();
        assert_eq!(back, AnyTrace::D2(t2.clone()), "{}", path.display());
    }
    // The streamed binary bytes are exactly the batch encoder's bytes.
    assert_eq!(
        std::fs::read(&bin_path).unwrap(),
        encode_binary(t2).to_vec()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn roundtrips_on_real_3d_traces() {
    let trace = cached_trace(AppKind::Sp3d, &cfg_3d());
    // Binary, via the dimension-erased entry points the CLI uses.
    let bytes = encode_binary_any(&trace);
    let back = decode_binary_any(bytes).unwrap();
    assert_eq!(*trace, back);
    // JSON-lines with dimension sniffing.
    let t3 = trace.as_3d().expect("SP3D is 3-D");
    let mut buf = Vec::new();
    write_jsonl(t3, &mut buf).unwrap();
    let back = read_jsonl_any(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(back, AnyTrace::D3(t3.clone()));
}

#[test]
fn model_is_invariant_under_serialization() {
    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Bl2d, &cfg);
    let trace = trace.as_2d().expect("BL2D is 2-D");
    let direct = ModelPipeline::new().run(trace);
    let roundtripped = decode_binary::<2>(encode_binary(trace)).unwrap();
    let indirect = ModelPipeline::new().run(&roundtripped);
    assert_eq!(direct, indirect);
}

#[test]
fn model_is_invariant_under_serialization_3d() {
    let trace = cached_trace(AppKind::Sp3d, &cfg_3d());
    let trace = trace.as_3d().expect("SP3D is 3-D");
    let direct = ModelPipeline::new().run(trace);
    let roundtripped = decode_binary::<3>(encode_binary(trace)).unwrap();
    let indirect = ModelPipeline::new().run(&roundtripped);
    assert_eq!(direct, indirect);
}

#[test]
fn binary_is_compact() {
    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Sc2d, &cfg);
    let trace = trace.as_2d().expect("SC2D is 2-D");
    let mut json = Vec::new();
    write_jsonl(trace, &mut json).unwrap();
    let bin = encode_binary(trace);
    // Points serialize as plain coordinate arrays since the
    // dimension-generic refactor, which shrank the JSON too — the binary
    // format must still save at least half.
    assert!(
        bin.len() * 2 < json.len(),
        "binary {} vs jsonl {}",
        bin.len(),
        json.len()
    );
}
