//! Crash-consistency end-to-end: a worker killed mid-shard must be
//! relaunched with `--resume` by the retry machinery, re-execute only
//! its unfinished remainder, and the merged campaign must still be
//! byte-identical to the golden artifact.
//!
//! The "kill" is deterministic: the worker binary is a wrapper script
//! that, on its first invocation for the victim shard, lets the real
//! `samr` worker finish, then erases the shard manifest and one
//! scenario's artifact trio (exactly the on-disk state a worker killed
//! between two scenarios leaves behind — completed scenarios stamped,
//! the rest absent, no manifest) and dies with a signal-style exit
//! code.

#![cfg(unix)]

use samr::apps::{AppKind, TraceGenConfig};
use samr::engine::{
    merge_shards, CampaignPlan, CampaignSpec, MergeError, PartitionerSpec, ShardStrategy,
    WorkerExecutor,
};
use std::os::unix::fs::PermissionsExt;
use std::path::{Path, PathBuf};

const GOLDEN: &str = include_str!("../crates/engine/tests/golden/campaign_smoke.csv");

/// The spec of the checked-in golden campaign.
fn smoke_spec() -> CampaignSpec {
    CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Sc2d])
        .partitioners([
            PartitionerSpec::parse("hybrid").unwrap(),
            PartitionerSpec::parse("domain-sfc").unwrap(),
        ])
        .nprocs([8])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("samr-crash-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the crashy worker wrapper: first invocation for shard `0/3`
/// runs the real worker, tears its shard back to a mid-run state and
/// exits 137; every other invocation (including the retry's `--resume`
/// relaunch) execs the real binary.
fn write_crashy_worker(dir: &Path, marker_dir: &Path) -> PathBuf {
    let real = env!("CARGO_BIN_EXE_samr");
    let script = format!(
        r#"#!/bin/sh
shard=""; out=""; prev=""
for a in "$@"; do
  case "$prev" in
    --shard) shard="$a";;
    --out) out="$a";;
  esac
  prev="$a"
done
marker="{markers}/crashed-$(printf '%s' "$shard" | tr '/' '-')"
if [ "$shard" = "0/3" ] && [ ! -e "$marker" ]; then
  : > "$marker"
  "{real}" "$@" >/dev/null 2>&1
  sd="$out/shard-0-of-3"
  rm -f "$sd/shard.manifest.json"
  first=$(ls "$sd"/*.done.json | head -n 1)
  base="${{first%.done.json}}"
  rm -f "$first" "$base.csv" "$base.json"
  exit 137
fi
exec "{real}" "$@"
"#,
        markers = marker_dir.display(),
        real = real,
    );
    let path = dir.join("crashy-samr.sh");
    std::fs::write(&path, script).unwrap();
    let mut perms = std::fs::metadata(&path).unwrap().permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&path, perms).unwrap();
    path
}

#[test]
fn killed_worker_is_relaunched_with_resume_and_the_merge_stays_golden() {
    let out = temp_dir("retry-out");
    let aux = temp_dir("retry-aux");
    let bin = write_crashy_worker(&aux, &aux);
    let plan = CampaignPlan::new(&smoke_spec(), 3, ShardStrategy::RoundRobin);
    let exec = WorkerExecutor {
        bin,
        threads: Some(1),
        retries: 1,
        resume: false,
    };
    let shard_dirs = exec
        .run_workers(&plan, &out)
        .expect("the dead worker must be retried, not fail the sweep");
    assert!(
        aux.join("crashed-0-3").exists(),
        "the crash path was never taken — the test exercised nothing"
    );
    assert_eq!(shard_dirs.len(), 3);
    let report = merge_shards(&shard_dirs, &out).unwrap();
    assert_eq!(report.scenario_count, plan.len());
    let merged = std::fs::read_to_string(&report.csv_path).unwrap();
    assert!(
        merged == GOLDEN,
        "retried + resumed campaign drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&aux).ok();
}

#[test]
fn genuinely_killed_campaign_resumes_to_the_uninterrupted_bytes() {
    // A real SIGKILL mid-execution — not a post-hoc file deletion: the
    // campaign process dies at an arbitrary instant (mid-trace-gen,
    // mid-simulation, mid-write), and `--resume` must complete it to
    // the byte-identical output of an uninterrupted run, whatever
    // subset of scenarios the kill happened to have banked. The
    // reduced config runs for several seconds, so the kill lands while
    // scenarios are actually computing.
    let interrupted = temp_dir("sigkill-out");
    let control = temp_dir("sigkill-control");
    let axes = [
        "--apps",
        "tp2d",
        "--partitioners",
        "hybrid,domain-sfc",
        "--nprocs",
        "8,16",
        "--config",
        "reduced",
    ];
    let mut args: Vec<&str> = vec!["campaign"];
    args.extend(axes);
    args.extend(["--threads", "1", "--out", interrupted.to_str().unwrap()]);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_samr"))
        .args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn samr");
    std::thread::sleep(std::time::Duration::from_millis(2500));
    child.kill().expect("SIGKILL the campaign");
    child.wait().expect("reap the killed campaign");
    // Resume the wreckage; the stamped prefix is skipped, the rest
    // (including anything half-written) re-executes.
    let mut resume_args: Vec<&str> = vec!["campaign"];
    resume_args.extend(axes);
    resume_args.extend([
        "--resume",
        "--threads",
        "1",
        "--out",
        interrupted.to_str().unwrap(),
    ]);
    let resumed = std::process::Command::new(env!("CARGO_BIN_EXE_samr"))
        .args(&resume_args)
        .output()
        .expect("spawn resume");
    assert!(
        resumed.status.success(),
        "resume after SIGKILL failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let mut control_args: Vec<&str> = vec!["campaign"];
    control_args.extend(axes);
    control_args.extend(["--out", control.to_str().unwrap()]);
    let uninterrupted = std::process::Command::new(env!("CARGO_BIN_EXE_samr"))
        .args(&control_args)
        .output()
        .expect("spawn control");
    assert!(uninterrupted.status.success());
    assert_eq!(
        std::fs::read_to_string(interrupted.join("campaign.csv")).unwrap(),
        std::fs::read_to_string(control.join("campaign.csv")).unwrap(),
        "resumed-after-SIGKILL campaign drifted from the uninterrupted run"
    );
    std::fs::remove_dir_all(&interrupted).ok();
    std::fs::remove_dir_all(&control).ok();
}

#[test]
fn without_retries_a_killed_worker_fails_the_sweep_but_stays_salvageable() {
    let out = temp_dir("noretry-out");
    let aux = temp_dir("noretry-aux");
    let bin = write_crashy_worker(&aux, &aux);
    let plan = CampaignPlan::new(&smoke_spec(), 3, ShardStrategy::RoundRobin);
    let exec = WorkerExecutor {
        bin,
        threads: Some(1),
        retries: 0,
        resume: false,
    };
    let err = exec.run_workers(&plan, &out).unwrap_err();
    assert!(err.to_string().contains("shard 0"), "{err}");
    // The wreckage is salvage-aware: the merge refuses with the exact
    // resumable-shard diagnosis instead of a generic corruption error.
    let shard_dirs: Vec<PathBuf> = (0..3)
        .map(|i| out.join(format!("shard-{i}-of-3")))
        .collect();
    match merge_shards(&shard_dirs, &out).unwrap_err() {
        MergeError::ShardIncomplete { shard, rerun, .. } => {
            assert_eq!(shard, 0);
            assert!(rerun.contains("--resume"), "{rerun}");
            assert!(rerun.contains("campaign.spec.json"), "{rerun}");
        }
        other => panic!("expected ShardIncomplete, got {other:?}"),
    }
    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&aux).ok();
}
