//! End-to-end CLI coverage of distributed campaigns: the unsharded,
//! sharded-and-merged and multi-process worker paths must all produce
//! the byte-identical canonical campaign CSV (pinned by the checked-in
//! golden artifact), and the merge CLI must fail loudly on incomplete
//! shard sets.

use samr::engine::CampaignManifest;
use std::path::PathBuf;
use std::process::{Command, Output};

const GOLDEN: &str = include_str!("../crates/engine/tests/golden/campaign_smoke.csv");

/// The axis flags of the golden smoke campaign.
const AXES: [&str; 8] = [
    "--apps",
    "tp2d,sc2d",
    "--partitioners",
    "hybrid,domain-sfc",
    "--nprocs",
    "8",
    "--config",
    "smoke",
];

fn samr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_samr"))
        .args(args)
        .output()
        .expect("spawn samr")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("samr-cli-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campaign_csv(dir: &std::path::Path) -> String {
    std::fs::read_to_string(dir.join("campaign.csv"))
        .unwrap_or_else(|e| panic!("read {}/campaign.csv: {e}", dir.display()))
}

#[test]
fn unsharded_campaign_writes_the_golden_csv_and_manifest() {
    let dir = temp_dir("unsharded");
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--out", dir.to_str().unwrap()]);
    assert_ok(&samr(&args), "unsharded campaign");
    assert!(
        campaign_csv(&dir) == GOLDEN,
        "unsharded campaign.csv drifted from the golden artifact"
    );
    let manifest = std::fs::read_to_string(dir.join("campaign.manifest.json")).unwrap();
    let manifest: CampaignManifest = serde_json::from_str(&manifest).unwrap();
    assert_eq!(manifest.scenario_count, 4);
    assert_eq!(manifest.shards, 1);
    assert!(!manifest.plan_hash.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn three_cli_shards_merge_back_to_the_golden_csv() {
    let dir = temp_dir("shards");
    for i in 0..3 {
        let shard = format!("{i}/3");
        let mut args = vec!["campaign"];
        args.extend(AXES);
        args.extend([
            "--shard",
            &shard,
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert_ok(&samr(&args), &format!("shard {i}/3"));
    }
    let merge = samr(&["campaign-merge", dir.to_str().unwrap()]);
    assert_ok(&merge, "campaign-merge");
    assert!(
        campaign_csv(&dir) == GOLDEN,
        "3-shard merged campaign.csv drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_processes_produce_the_golden_csv() {
    let dir = temp_dir("workers");
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend([
        "--workers",
        "3",
        "--threads",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_ok(&samr(&args), "3-worker campaign");
    assert!(
        campaign_csv(&dir) == GOLDEN,
        "multi-process campaign.csv drifted from the golden artifact"
    );
    // The worker path leaves the shard directories and the spec file
    // behind for audit; the merged manifest records all three shards.
    assert!(dir.join("campaign.spec.json").exists());
    assert!(dir
        .join("shard-0-of-3")
        .join("shard.manifest.json")
        .exists());
    let manifest = std::fs::read_to_string(dir.join("campaign.manifest.json")).unwrap();
    let manifest: CampaignManifest = serde_json::from_str(&manifest).unwrap();
    assert_eq!(manifest.shards, 3);
    assert_eq!(manifest.scenario_count, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_refuses_an_incomplete_shard_set() {
    let dir = temp_dir("incomplete");
    for i in [0usize, 2] {
        let shard = format!("{i}/3");
        let mut args = vec!["campaign"];
        args.extend(AXES);
        args.extend(["--shard", &shard, "--out", dir.to_str().unwrap()]);
        assert_ok(&samr(&args), &format!("shard {i}/3"));
    }
    let merge = samr(&["campaign-merge", dir.to_str().unwrap()]);
    assert!(
        !merge.status.success(),
        "merge of 2 of 3 shards unexpectedly succeeded"
    );
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(
        stderr.contains("missing shard") && stderr.contains("[1]"),
        "unhelpful merge error: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_unsharded_campaign_resumes_to_the_golden_csv() {
    let dir = temp_dir("resume-unsharded");
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--out", dir.to_str().unwrap()]);
    assert_ok(&samr(&args), "initial campaign");
    // Tear the directory back to a mid-run state: one scenario loses
    // its artifacts and stamp, the canonical CSV is gone too.
    let victim = "tp2d_hybrid_p8_g1";
    for name in [
        format!("{victim}.csv"),
        format!("{victim}.json"),
        format!("{victim}.done.json"),
        "campaign.csv".to_string(),
    ] {
        std::fs::remove_file(dir.join(name)).unwrap();
    }
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--resume", "--out", dir.to_str().unwrap()]);
    let out = samr(&args);
    assert_ok(&out, "resumed campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 scenarios executed, 3 resumed as already complete"),
        "resume did not skip the complete scenarios: {stderr}"
    );
    assert!(
        campaign_csv(&dir) == GOLDEN,
        "resumed campaign.csv drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retries_flag_requires_workers() {
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--retries", "2"]);
    let out = samr(&args);
    assert!(
        !out.status.success(),
        "--retries without --workers was accepted"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--workers"),
        "error does not point at --workers"
    );
}

#[test]
fn unparsable_trace_cache_budget_warns_instead_of_silently_defaulting() {
    let dir = temp_dir("budget-warning");
    let out = Command::new(env!("CARGO_BIN_EXE_samr"))
        .args([
            "campaign",
            "--apps",
            "tp2d",
            "--partitioners",
            "hybrid",
            "--nprocs",
            "4",
            "--config",
            "smoke",
            "--out",
            dir.to_str().unwrap(),
        ])
        .env("SAMR_TRACE_CACHE_BYTES", "256MB")
        .output()
        .expect("spawn samr");
    assert_ok(&out, "campaign under a bad budget value");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("SAMR_TRACE_CACHE_BYTES") && stderr.contains("256MB"),
        "no warning naming the rejected value: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_shard_families_are_rejected_by_name_at_merge() {
    let dir = temp_dir("mixed-families");
    for i in 0..2 {
        let shard = format!("{i}/2");
        let mut args = vec!["campaign"];
        args.extend(AXES);
        args.extend(["--shard", &shard, "--out", dir.to_str().unwrap()]);
        assert_ok(&samr(&args), &format!("shard {i}/2"));
    }
    // A leftover directory from an older 3-way split of the same
    // campaign: discovery must reject the mix by name.
    std::fs::create_dir_all(dir.join("shard-0-of-3")).unwrap();
    let merge = samr(&["campaign-merge", dir.to_str().unwrap()]);
    assert!(!merge.status.success(), "mixed families merged");
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(
        stderr.contains("different shard counts"),
        "unhelpful mixed-family error: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_flag_validation_rejects_malformed_values() {
    for bad in ["3/3", "2", "a/b", "1/0"] {
        let mut args = vec!["campaign"];
        args.extend(AXES);
        args.extend(["--shard", bad]);
        let out = samr(&args);
        assert!(!out.status.success(), "--shard {bad} was accepted");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--shard"),
            "--shard {bad}: error does not name the flag"
        );
    }
    // --shard and --workers together make no sense.
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--shard", "0/2", "--workers", "2"]);
    let out = samr(&args);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn spec_file_reproduces_the_axis_flags_campaign() {
    // A spec written by one process and executed from the file by
    // another (what --workers does internally) plans the same campaign.
    let dir = temp_dir("specfile");
    let mut args = vec!["campaign"];
    args.extend(AXES);
    args.extend(["--out", dir.to_str().unwrap()]);
    assert_ok(&samr(&args), "axis-flags campaign");
    let spec_path = dir.join("respec.json");
    let manifest = std::fs::read_to_string(dir.join("campaign.manifest.json")).unwrap();
    let manifest: CampaignManifest = serde_json::from_str(&manifest).unwrap();
    std::fs::write(&spec_path, serde_json::to_string(&manifest.spec).unwrap()).unwrap();
    let redir = temp_dir("specfile-re");
    let out = samr(&[
        "campaign",
        "--spec",
        spec_path.to_str().unwrap(),
        "--out",
        redir.to_str().unwrap(),
    ]);
    assert_ok(&out, "spec-file campaign");
    assert_eq!(campaign_csv(&dir), campaign_csv(&redir));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&redir).ok();
}
