//! Cross-crate integration: the full trace → model / trace → partition →
//! simulate pipeline holds its invariants for every application kernel —
//! 2-D and 3-D — and every partitioner family.

use samr::apps::{generate_trace, AppKind, TraceGenConfig};
use samr::experiments::cached_trace;
use samr::model::ModelPipeline;
use samr::partition::{
    validate_partition, DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner,
};
use samr::sim::{simulate_trace, SimConfig};
use samr::trace::HierarchyTrace;
use std::sync::Arc;

fn partitioners<const D: usize>() -> Vec<Box<dyn Partitioner<D> + Sync>> {
    vec![
        Box::new(DomainSfcPartitioner::default()),
        Box::new(PatchPartitioner::default()),
        Box::new(HybridPartitioner::default()),
    ]
}

/// Cached 2-D trace of one of the paper's kernels.
fn trace2(kind: AppKind, cfg: &TraceGenConfig) -> Arc<HierarchyTrace<2>> {
    let t = cached_trace(kind, cfg);
    Arc::new(t.as_2d().expect("paper app").clone())
}

fn cfg_3d() -> TraceGenConfig {
    TraceGenConfig {
        base_cells: 16,
        steps: 6,
        ..TraceGenConfig::smoke()
    }
}

/// Cached 3-D trace of the advecting-sphere workload.
fn trace3() -> Arc<HierarchyTrace<3>> {
    let t = cached_trace(AppKind::Sp3d, &cfg_3d());
    Arc::new(t.as_3d().expect("SP3D is 3-D").clone())
}

#[test]
fn every_app_produces_valid_hierarchies() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = trace2(kind, &cfg);
        assert_eq!(trace.len(), cfg.steps as usize, "{}", kind.name());
        for snap in &trace.snapshots {
            snap.hierarchy
                .validate(cfg.min_block)
                .unwrap_or_else(|e| panic!("{} step {}: {e}", kind.name(), snap.step));
            assert!(snap.hierarchy.depth() <= cfg.max_levels);
        }
    }
    // The 3-D workload obeys the same structural invariants.
    let cfg = cfg_3d();
    let trace = trace3();
    assert_eq!(trace.len(), cfg.steps as usize);
    for snap in &trace.snapshots {
        snap.hierarchy
            .validate(cfg.min_block)
            .unwrap_or_else(|e| panic!("SP3D step {}: {e}", snap.step));
        assert!(snap.hierarchy.depth() <= cfg.max_levels);
    }
}

#[test]
fn every_partitioner_tiles_every_snapshot() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = trace2(kind, &cfg);
        for p in partitioners::<2>() {
            for nprocs in [3, 16] {
                for snap in trace.snapshots.iter().step_by(3) {
                    let part = p.partition(&snap.hierarchy, nprocs);
                    validate_partition(&snap.hierarchy, &part).unwrap_or_else(|e| {
                        panic!(
                            "{} {} nprocs={nprocs} step {}: {e}",
                            kind.name(),
                            p.name(),
                            snap.step
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn every_partitioner_tiles_every_3d_snapshot() {
    let trace = trace3();
    for p in partitioners::<3>() {
        for nprocs in [3, 8] {
            for snap in trace.snapshots.iter().step_by(2) {
                let part = p.partition(&snap.hierarchy, nprocs);
                validate_partition(&snap.hierarchy, &part).unwrap_or_else(|e| {
                    panic!("SP3D {} nprocs={nprocs} step {}: {e}", p.name(), snap.step)
                });
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_across_thread_counts() {
    // The simulator parallelizes over snapshots; results must not depend
    // on scheduling. Run twice and compare bit-for-bit.
    let trace = trace2(AppKind::Sc2d, &TraceGenConfig::smoke());
    let cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };
    let p = HybridPartitioner::default();
    let a = simulate_trace(&trace, &p, &cfg);
    let b = simulate_trace(&trace, &p, &cfg);
    assert_eq!(a, b);
}

#[test]
fn simulation_runs_end_to_end_in_3d() {
    let trace = trace3();
    let cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };
    for p in partitioners::<3>() {
        let res = simulate_trace(&*trace, p.as_ref(), &cfg);
        assert_eq!(res.steps.len(), trace.len());
        assert!(res.total_time > 0.0, "{}", p.name());
        let total_mig: u64 = res.steps.iter().map(|s| s.migration_cells).sum();
        assert!(
            total_mig > 0,
            "{}: a moving shell must migrate data",
            p.name()
        );
        for s in &res.steps {
            assert!(s.load_imbalance >= 1.0 - 1e-12);
            assert!(s.rel_comm >= 0.0);
            assert!((0.0..=2.0).contains(&s.rel_migration));
        }
        // Determinism holds in 3-D too.
        assert_eq!(res, simulate_trace(&*trace, p.as_ref(), &cfg));
    }
}

#[test]
fn trace_generation_is_reproducible() {
    let cfg = TraceGenConfig::smoke();
    let a = generate_trace(AppKind::Rm2d, &cfg);
    let b = generate_trace(AppKind::Rm2d, &cfg);
    assert_eq!(a, b);
    // A different seed genuinely changes the trace.
    let c = generate_trace(
        AppKind::Rm2d,
        &TraceGenConfig {
            seed: cfg.seed + 1,
            ..cfg
        },
    );
    assert_ne!(a, c);
}

#[test]
fn model_runs_on_every_trace_and_is_pure() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = trace2(kind, &cfg);
        let p = ModelPipeline::new();
        let a = p.run(&trace);
        let b = p.run(&trace);
        assert_eq!(a, b, "{}", kind.name());
        assert_eq!(a.len(), trace.len());
    }
    // The model consumes 3-D hierarchies with the same invariants.
    let trace = trace3();
    let states = ModelPipeline::new().run(&trace);
    assert_eq!(states.len(), trace.len());
    for s in &states {
        assert!((0.0..=1.0).contains(&s.beta_l));
        assert!((0.0..=1.0).contains(&s.beta_c));
        assert!((0.0..=1.0).contains(&s.beta_m));
    }
}

#[test]
fn streamed_pipeline_matches_batch_for_every_app() {
    // End to end: generator step-stream → windowed simulation and
    // incremental model fold must equal the batch pipeline bit for bit,
    // for every application of either dimension.
    use samr::apps::trace_source_any;
    use samr::sim::{simulate_source, SimConfig};
    use samr::trace::AnySnapshotSource;

    let cfg2 = TraceGenConfig::smoke();
    let cfg = |kind: AppKind| {
        if kind.dim() == 3 {
            cfg_3d()
        } else {
            cfg2.clone()
        }
    };
    for kind in AppKind::EVERY {
        let cfg = cfg(kind);
        let sim_cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        match trace_source_any(kind, &cfg) {
            AnySnapshotSource::D2(mut src) => {
                let t = trace2(kind, &cfg);
                let p = HybridPartitioner::default();
                let streamed = simulate_source(&mut src, &p, &sim_cfg, 3).unwrap();
                assert_eq!(
                    streamed,
                    simulate_trace(&t, &p, &sim_cfg),
                    "{}",
                    kind.name()
                );
                let mut model_src = samr::apps::trace_source(kind, &cfg);
                let states = ModelPipeline::new()
                    .run_source::<2>(&mut model_src)
                    .unwrap();
                assert_eq!(states, ModelPipeline::new().run(&t), "{}", kind.name());
            }
            AnySnapshotSource::D3(mut src) => {
                let t = trace3();
                let p = HybridPartitioner::default();
                let streamed = simulate_source(&mut src, &p, &sim_cfg, 3).unwrap();
                assert_eq!(
                    streamed,
                    simulate_trace(&t, &p, &sim_cfg),
                    "{}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn domain_based_never_pays_inter_level_comm() {
    use samr::sim::comm::inter_level_comm;
    let cfg = TraceGenConfig::smoke();
    let p = DomainSfcPartitioner::default();
    for kind in AppKind::ALL {
        let trace = trace2(kind, &cfg);
        for snap in trace.snapshots.iter().step_by(4) {
            let part = p.partition(&snap.hierarchy, 8);
            assert_eq!(
                inter_level_comm(&snap.hierarchy, &part),
                0,
                "{} step {}",
                kind.name(),
                snap.step
            );
        }
    }
    // The defining domain-based property is dimension-independent.
    let trace = trace3();
    for snap in trace.snapshots.iter().step_by(2) {
        let part = p.partition(&snap.hierarchy, 8);
        assert_eq!(inter_level_comm(&snap.hierarchy, &part), 0);
    }
}

#[test]
fn workload_conservation_across_partitions() {
    // Whatever the partitioner, per-processor loads sum to the hierarchy
    // workload — no cells lost or duplicated.
    let cfg = TraceGenConfig::smoke();
    let trace = trace2(AppKind::Tp2d, &cfg);
    for p in partitioners::<2>() {
        for snap in trace.snapshots.iter().step_by(3) {
            let part = p.partition(&snap.hierarchy, 7);
            let loads = part.loads(snap.hierarchy.ratio);
            assert_eq!(
                loads.iter().sum::<u64>(),
                snap.hierarchy.workload(),
                "{} step {}",
                p.name(),
                snap.step
            );
        }
    }
    let trace = trace3();
    for p in partitioners::<3>() {
        for snap in trace.snapshots.iter().step_by(2) {
            let part = p.partition(&snap.hierarchy, 7);
            assert_eq!(
                part.loads(snap.hierarchy.ratio).iter().sum::<u64>(),
                snap.hierarchy.workload(),
                "{}",
                p.name()
            );
        }
    }
}
