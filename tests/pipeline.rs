//! Cross-crate integration: the full trace → model / trace → partition →
//! simulate pipeline holds its invariants for every application kernel
//! and every partitioner family.

use samr::apps::{generate_trace, AppKind, TraceGenConfig};
use samr::experiments::cached_trace;
use samr::model::ModelPipeline;
use samr::partition::{
    validate_partition, DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner,
};
use samr::sim::{simulate_trace, SimConfig};

fn partitioners() -> Vec<Box<dyn Partitioner + Sync>> {
    vec![
        Box::new(DomainSfcPartitioner::default()),
        Box::new(PatchPartitioner::default()),
        Box::new(HybridPartitioner::default()),
    ]
}

#[test]
fn every_app_produces_valid_hierarchies() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        assert_eq!(trace.len(), cfg.steps as usize, "{}", kind.name());
        for snap in &trace.snapshots {
            snap.hierarchy
                .validate(cfg.min_block)
                .unwrap_or_else(|e| panic!("{} step {}: {e}", kind.name(), snap.step));
            assert!(snap.hierarchy.depth() <= cfg.max_levels);
        }
    }
}

#[test]
fn every_partitioner_tiles_every_snapshot() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        for p in partitioners() {
            for nprocs in [3, 16] {
                for snap in trace.snapshots.iter().step_by(3) {
                    let part = p.partition(&snap.hierarchy, nprocs);
                    validate_partition(&snap.hierarchy, &part).unwrap_or_else(|e| {
                        panic!(
                            "{} {} nprocs={nprocs} step {}: {e}",
                            kind.name(),
                            p.name(),
                            snap.step
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_across_thread_counts() {
    // The simulator parallelizes over snapshots; results must not depend
    // on scheduling. Run twice and compare bit-for-bit.
    let trace = cached_trace(AppKind::Sc2d, &TraceGenConfig::smoke());
    let cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };
    let p = HybridPartitioner::default();
    let a = simulate_trace(&trace, &p, &cfg);
    let b = simulate_trace(&trace, &p, &cfg);
    assert_eq!(a, b);
}

#[test]
fn trace_generation_is_reproducible() {
    let cfg = TraceGenConfig::smoke();
    let a = generate_trace(AppKind::Rm2d, &cfg);
    let b = generate_trace(AppKind::Rm2d, &cfg);
    assert_eq!(a, b);
    // A different seed genuinely changes the trace.
    let c = generate_trace(
        AppKind::Rm2d,
        &TraceGenConfig {
            seed: cfg.seed + 1,
            ..cfg
        },
    );
    assert_ne!(a, c);
}

#[test]
fn model_runs_on_every_trace_and_is_pure() {
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let p = ModelPipeline::new();
        let a = p.run(&trace);
        let b = p.run(&trace);
        assert_eq!(a, b, "{}", kind.name());
        assert_eq!(a.len(), trace.len());
    }
}

#[test]
fn domain_based_never_pays_inter_level_comm() {
    use samr::sim::comm::inter_level_comm;
    let cfg = TraceGenConfig::smoke();
    let p = DomainSfcPartitioner::default();
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        for snap in trace.snapshots.iter().step_by(4) {
            let part = p.partition(&snap.hierarchy, 8);
            assert_eq!(
                inter_level_comm(&snap.hierarchy, &part),
                0,
                "{} step {}",
                kind.name(),
                snap.step
            );
        }
    }
}

#[test]
fn workload_conservation_across_partitions() {
    // Whatever the partitioner, per-processor loads sum to the hierarchy
    // workload — no cells lost or duplicated.
    let cfg = TraceGenConfig::smoke();
    let trace = cached_trace(AppKind::Tp2d, &cfg);
    for p in partitioners() {
        for snap in trace.snapshots.iter().step_by(3) {
            let part = p.partition(&snap.hierarchy, 7);
            let loads = part.loads(snap.hierarchy.ratio);
            assert_eq!(
                loads.iter().sum::<u64>(),
                snap.hierarchy.workload(),
                "{} step {}",
                p.name(),
                snap.step
            );
        }
    }
}
