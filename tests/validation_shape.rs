//! QUAL1: the paper's §5.2 qualitative claims, asserted quantitatively.
//!
//! "Examining the plots, it seems that the proposed model generally
//! captures the essence of application behavior, i.e., a larger β_m
//! generally corresponds to a greater amount of data migration and a
//! larger β_c generally corresponds to larger communication amount. The
//! trends are similar, and in case of oscillatory behavior, the model
//! captures the time period of the oscillation. […] β_c reflects a
//! 'worst-case scenario' […] the partitioner could in reality cope
//! relatively easy. […] The penalty β_m, on the other hand, is somewhat
//! cautious in its predictions."
//!
//! Thresholds are calibrated on the reduced configuration (same pipeline
//! and regrid schedule as the paper set-up, smaller grids) with generous
//! margins; the paper-scale numbers live in EXPERIMENTS.md.

use samr::apps::AppKind;
use samr::experiments::{configs, ValidationRun};
use samr::sim::metrics::dominant_period;

fn runs() -> Vec<ValidationRun> {
    let cfg = configs::reduced();
    let sim = configs::sim();
    AppKind::ALL
        .iter()
        .map(|&k| ValidationRun::execute(k, &cfg, &sim))
        .collect()
}

#[test]
fn larger_beta_m_means_more_migration() {
    // Positive correlation between β_m and measured relative migration
    // for every application.
    for run in runs() {
        assert!(
            run.migration_shape.correlation > 0.3,
            "{}: migration correlation {:.3} too weak",
            run.app.name(),
            run.migration_shape.correlation
        );
    }
}

#[test]
fn larger_beta_c_means_more_communication() {
    // Positive correlation between β_c and the measured relative
    // communication of the clean domain-based run (the hybrid's partially
    // ordered SFC adds selection noise the ab-initio model cannot see —
    // see EXPERIMENTS.md).
    for run in runs() {
        assert!(
            run.comm_shape_domain.correlation > 0.25,
            "{}: communication correlation {:.3} too weak",
            run.app.name(),
            run.comm_shape_domain.correlation
        );
    }
}

#[test]
fn beta_c_is_aggressive_worst_case() {
    // β_c must bound the measured domain-based communication from above
    // on average ("reflects a worst-case scenario").
    for run in runs() {
        assert!(
            run.comm_shape_domain.amplitude() > 1.0,
            "{}: β_c amplitude ratio {:.2} is not aggressive",
            run.app.name(),
            run.comm_shape_domain.amplitude()
        );
    }
}

#[test]
fn beta_m_is_cautious_for_most_applications() {
    // "The amplitude was generally slightly lower": under the hybrid
    // partitioner (whose partially ordered SFC inflates actual
    // migration), β_m's mean stays below the measurement for at least
    // three of the four kernels.
    let cautious = runs()
        .iter()
        .filter(|r| r.migration_shape.amplitude() < 1.0)
        .count();
    assert!(cautious >= 3, "only {cautious}/4 applications cautious");
}

#[test]
fn bl2d_model_shows_the_pulse_period() {
    // The BL2D injection pulse has a 10-step period; β_m must pick it up
    // (the measured series is noisier at reduced scale, so only the model
    // side is asserted here; the paper-scale run shows 10/10).
    let cfg = configs::reduced();
    let run = ValidationRun::execute(AppKind::Bl2d, &cfg, &configs::sim());
    let beta_m: Vec<f64> = run.model.iter().skip(1).map(|s| s.beta_m).collect();
    let period = dominant_period(&beta_m).expect("β_m should oscillate for BL2D");
    assert!(
        (8..=12).contains(&period),
        "BL2D β_m period {period} not near the 10-step pulse"
    );
}

#[test]
fn penalties_are_well_formed_series() {
    for run in runs() {
        for s in run.model.iter() {
            assert!((0.0..=1.0).contains(&s.beta_l));
            assert!((0.0..=1.0).contains(&s.beta_c));
            assert!((0.0..=1.0).contains(&s.beta_m));
        }
        assert_eq!(run.model.len(), run.sim.steps.len());
        // Measured series are physical.
        for s in &run.sim.steps {
            assert!(s.rel_comm >= 0.0);
            assert!(s.rel_migration >= 0.0);
            assert!(s.load_imbalance >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn model_peaks_do_not_lag_measurements_much() {
    // §5.2: "It seems that β_m peaks one time-step before the relative
    // data migration occasionally" — the model may lead, but it should
    // not systematically trail the measurement.
    for run in runs() {
        assert!(
            run.migration_shape.model_lead >= -1,
            "{}: model lags by {}",
            run.app.name(),
            -run.migration_shape.model_lead
        );
    }
}
