//! Property-based tests on the model invariants over randomly generated
//! hierarchies and hierarchy pairs.

use proptest::prelude::*;
use samr::geom::{Point2, Rect2};
use samr::grid::{GridHierarchy, Level};
use samr::model::tradeoff1::{beta_c, beta_l, dimension1};
use samr::model::tradeoff3::{beta_m, beta_m_with, hierarchy_overlap, BetaMDenominator};
use samr::partition::{validate_partition, DomainSfcPartitioner, HybridPartitioner, Partitioner};

/// Strategy: a random properly-nested 2-3 level hierarchy on a 32x32
/// base. Level-1 boxes are sampled in base coordinates and refined so
/// nesting holds by construction.
fn arb_hierarchy() -> impl Strategy<Value = GridHierarchy<2>> {
    // Up to 3 disjoint level-1 footprint boxes in base space.
    let footprint = prop::collection::vec((0i64..24, 0i64..24, 2i64..8, 2i64..8), 1..4);
    (footprint, any::<bool>()).prop_map(|(boxes, deep)| {
        // Make the base-space boxes disjoint by snapping them into
        // disjoint quadrant slots when they collide.
        let mut placed: Vec<Rect2> = Vec::new();
        for (x, y, w, h) in boxes {
            let cand = Rect2::new(
                Point2::new(x, y),
                Point2::new((x + w).min(31), (y + h).min(31)),
            );
            if placed.iter().all(|p| !p.intersects(&cand)) {
                placed.push(cand);
            }
        }
        if placed.is_empty() {
            placed.push(Rect2::from_coords(4, 4, 9, 9));
        }
        let level1: Vec<Rect2> = placed.iter().map(|b| b.refine(2)).collect();
        let mut levels = vec![vec![], level1];
        if deep {
            // Level 2 nested inside the first level-1 patch.
            let inner = placed[0].refine(2);
            if let Some(shrunk) = inner.shrink(1) {
                if shrunk.extent().x >= 2 && shrunk.extent().y >= 2 {
                    levels.push(vec![shrunk.refine(2)]);
                }
            }
        }
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &levels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_hierarchies_are_valid(h in arb_hierarchy()) {
        prop_assert!(h.validate(2).is_ok());
    }

    #[test]
    fn beta_m_is_zero_iff_identical(h in arb_hierarchy()) {
        prop_assert_eq!(beta_m(&h, &h.clone()), 0.0);
    }

    #[test]
    fn beta_m_bounds_and_symmetric_overlap(a in arb_hierarchy(), b in arb_hierarchy()) {
        let v = beta_m(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(hierarchy_overlap(&a, &b), hierarchy_overlap(&b, &a));
        // Denominator relation: same overlap, so the penalty with the
        // smaller denominator is the larger one (before clamping).
        let cur = beta_m_with(&a, &b, BetaMDenominator::Current);
        let prev = beta_m_with(&a, &b, BetaMDenominator::Previous);
        if b.total_points() >= a.total_points() {
            prop_assert!(cur >= prev - 1e-12);
        } else {
            prop_assert!(cur <= prev + 1e-12);
        }
    }

    #[test]
    fn translation_increases_beta_m(h in arb_hierarchy(), d in 1i64..6) {
        // Shifting all refined patches strictly reduces overlap, so β_m
        // must not decrease.
        let mut moved = h.clone();
        for level in moved.levels.iter_mut().skip(1) {
            let shifted: Vec<Rect2> = level
                .patches
                .iter()
                .map(|p| p.rect.translate(Point2::new(d * 2, 0)))
                .collect();
            *level = Level::from_rects(&shifted);
        }
        // The shift may push patches outside the domain: skip those
        // cases (validate would fail).
        prop_assume!(moved.validate(1).is_ok());
        let same = beta_m(&h, &h.clone());
        let shifted = beta_m(&h, &moved);
        prop_assert!(shifted >= same);
    }

    #[test]
    fn penalties_always_in_range(h in arb_hierarchy()) {
        let c = beta_c(&h, 16);
        let l = beta_l(&h, 2, 16);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((0.0..=1.0).contains(&l));
        let d1 = dimension1(l, c);
        prop_assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn partitioners_tile_random_hierarchies(h in arb_hierarchy(), nprocs in 1usize..12) {
        let sfc = DomainSfcPartitioner::default().partition(&h, nprocs);
        prop_assert_eq!(validate_partition(&h, &sfc), Ok(()));
        let hybrid = HybridPartitioner::default().partition(&h, nprocs);
        prop_assert_eq!(validate_partition(&h, &hybrid), Ok(()));
        // Loads conserve the workload.
        prop_assert_eq!(sfc.loads(2).iter().sum::<u64>(), h.workload());
        prop_assert_eq!(hybrid.loads(2).iter().sum::<u64>(), h.workload());
    }

    #[test]
    fn beta_c_monotone_in_processors(h in arb_hierarchy(), p in 2usize..64) {
        prop_assert!(beta_c(&h, p * 2) >= beta_c(&h, p) - 1e-12);
    }
}
