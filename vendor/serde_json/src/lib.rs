//! Offline stand-in for `serde_json`, working over the vendored `serde`
//! value tree.
//!
//! Emits compact JSON with real-serde field order and escaping rules
//! (floats use Rust's shortest round-trip formatting; non-finite floats
//! become `null`, as in real `serde_json`), and parses the full JSON
//! grammar back into the value tree.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self(format!("io: {e}"))
    }
}

// ---------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Shortest representation that round-trips exactly.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    // Keep the number a float on re-parse.
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("bad \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::msg(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

/// Parse a JSON value from bytes.
pub fn value_from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let v = value_from_slice(bytes)?;
    Ok(T::deserialize(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::I64(-42),
            Value::U64(7),
            Value::F64(0.25),
            Value::Str("a \"quoted\"\nline".into()),
        ] {
            let mut s = String::new();
            write_value(&mut s, &v);
            assert_eq!(value_from_slice(s.as_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn float_precision_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456, -0.0] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(x));
            match value_from_slice(s.as_bytes()).unwrap() {
                Value::F64(back) => assert_eq!(back.to_bits(), x.to_bits(), "{x}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Map(vec![("c".into(), Value::F64(2.5))])),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        assert_eq!(s, r#"{"a":[1,null],"b":{"c":2.5}}"#);
        assert_eq!(value_from_slice(s.as_bytes()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut s = String::new();
        write_value(&mut s, &Value::F64(f64::INFINITY));
        assert_eq!(s, "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_slice(b"{broken").is_err());
        assert!(value_from_slice(b"[1,2,").is_err());
        assert!(value_from_slice(b"12 34").is_err());
        assert!(value_from_slice(b"").is_err());
    }
}
