//! Offline stand-in for the `criterion` crate.
//!
//! Supports the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotations) with a deliberately simple measurement loop:
//! one warm-up iteration, then `sample_size` timed iterations, reporting
//! min/mean per-iteration wall time. No statistics, no plots, no
//! comparison state — wall-clock signal only, with zero dependencies.
//!
//! When invoked with `--test` (as `cargo test --benches` does) each
//! benchmark runs exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported as-is).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing policy for [`Bencher::iter_batched`]. The stand-in runs
/// one batch per measured iteration regardless of the hint.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup per iteration.
    PerIteration,
    /// Small inputs (hint only).
    SmallInput,
    /// Large inputs (hint only).
    LargeInput,
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Passed to benchmark closures; runs and times the measurement loop.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, called once per measured iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.results.push(t0.elapsed());
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.results.push(t0.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench -- <filter>`; `--test` runs each bench once.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Self {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self, requested: usize) -> usize {
        if self.test_mode {
            1
        } else {
            requested.max(1)
        }
    }

    fn run_one(
        &mut self,
        id: &str,
        samples: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut results = Vec::with_capacity(samples);
        let samples = self.effective_samples(samples);
        f(&mut Bencher {
            samples,
            results: &mut results,
        });
        if results.is_empty() {
            println!("{id:40} (no measurement)");
            return;
        }
        let min = results.iter().min().copied().unwrap_or_default();
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{id:40} min {:>12}  mean {:>12}  ({} samples){rate}",
            format_duration(min),
            format_duration(mean),
            results.len()
        );
    }

    /// Run one benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = self.sample_size;
        self.run_one(&id, samples, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&id, samples, throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion
            .run_one(&id, samples, throughput, &mut |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Define a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
