//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, `prop::collection::vec`,
//! `any::<T>()`, `.prop_map(...)`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - cases are drawn from a fixed per-test seed (deterministic across
//!   runs and machines, no `PROPTEST_CASES` env handling);
//! - failing cases are reported with their inputs but **not shrunk**.

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $draw:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$draw(self.start, self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Widen before the +1 so `..=MAX` cannot overflow.
                    rng.draw_inclusive(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(
        i8 => draw_i8, i16 => draw_i16, i32 => draw_i32, i64 => draw_i64,
        u8 => draw_u8, u16 => draw_u16, u32 => draw_u32, u64 => draw_u64,
        usize => draw_usize
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.draw_f64(self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.draw_usize(self.size.start, self.size.end.max(self.size.start + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner types: configuration, RNG, case errors.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed or rejected property case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The inputs did not satisfy a `prop_assume!` precondition; the
        /// case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Build a rejection from a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "{m}"),
                Self::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic generator driving the strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (stable across runs and platforms).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives every test its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn draw_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + u * (hi - lo)
        }

        fn draw_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "empty strategy range");
            let span = (hi - lo) as u128;
            let v = ((self.next_u64() as u128) * span) >> 64;
            lo + v as i128
        }

        /// Uniform value in `[lo, hi]` (inclusive, pre-widened operands).
        pub fn draw_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
            self.draw_i128(lo, hi + 1)
        }
    }

    macro_rules! impl_draw {
        ($($fn_name:ident => $t:ty),*) => {$(
            impl TestRng {
                /// Uniform value in `[lo, hi)`.
                pub fn $fn_name(&mut self, lo: $t, hi: $t) -> $t {
                    self.draw_i128(lo as i128, hi as i128) as $t
                }
            }
        )*};
    }

    impl_draw!(
        draw_i8 => i8, draw_i16 => i16, draw_i32 => i32, draw_i64 => i64,
        draw_u8 => u8, draw_u16 => u16, draw_u32 => u32, draw_u64 => u64,
        draw_usize => usize
    );
}

/// Assert a condition inside a property, failing the case (not
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Define property tests: each function's arguments are drawn from the
/// given strategies for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)*
                // Describe inputs up front: the body may consume them.
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)* ""),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(e) => panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// The proptest prelude: glob-import in property-test modules.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..17, u in 0.0f64..1.0, b in any::<bool>()) {
            prop_assert!((-5..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&u));
            if b {
                prop_assert!(x >= -5);
            } else {
                prop_assert!(x < 17);
            }
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn prop_map_applies(r in (0u64..10, 1u64..5).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(r % 10 >= 1 && r % 10 < 5);
            prop_assert_eq!(r / 10, r / 10);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy as _;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
