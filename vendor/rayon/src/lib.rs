//! Offline stand-in for the `rayon` crate.
//!
//! Provides the data-parallel subset this workspace uses — `par_iter()`
//! on slices, `into_par_iter()` on vectors and `usize` ranges, `map` +
//! `collect`/`for_each`, and a [`ThreadPool`] whose `install` scopes the
//! worker count — built on `std::thread::scope`.
//!
//! Results are always produced **in input order**: the executor splits
//! the index space into contiguous chunks, each worker writes its own
//! chunk's slots, and the joined output vector is assembled by index.
//! Combined with pure per-item closures this makes every parallel map
//! bit-identical for any thread count, which the engine's determinism
//! tests assert.
//!
//! Like real rayon's single work-stealing pool, parallelism is bounded
//! at one level: a parallel operation started *from inside* a worker
//! thread runs sequentially on that worker instead of spawning another
//! layer of threads. Without this, a campaign-level `par_iter` whose
//! scenarios each call the simulator's snapshot-level `par_iter` would
//! oversubscribe the machine quadratically.

use std::cell::Cell;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };

    /// Set on worker threads: nested parallel operations run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads parallel operations will use (1 inside
/// a worker thread: nesting does not multiply).
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    POOL_OVERRIDE.with(|o| o.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run `f(0..n)` across the current worker count, returning results in
/// index order.
fn run_indexed<R: Send, F: Fn(usize) -> R + Sync>(n: usize, f: F) -> Vec<R> {
    let threads = current_num_threads().clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, band) in slots.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (off, slot) in band.iter_mut().enumerate() {
                    *slot = Some(f(start + off));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// A configured worker-count scope (stand-in for rayon's real pool).
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count installed for every
    /// parallel operation it performs on this thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|o| o.replace(Some(self.threads)));
        let out = op();
        POOL_OVERRIDE.with(|o| o.set(prev));
        out
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error building a thread pool (the stand-in cannot fail; the type
/// exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

// ---------------------------------------------------------------------
// Parallel iterators.
// ---------------------------------------------------------------------

/// A parallel iterator over borrowed slice elements.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

/// A parallel iterator over owned vector elements.
pub struct VecPar<T> {
    items: Vec<T>,
}

/// A parallel iterator over a `usize` range.
pub struct RangePar {
    range: std::ops::Range<usize>,
}

/// A mapped parallel iterator; consumed by `collect` or `for_each`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> SlicePar<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        run_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<SlicePar<'a, T>, F> {
    /// Collect the mapped results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let slice = self.inner.slice;
        let f = self.f;
        C::from(run_indexed(slice.len(), |i| f(&slice[i])))
    }
}

impl<T: Send + Sync> VecPar<T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

impl<T: Send + Sync, R: Send, F: Fn(T) -> R + Sync> ParMap<VecPar<T>, F> {
    /// Collect the mapped results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let mut items = self.inner.items;
        let n = items.len();
        let threads = current_num_threads().clamp(1, n.max(1));
        let f = &self.f;
        if threads == 1 || n == 0 {
            return C::from(items.into_iter().map(f).collect());
        }
        // Contiguous chunks, one per worker, rejoined in input order.
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        while !items.is_empty() {
            let tail = items.split_off(chunk.min(items.len()));
            chunks.push(std::mem::replace(&mut items, tail));
        }
        let mapped: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        IN_WORKER.with(|w| w.set(true));
                        c.into_iter().map(f).collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });
        C::from(mapped.into_iter().flatten().collect())
    }
}

impl RangePar {
    /// Apply `f` to every index in parallel.
    pub fn map<R, F: Fn(usize) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Run `f` on every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        run_indexed(self.range.len(), |i| f(start + i));
    }
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParMap<RangePar, F> {
    /// Collect the mapped results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let start = self.inner.range.start;
        let f = self.f;
        C::from(run_indexed(self.inner.range.len(), |i| f(start + i)))
    }
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

/// The rayon prelude: glob-import to get the parallel iterator methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential() {
        let out: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_consumes_in_order() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.parse().unwrap()).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_override_is_scoped() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let outside = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn nested_parallelism_stays_bounded_and_correct() {
        // A nested par_iter must run inline on its worker (no second
        // layer of threads) and still produce in-order results.
        let outer: Vec<usize> = (0..16).collect();
        let run = || {
            outer
                .par_iter()
                .map(|&i| {
                    assert_eq!(
                        current_num_threads(),
                        1,
                        "worker threads must report a single-thread budget"
                    );
                    let inner: Vec<usize> = (0..8).into_par_iter().map(|j| i * 100 + j).collect();
                    inner.iter().sum::<usize>()
                })
                .collect::<Vec<usize>>()
        };
        let expected: Vec<usize> = (0..16).map(|i| (0..8).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(run(), expected);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(run), expected);
    }

    #[test]
    fn identical_across_thread_counts() {
        let input: Vec<usize> = (0..333).collect();
        let run = |n: usize| {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            pool.install(|| input.par_iter().map(|x| x * 31 + 7).collect::<Vec<_>>())
        };
        assert_eq!(run(1), run(7));
    }
}
