//! Offline stand-in for the `serde` crate.
//!
//! Real `serde` abstracts over serialization formats with a visitor-based
//! data model; this workspace only ever serializes to and from JSON, so
//! the vendored stand-in routes everything through one concrete
//! [`Value`] tree instead. The public surface matches what the workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and enums,
//! plus `serde_json`-style conversion at the edges.
//!
//! The derive macros (re-exported from `serde_derive`) generate
//! externally-tagged representations identical to real serde's defaults:
//! named structs become maps, newtype structs unwrap to their inner
//! value, unit enum variants become strings, and newtype enum variants
//! become single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value — the single data model every
/// (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative integers land here).
    I64(i64),
    /// Unsigned integer (non-negative integers land here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (field declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a struct field from a map value (helper used by
/// the derive macro).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(fv) => T::deserialize(fv).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error(format!("expected unsigned integer, got {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error(format!("integer {n} out of range")))?,
                    _ => return Err(Error(format!("expected integer, got {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            // JSON cannot carry NaN/Inf; they serialize as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let Value::Seq(items) = v else {
                    return Err(Error(format!("expected tuple sequence, got {v:?}")));
                };
                let expected = [$($n,)+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
