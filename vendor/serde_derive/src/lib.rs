//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s value-tree `Serialize`/`Deserialize`
//! for the shapes this workspace actually declares:
//!
//! - structs with named fields (serialized as maps in declaration order),
//! - newtype tuple structs (serialized transparently as the inner value),
//! - enums with unit and newtype variants (externally tagged: a bare
//!   string, or a single-entry map).
//!
//! `syn`/`quote` are not available offline, so the item is parsed
//! directly from the token stream. Generics and `#[serde(...)]`
//! attributes are unsupported (and unused in this workspace); the macro
//! emits a compile error if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with exactly one field.
    Newtype { name: String },
    /// Enum of unit and single-field (newtype) variants.
    Enum {
        name: String,
        /// `(variant name, has payload)`.
        variants: Vec<(String, bool)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip outer attributes (`#[...]`) starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        i += 2; // the '#' and the bracketed group
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or any token run) up to the next top-level comma,
/// tracking `<...>` nesting. Returns the index of the comma (or `len`).
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            angle += 1;
        } else if is_punct(&toks[i], '>') {
            angle -= 1;
        } else if angle == 0 && is_punct(&toks[i], ',') {
            return i;
        }
        i += 1;
    }
    i
}

/// Number of top-level comma-separated items in a group body.
fn count_top_level(toks: &[TokenTree]) -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        let end = skip_to_comma(toks, i);
        if end > i {
            n += 1;
        }
        i = end + 1;
    }
    n
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_vis(body, i);
        let TokenTree::Ident(name) = &body[i] else {
            return Err(format!("expected field name, got `{}`", body[i]));
        };
        fields.push(name.to_string());
        i += 1;
        if i >= body.len() || !is_punct(&body[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i = skip_to_comma(body, i + 1) + 1;
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<(String, bool)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            return Err(format!("expected variant name, got `{}`", body[i]));
        };
        let name = name.to_string();
        i += 1;
        let mut payload = false;
        if i < body.len() {
            if let TokenTree::Group(g) = &body[i] {
                match g.delimiter() {
                    Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if count_top_level(&inner) != 1 {
                            return Err(format!(
                                "variant `{name}`: only newtype payloads are supported"
                            ));
                        }
                        payload = true;
                        i += 1;
                    }
                    Delimiter::Brace => {
                        return Err(format!(
                            "variant `{name}`: struct variants are not supported"
                        ));
                    }
                    _ => {}
                }
            }
        }
        variants.push((name, payload));
        i = skip_to_comma(body, i) + 1;
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        return Err("expected item name".into());
    };
    let name = name.to_string();
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        return Err(format!("`{name}`: generic items are not supported"));
    }
    let TokenTree::Group(body) = &toks[i] else {
        return Err(format!("`{name}`: expected item body"));
    };
    let body_toks: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "enum" {
        return Ok(Item::Enum {
            name,
            variants: parse_variants(&body_toks)?,
        });
    }
    match body.delimiter() {
        Delimiter::Brace => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body_toks)?,
        }),
        Delimiter::Parenthesis => {
            if count_top_level(&body_toks) != 1 {
                Err(format!(
                    "`{name}`: only newtype tuple structs are supported"
                ))
            } else {
                Ok(Item::Newtype { name })
            }
        }
        _ => Err(format!("`{name}`: unsupported item body")),
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize(&self) -> ::serde::Value {{\
                     let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                       = ::std::vec::Vec::new();\
                     {pushes}\
                     ::serde::Value::Map(entries)\
                   }}\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\
               fn serialize(&self) -> ::serde::Value {{\
                 ::serde::Serialize::serialize(&self.0)\
               }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(inner) => {{\
                               let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                                 = ::std::vec::Vec::new();\
                               entries.push((::std::string::String::from({v:?}), \
                                 ::serde::Serialize::serialize(inner)));\
                               ::serde::Value::Map(entries)\
                             }},"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                               ::serde::Value::Str(::std::string::String::from({v:?})),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize(&self) -> ::serde::Value {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn deserialize(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\
                     ::std::result::Result::Ok({name} {{ {inits} }})\
                   }}\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
               fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))\
               }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok(\
                           {name}::{v}(::serde::Deserialize::deserialize(inner)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn deserialize(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\
                     match v {{\
                       ::serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                           ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                       }},\
                       ::serde::Value::Map(entries) if entries.len() == 1 => {{\
                         let (tag, inner) = &entries[0];\
                         match tag.as_str() {{\
                           {newtype_arms}\
                           other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                         }}\
                       }},\
                       other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"invalid {name} value: {{other:?}}\"))),\
                     }}\
                   }}\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
