//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over
//! half-open ranges of the primitive numeric types. The generator is a
//! fixed, documented algorithm (xoshiro256**, seeded via SplitMix64), so
//! every trace and benchmark input in this repository is reproducible
//! bit-for-bit across platforms — which the reproduction relies on.

use std::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling: uniform enough for the
                // synthetic perturbations this workspace draws.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty random_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

/// Extension methods on every [`RngCore`] (the `rand` user-facing API).
pub trait RngExt: RngCore {
    /// Sample uniformly from a half-open range `lo..hi`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the reference seeding procedure of the xoshiro
    /// family).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
