//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the trace codec uses: an immutable, cheaply
//! cloneable [`Bytes`] view with cursor-style little-endian reads
//! ([`Buf`]), and a growable [`BytesMut`] with little-endian writes
//! ([`BufMut`]).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1); [`Buf`] reads advance an internal cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// A view over a static byte string.
    pub fn from_static(b: &'static [u8]) -> Self {
        Self::from(b.to_vec())
    }

    /// Number of readable bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of the remaining bytes (O(1), shares the allocation).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `n` bytes, advancing `self` past
    /// them.
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(n <= self.len(), "split_to out of range");
        let head = Self {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    fn bytes(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes()[..N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for Bytes {}

/// Cursor-style reads over a byte source. Reads panic when fewer than the
/// requested bytes remain (callers bound-check with [`Buf::remaining`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of range");
        dst.copy_from_slice(&self.bytes()[..dst.len()]);
        self.start += dst.len();
    }

    fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take_array::<1>())
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array::<2>())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array::<4>())
    }

    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array::<4>())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array::<8>())
    }
}

/// A growable byte buffer with little-endian append operations.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Append operations for byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32);

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_i32_le(-9);
        w.put_f64_le(0.25);
        let mut r = w.freeze();
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i32_le(), -9);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&b.slice(2..5)[..], &[2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&c[..], &[2, 3, 4, 5]);
    }
}
