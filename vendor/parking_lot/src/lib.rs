//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds without network access, so the handful of
//! external crates it needs are vendored as minimal API-compatible
//! subsets. This one provides `parking_lot::Mutex` — a mutex whose
//! `lock()` returns the guard directly (no poisoning) — backed by
//! `std::sync::Mutex`.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with the `parking_lot` API shape:
/// `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. A panic in a
    /// previous holder does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
