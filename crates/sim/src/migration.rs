//! Data-migration accounting between consecutive partitionings.

use samr_geom::boxops;
use samr_grid::GridHierarchy;
use samr_partition::Partition;

/// Number of grid points transmitted at the redistribution between the
/// distribution of `H_{t-1}` and that of `H_t` — the Berger–Colella
/// regrid data-transfer accounting:
///
/// 1. **surviving cells** (same level, present at both steps) whose owner
///    changed are copied from the old owner;
/// 2. **newly created cells** (refined into existence at `t`) are filled
///    by interpolation from their parent level — a transfer whenever the
///    parent cell's (new) owner differs from the fine cell's owner.
///
/// Cells that disappear (coarsened away) are deleted in place and cost
/// nothing.
pub fn migration_cells<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    moved_survivors(prev_part, cur_part) + interpolation_transfers(prev, cur, cur_part)
}

/// Component 1: same-level cells that exist at both steps and changed
/// owner.
pub fn moved_survivors<const D: usize>(prev_part: &Partition<D>, cur_part: &Partition<D>) -> u64 {
    let mut moved = 0u64;
    let levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..levels {
        for old in &prev_part.levels[l].fragments {
            for new in &cur_part.levels[l].fragments {
                if old.owner != new.owner {
                    moved += old.rect.overlap_cells(&new.rect);
                }
            }
        }
    }
    moved
}

/// Component 2: newly refined cells interpolated from a remote parent.
/// Counted in fine grid points.
pub fn interpolation_transfers<const D: usize>(
    prev: &GridHierarchy<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    let mut transfers = 0u64;
    for l in 1..cur.levels.len() {
        let prev_rects: Vec<samr_geom::AABox<D>> = if l < prev.levels.len() {
            prev.levels[l].rects()
        } else {
            Vec::new()
        };
        let coarse = &cur_part.levels[l - 1].fragments;
        for frag in &cur_part.levels[l].fragments {
            // The part of this fragment that did not exist at t-1.
            for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                let parent = new_piece.coarsen(cur.ratio);
                for cf in coarse {
                    if cf.owner == frag.owner {
                        continue;
                    }
                    if let Some(ov) = parent.intersect(&cf.rect) {
                        transfers += ov.refine(cur.ratio).overlap_cells(&new_piece);
                    }
                }
            }
        }
    }
    transfers
}

/// Per-processor outbound migration volume (grid points leaving each
/// processor at the redistribution, including interpolation sources), for
/// the execution-time model.
pub fn per_proc_migration<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
    nprocs: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; nprocs];
    let levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..levels {
        for old in &prev_part.levels[l].fragments {
            for new in &cur_part.levels[l].fragments {
                if old.owner != new.owner {
                    out[old.owner as usize] += old.rect.overlap_cells(&new.rect);
                }
            }
        }
    }
    // Interpolation sources: the parent-cell owner ships the data.
    for l in 1..cur.levels.len() {
        let prev_rects: Vec<samr_geom::AABox<D>> = if l < prev.levels.len() {
            prev.levels[l].rects()
        } else {
            Vec::new()
        };
        let coarse = &cur_part.levels[l - 1].fragments;
        for frag in &cur_part.levels[l].fragments {
            for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                let parent = new_piece.coarsen(cur.ratio);
                for cf in coarse {
                    if cf.owner == frag.owner {
                        continue;
                    }
                    if let Some(ov) = parent.intersect(&cf.rect) {
                        out[cf.owner as usize] += ov.refine(cur.ratio).overlap_cells(&new_piece);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_partition::{Fragment, LevelPartition};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h8() -> GridHierarchy<2> {
        GridHierarchy::base_only(Rect2::from_extents(8, 8), 2)
    }

    fn part(split_x: i64) -> Partition<2> {
        Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![
                    Fragment {
                        rect: r(0, 0, split_x, 7),
                        owner: 0,
                    },
                    Fragment {
                        rect: r(split_x + 1, 0, 7, 7),
                        owner: 1,
                    },
                ],
            }],
        }
    }

    #[test]
    fn identical_partitions_migrate_nothing() {
        let h = h8();
        let p = part(3);
        assert_eq!(migration_cells(&h, &p, &h, &p), 0);
    }

    #[test]
    fn shifted_cut_moves_the_band() {
        let h = h8();
        let a = part(3);
        let b = part(5);
        // Columns 4..5 (16 cells) move from proc 1 to proc 0.
        assert_eq!(migration_cells(&h, &a, &h, &b), 16);
        let out = per_proc_migration(&h, &a, &h, &b, 2);
        assert_eq!(out, vec![0, 16]);
        // Reverse direction mirrors.
        assert_eq!(per_proc_migration(&h, &b, &h, &a, 2), vec![16, 0]);
    }

    #[test]
    fn owner_swap_moves_everything() {
        let h = h8();
        let a = part(3);
        let mut b = part(3);
        for f in &mut b.levels[0].fragments {
            f.owner = 1 - f.owner;
        }
        assert_eq!(migration_cells(&h, &a, &h, &b), 64);
    }

    #[test]
    fn vanished_level_does_not_migrate() {
        // Level present before, gone now: deletion, not migration.
        let h_prev = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 1,
                    }],
                },
            ],
        };
        let h_cur = h8();
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![Fragment {
                    rect: r(0, 0, 7, 7),
                    owner: 0,
                }],
            }],
        };
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 0);
    }

    #[test]
    fn moved_refinement_migrates_surviving_overlap() {
        // Level-1 box moves 4 fine cells right; owner of the overlap
        // changes from 0 to 1 => overlap cells migrate.
        let h_prev = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let h_cur = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(8, 4, 15, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 0,
                    }],
                },
            ],
        };
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(8, 4, 15, 11),
                        owner: 1,
                    }],
                },
            ],
        };
        // Overlap [8..11]x[4..11] = 32 cells changed owner (survivors)
        // plus the 32 newly created cells [12..15]x[4..11] interpolated
        // from base cells owned by proc 0 while the fine fragment sits on
        // proc 1.
        assert_eq!(moved_survivors(&p_prev, &p_cur), 32);
        assert_eq!(interpolation_transfers(&h_prev, &h_cur, &p_cur), 32);
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 64);
    }

    #[test]
    fn colocated_new_cells_are_free() {
        // New refinement whose parent cells live on the same processor:
        // interpolation is local, no transfer.
        let h_prev = h8();
        let h_cur = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![Fragment {
                    rect: r(0, 0, 7, 7),
                    owner: 0,
                }],
            }],
        };
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 0,
                    }],
                },
            ],
        };
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 0);
        // Same new cells on the other processor: all 64 are interpolated
        // remotely.
        let mut p_remote = p_cur.clone();
        p_remote.levels[1].fragments[0].owner = 1;
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_remote), 64);
        let out = per_proc_migration(&h_prev, &p_prev, &h_cur, &p_remote, 2);
        assert_eq!(out, vec![64, 0]); // proc 0 ships the parent data
    }
}
