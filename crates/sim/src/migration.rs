//! Data-migration accounting between consecutive partitionings.
//!
//! Like [`crate::comm`], every metric has an indexed production path (a
//! [`FragIndex`](crate::index::FragIndex) over the *current* partition's
//! fragments, queried with the previous step's boxes) and a `naive_*`
//! all-pairs oracle property-tested to produce identical counts.

use crate::index::MetricScratch;
use samr_geom::boxops;
use samr_grid::GridHierarchy;
use samr_partition::Partition;

/// Number of grid points transmitted at the redistribution between the
/// distribution of `H_{t-1}` and that of `H_t` — the Berger–Colella
/// regrid data-transfer accounting:
///
/// 1. **surviving cells** (same level, present at both steps) whose owner
///    changed are copied from the old owner;
/// 2. **newly created cells** (refined into existence at `t`) are filled
///    by interpolation from their parent level — a transfer whenever the
///    parent cell's (new) owner differs from the fine cell's owner.
///
/// Cells that disappear (coarsened away) are deleted in place and cost
/// nothing.
pub fn migration_cells<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    moved_survivors(prev_part, cur_part) + interpolation_transfers(prev, cur, cur_part)
}

/// All-pairs oracle for [`migration_cells`].
pub fn naive_migration_cells<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    naive_moved_survivors(prev_part, cur_part) + naive_interpolation_transfers(prev, cur, cur_part)
}

/// Component 1: same-level cells that exist at both steps and changed
/// owner.
pub fn moved_survivors<const D: usize>(prev_part: &Partition<D>, cur_part: &Partition<D>) -> u64 {
    let mut scratch = MetricScratch::default();
    let mut moved = 0u64;
    let levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..levels {
        scratch.index.build(&cur_part.levels[l].fragments);
        for old in &prev_part.levels[l].fragments {
            scratch.index.query(&old.rect, |_, rect, owner| {
                if owner != old.owner {
                    moved += old.rect.overlap_cells(&rect);
                }
            });
        }
    }
    moved
}

/// All-pairs oracle for [`moved_survivors`].
pub fn naive_moved_survivors<const D: usize>(
    prev_part: &Partition<D>,
    cur_part: &Partition<D>,
) -> u64 {
    let mut moved = 0u64;
    let levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..levels {
        for old in &prev_part.levels[l].fragments {
            for new in &cur_part.levels[l].fragments {
                if old.owner != new.owner {
                    moved += old.rect.overlap_cells(&new.rect);
                }
            }
        }
    }
    moved
}

/// Component 2: newly refined cells interpolated from a remote parent.
/// Counted in fine grid points.
pub fn interpolation_transfers<const D: usize>(
    prev: &GridHierarchy<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    let mut scratch = MetricScratch::default();
    let mut transfers = 0u64;
    for l in 1..cur.levels.len() {
        let prev_rects: Vec<samr_geom::AABox<D>> = if l < prev.levels.len() {
            prev.levels[l].rects()
        } else {
            Vec::new()
        };
        scratch.index.build(&cur_part.levels[l - 1].fragments);
        for frag in &cur_part.levels[l].fragments {
            // The part of this fragment that did not exist at t-1.
            for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                let parent = new_piece.coarsen(cur.ratio);
                scratch.index.query(&parent, |_, rect, owner| {
                    if owner != frag.owner {
                        if let Some(ov) = parent.intersect(&rect) {
                            transfers += ov.refine(cur.ratio).overlap_cells(&new_piece);
                        }
                    }
                });
            }
        }
    }
    transfers
}

/// All-pairs oracle for [`interpolation_transfers`].
pub fn naive_interpolation_transfers<const D: usize>(
    prev: &GridHierarchy<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
) -> u64 {
    let mut transfers = 0u64;
    for l in 1..cur.levels.len() {
        let prev_rects: Vec<samr_geom::AABox<D>> = if l < prev.levels.len() {
            prev.levels[l].rects()
        } else {
            Vec::new()
        };
        let coarse = &cur_part.levels[l - 1].fragments;
        for frag in &cur_part.levels[l].fragments {
            for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                let parent = new_piece.coarsen(cur.ratio);
                for cf in coarse {
                    if cf.owner == frag.owner {
                        continue;
                    }
                    if let Some(ov) = parent.intersect(&cf.rect) {
                        transfers += ov.refine(cur.ratio).overlap_cells(&new_piece);
                    }
                }
            }
        }
    }
    transfers
}

/// Per-processor outbound migration volume (grid points leaving each
/// processor at the redistribution, including interpolation sources), for
/// the execution-time model.
pub fn per_proc_migration<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
    nprocs: usize,
) -> Vec<u64> {
    let mut scratch = MetricScratch::default();
    migration_accounting(prev, prev_part, cur, cur_part, nprocs, &mut scratch);
    std::mem::take(&mut scratch.mig)
}

/// All-pairs oracle for [`per_proc_migration`].
pub fn naive_per_proc_migration<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
    nprocs: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; nprocs];
    let levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..levels {
        for old in &prev_part.levels[l].fragments {
            for new in &cur_part.levels[l].fragments {
                if old.owner != new.owner {
                    out[old.owner as usize] += old.rect.overlap_cells(&new.rect);
                }
            }
        }
    }
    // Interpolation sources: the parent-cell owner ships the data.
    for l in 1..cur.levels.len() {
        let prev_rects: Vec<samr_geom::AABox<D>> = if l < prev.levels.len() {
            prev.levels[l].rects()
        } else {
            Vec::new()
        };
        let coarse = &cur_part.levels[l - 1].fragments;
        for frag in &cur_part.levels[l].fragments {
            for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                let parent = new_piece.coarsen(cur.ratio);
                for cf in coarse {
                    if cf.owner == frag.owner {
                        continue;
                    }
                    if let Some(ov) = parent.intersect(&cf.rect) {
                        out[cf.owner as usize] += ov.refine(cur.ratio).overlap_cells(&new_piece);
                    }
                }
            }
        }
    }
    out
}

/// One-pass migration accounting: computes [`migration_cells`] (returned)
/// and [`per_proc_migration`] (into `scratch.mig`) with a single index
/// build per current level — the moved-survivor pass queries the level's
/// own index, the interpolation pass for the next-finer level queries it
/// as the parent index before it is rebuilt.
pub fn migration_accounting<const D: usize>(
    prev: &GridHierarchy<D>,
    prev_part: &Partition<D>,
    cur: &GridHierarchy<D>,
    cur_part: &Partition<D>,
    nprocs: usize,
    scratch: &mut MetricScratch<D>,
) -> u64 {
    scratch.mig.clear();
    scratch.mig.resize(nprocs, 0);
    let mut total = 0u64;
    let moved_levels = prev_part.levels.len().min(cur_part.levels.len());
    for l in 0..cur_part.levels.len() {
        scratch.index.build(&cur_part.levels[l].fragments);
        // Component 1: survivors of level l that changed owner.
        if l < moved_levels {
            let mig = &mut scratch.mig;
            for old in &prev_part.levels[l].fragments {
                scratch.index.query(&old.rect, |_, rect, owner| {
                    if owner != old.owner {
                        let cells = old.rect.overlap_cells(&rect);
                        total += cells;
                        mig[old.owner as usize] += cells;
                    }
                });
            }
        }
        // Component 2: level l+1 cells newly refined into existence,
        // interpolated from level-l parents — queried against the index
        // while it still holds level l.
        let fine = l + 1;
        if fine < cur.levels.len() && fine < cur_part.levels.len() {
            let prev_rects: Vec<samr_geom::AABox<D>> = if fine < prev.levels.len() {
                prev.levels[fine].rects()
            } else {
                Vec::new()
            };
            for frag in &cur_part.levels[fine].fragments {
                for new_piece in boxops::subtract_all(&frag.rect, &prev_rects) {
                    let parent = new_piece.coarsen(cur.ratio);
                    let mig = &mut scratch.mig;
                    scratch.index.query(&parent, |_, rect, owner| {
                        if owner != frag.owner {
                            if let Some(ov) = parent.intersect(&rect) {
                                let cells = ov.refine(cur.ratio).overlap_cells(&new_piece);
                                total += cells;
                                mig[owner as usize] += cells;
                            }
                        }
                    });
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_partition::{Fragment, LevelPartition};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h8() -> GridHierarchy<2> {
        GridHierarchy::base_only(Rect2::from_extents(8, 8), 2)
    }

    fn part(split_x: i64) -> Partition<2> {
        Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![
                    Fragment {
                        rect: r(0, 0, split_x, 7),
                        owner: 0,
                    },
                    Fragment {
                        rect: r(split_x + 1, 0, 7, 7),
                        owner: 1,
                    },
                ],
            }],
        }
    }

    #[test]
    fn identical_partitions_migrate_nothing() {
        let h = h8();
        let p = part(3);
        assert_eq!(migration_cells(&h, &p, &h, &p), 0);
        assert_eq!(naive_migration_cells(&h, &p, &h, &p), 0);
    }

    #[test]
    fn shifted_cut_moves_the_band() {
        let h = h8();
        let a = part(3);
        let b = part(5);
        // Columns 4..5 (16 cells) move from proc 1 to proc 0.
        assert_eq!(migration_cells(&h, &a, &h, &b), 16);
        assert_eq!(naive_migration_cells(&h, &a, &h, &b), 16);
        let out = per_proc_migration(&h, &a, &h, &b, 2);
        assert_eq!(out, vec![0, 16]);
        assert_eq!(naive_per_proc_migration(&h, &a, &h, &b, 2), out);
        // Reverse direction mirrors.
        assert_eq!(per_proc_migration(&h, &b, &h, &a, 2), vec![16, 0]);
    }

    #[test]
    fn owner_swap_moves_everything() {
        let h = h8();
        let a = part(3);
        let mut b = part(3);
        for f in &mut b.levels[0].fragments {
            f.owner = 1 - f.owner;
        }
        assert_eq!(migration_cells(&h, &a, &h, &b), 64);
        assert_eq!(naive_migration_cells(&h, &a, &h, &b), 64);
    }

    #[test]
    fn vanished_level_does_not_migrate() {
        // Level present before, gone now: deletion, not migration.
        let h_prev = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 1,
                    }],
                },
            ],
        };
        let h_cur = h8();
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![Fragment {
                    rect: r(0, 0, 7, 7),
                    owner: 0,
                }],
            }],
        };
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 0);
        assert_eq!(naive_migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 0);
    }

    #[test]
    fn moved_refinement_migrates_surviving_overlap() {
        // Level-1 box moves 4 fine cells right; owner of the overlap
        // changes from 0 to 1 => overlap cells migrate.
        let h_prev = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let h_cur = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(8, 4, 15, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 0,
                    }],
                },
            ],
        };
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(8, 4, 15, 11),
                        owner: 1,
                    }],
                },
            ],
        };
        // Overlap [8..11]x[4..11] = 32 cells changed owner (survivors)
        // plus the 32 newly created cells [12..15]x[4..11] interpolated
        // from base cells owned by proc 0 while the fine fragment sits on
        // proc 1.
        assert_eq!(moved_survivors(&p_prev, &p_cur), 32);
        assert_eq!(naive_moved_survivors(&p_prev, &p_cur), 32);
        assert_eq!(interpolation_transfers(&h_prev, &h_cur, &p_cur), 32);
        assert_eq!(naive_interpolation_transfers(&h_prev, &h_cur, &p_cur), 32);
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 64);
        // The combined accounting agrees with the parts.
        let mut scratch = MetricScratch::default();
        let total = migration_accounting(&h_prev, &p_prev, &h_cur, &p_cur, 2, &mut scratch);
        assert_eq!(total, 64);
        assert_eq!(
            scratch.per_proc_mig(),
            naive_per_proc_migration(&h_prev, &p_prev, &h_cur, &p_cur, 2)
        );
    }

    #[test]
    fn colocated_new_cells_are_free() {
        // New refinement whose parent cells live on the same processor:
        // interpolation is local, no transfer.
        let h_prev = h8();
        let h_cur = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let p_prev = Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![Fragment {
                    rect: r(0, 0, 7, 7),
                    owner: 0,
                }],
            }],
        };
        let p_cur = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 0,
                    }],
                },
            ],
        };
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_cur), 0);
        // Same new cells on the other processor: all 64 are interpolated
        // remotely.
        let mut p_remote = p_cur.clone();
        p_remote.levels[1].fragments[0].owner = 1;
        assert_eq!(migration_cells(&h_prev, &p_prev, &h_cur, &p_remote), 64);
        let out = per_proc_migration(&h_prev, &p_prev, &h_cur, &p_remote, 2);
        assert_eq!(out, vec![64, 0]); // proc 0 ships the parent data
        assert_eq!(
            naive_per_proc_migration(&h_prev, &p_prev, &h_cur, &p_remote, 2),
            out
        );
    }
}
