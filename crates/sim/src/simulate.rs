//! The trace-driven simulation driver.

use crate::comm::comm_accounting;
use crate::exec::MachineModel;
use crate::index::MetricScratch;
use crate::metrics::StepMetrics;
use crate::migration::migration_accounting;
use samr_grid::GridHierarchy;
use samr_partition::{Partition, Partitioner};
use samr_trace::HierarchyTrace;
use serde::{Deserialize, Serialize};

/// Simulation configuration.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of processors to distribute over.
    pub nprocs: usize,
    /// Ghost-cell width of the numerical scheme.
    pub ghost_width: i64,
    /// Machine cost model for execution-time estimates.
    pub machine: MachineModel,
    /// Reuse the previous distribution when the hierarchy did not change
    /// between steps (no repartitioning cost, no migration). The paper's
    /// set-up redistributes at every regrid; steps without a regrid keep
    /// the data in place.
    pub reuse_unchanged: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nprocs: 16,
            ghost_width: 1,
            machine: MachineModel::default(),
            reuse_unchanged: true,
        }
    }
}

/// The outcome of simulating a trace under one partitioner.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// Partitioner name (with configuration).
    pub partitioner: String,
    /// Processor count.
    pub nprocs: usize,
    /// Per-step metrics.
    pub steps: Vec<StepMetrics>,
    /// Total estimated execution time (machine-model units).
    pub total_time: f64,
}

impl SimResult {
    /// The grid-relative communication series.
    pub fn rel_comm(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.rel_comm).collect()
    }

    /// The grid-relative migration series.
    pub fn rel_migration(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.rel_migration).collect()
    }

    /// The load-imbalance series.
    pub fn load_imbalance(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.load_imbalance).collect()
    }

    /// The partitioner-invocation cost series (abstract units; zero on
    /// steps that reused the previous distribution) — the regrid
    /// overhead axis of the Pareto trade-off analysis.
    pub fn partition_cost(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.partition_cost).collect()
    }

    /// Mean partitioner-invocation cost per coarse step (0.0 for an
    /// empty run).
    pub fn mean_partition_cost(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.partition_cost).sum::<f64>() / self.steps.len() as f64
    }
}

/// Compute the metrics of one step given the previous step's state.
/// `repartitioned` controls whether partitioning cost and migration are
/// charged.
#[allow(clippy::too_many_arguments)]
pub fn step_metrics<const D: usize>(
    step: u32,
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    prev: Option<(&GridHierarchy<D>, &Partition<D>)>,
    cfg: &SimConfig,
    partition_cost: f64,
) -> StepMetrics {
    step_metrics_with(
        step,
        h,
        part,
        prev,
        cfg,
        partition_cost,
        &mut MetricScratch::default(),
    )
}

/// [`step_metrics`] through a reusable [`MetricScratch`]: one combined
/// communication walk and one combined migration walk per step, with the
/// fragment index and per-processor volume buffers reused across steps.
/// Returns exactly the same metrics as [`step_metrics`].
#[allow(clippy::too_many_arguments)]
pub fn step_metrics_with<const D: usize>(
    step: u32,
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    prev: Option<(&GridHierarchy<D>, &Partition<D>)>,
    cfg: &SimConfig,
    partition_cost: f64,
    scratch: &mut MetricScratch<D>,
) -> StepMetrics {
    let total_points = h.total_points();
    let workload = h.workload();
    let acc = comm_accounting(h, part, cfg.ghost_width, scratch);
    let comm_cells = acc.transfer_volume();
    // The §4.1 grid-relative metric counts *involved points*, not directed
    // transfers; `comm_cells` keeps the transfer volume for the time model.
    let rel_comm = acc.involved_points() as f64 / workload.max(1) as f64;
    let (migration, rel_migration) = match prev {
        Some((ph, pp)) => {
            let m = migration_accounting(ph, pp, h, part, cfg.nprocs, scratch);
            let prev_points = ph.total_points().max(1);
            (m, m as f64 / prev_points as f64)
        }
        None => {
            scratch.mig.clear();
            scratch.mig.resize(cfg.nprocs, 0);
            (0, 0.0)
        }
    };
    let loads = part.loads(h.ratio);
    let step_time = cfg
        .machine
        .step_time(&loads, &scratch.vols, &scratch.mig, partition_cost);
    StepMetrics {
        step,
        total_points,
        workload,
        load_imbalance: part.load_imbalance(h.ratio),
        comm_cells,
        rel_comm,
        migration_cells: migration,
        rel_migration,
        partition_cost,
        fragments: part.fragment_count(),
        step_time,
    }
}

/// Run a whole trace through `partitioner` on `cfg.nprocs` processors.
///
/// The batch facade over the windowed streaming driver
/// ([`crate::stream::simulate_source`]): partitions are computed
/// rayon-parallel within each window (a partitioner is a pure function
/// of the hierarchy), metrics are accumulated in step order, and the
/// result is identical for any thread count and window size.
pub fn simulate_trace<const D: usize>(
    trace: &HierarchyTrace<D>,
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
) -> SimResult {
    assert!(!trace.is_empty(), "cannot simulate an empty trace");
    crate::stream::simulate_source(
        &mut samr_trace::MemorySource::new(trace),
        partitioner,
        cfg,
        crate::stream::default_window(),
    )
    .expect("in-memory snapshot sources cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;
    use samr_partition::{DomainSfcPartitioner, HybridPartitioner, PatchPartitioner};
    use samr_trace::{Snapshot, TraceMeta};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    /// A synthetic trace: a refined box sweeping across the domain.
    fn moving_trace(steps: u32) -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "moving refinement".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 3,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..steps {
            let off = (i as i64 * 2) % 30;
            let l1 = r(off * 2, 16, off * 2 + 15, 31);
            let l2 = l1.refine(2).shrink(4).unwrap();
            t.push(Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![l1], vec![l2]],
                ),
            });
        }
        t
    }

    /// A static trace: the same hierarchy at every step.
    fn static_trace(steps: u32) -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "static refinement".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..steps {
            t.push(Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![r(16, 16, 47, 47)]],
                ),
            });
        }
        t
    }

    #[test]
    fn static_trace_reuses_partition_no_migration() {
        let trace = static_trace(6);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let res = simulate_trace(&trace, &DomainSfcPartitioner::default(), &cfg);
        assert_eq!(res.steps.len(), 6);
        for s in &res.steps[1..] {
            assert_eq!(s.migration_cells, 0, "step {}", s.step);
            assert_eq!(s.partition_cost, 0.0);
        }
        // Step 0 pays the initial partitioning.
        assert!(res.steps[0].partition_cost > 0.0);
    }

    #[test]
    fn moving_trace_migrates() {
        let trace = moving_trace(8);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let res = simulate_trace(&trace, &DomainSfcPartitioner::default(), &cfg);
        let total_mig: u64 = res.steps.iter().map(|s| s.migration_cells).sum();
        assert!(total_mig > 0, "a moving feature must migrate data");
        // Relative metrics are sane.
        for s in &res.steps {
            assert!(s.rel_migration >= 0.0 && s.rel_migration <= 1.5);
            assert!(s.rel_comm >= 0.0);
            assert!(s.load_imbalance >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = moving_trace(6);
        let cfg = SimConfig {
            nprocs: 5,
            ..SimConfig::default()
        };
        let a = simulate_trace(&trace, &HybridPartitioner::default(), &cfg);
        let b = simulate_trace(&trace, &HybridPartitioner::default(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn domain_based_has_no_inter_level_comm() {
        use crate::comm::inter_level_comm;
        let trace = moving_trace(3);
        let p = DomainSfcPartitioner::default();
        for snap in &trace.snapshots {
            let part = p.partition(&snap.hierarchy, 4);
            assert_eq!(inter_level_comm(&snap.hierarchy, &part), 0);
        }
    }

    #[test]
    fn patch_based_pays_inter_level_comm() {
        use crate::comm::inter_level_comm;
        let trace = moving_trace(3);
        let p = PatchPartitioner::default();
        let mut any = 0u64;
        for snap in &trace.snapshots {
            let part = p.partition(&snap.hierarchy, 4);
            any += inter_level_comm(&snap.hierarchy, &part);
        }
        assert!(any > 0, "patch-based should split parents from children");
    }

    #[test]
    fn single_proc_trivial_metrics() {
        let trace = moving_trace(4);
        let cfg = SimConfig {
            nprocs: 1,
            ..SimConfig::default()
        };
        let res = simulate_trace(&trace, &PatchPartitioner::default(), &cfg);
        for s in &res.steps {
            assert_eq!(s.comm_cells, 0);
            assert_eq!(s.migration_cells, 0);
            assert!((s.load_imbalance - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn step_metrics_scratch_reuse_is_identical() {
        // One dirty scratch across a whole trace gives exactly the
        // fresh-scratch metrics at every step.
        let trace = moving_trace(6);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let p = HybridPartitioner::default();
        let mut scratch = MetricScratch::default();
        let mut prev: Option<(GridHierarchy<2>, samr_partition::Partition<2>)> = None;
        for snap in &trace.snapshots {
            let part = p.partition(&snap.hierarchy, cfg.nprocs);
            let prev_ref = prev.as_ref().map(|(h, pp)| (h, pp));
            let fresh = step_metrics(snap.step, &snap.hierarchy, &part, prev_ref, &cfg, 1.0);
            let prev_ref = prev.as_ref().map(|(h, pp)| (h, pp));
            let reused = step_metrics_with(
                snap.step,
                &snap.hierarchy,
                &part,
                prev_ref,
                &cfg,
                1.0,
                &mut scratch,
            );
            assert_eq!(fresh, reused, "step {}", snap.step);
            prev = Some((snap.hierarchy.clone(), part));
        }
    }

    #[test]
    fn step_time_accumulates() {
        let trace = moving_trace(5);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let res = simulate_trace(&trace, &HybridPartitioner::default(), &cfg);
        let sum: f64 = res.steps.iter().map(|s| s.step_time).sum();
        assert!((res.total_time - sum).abs() < 1e-9);
        assert!(res.total_time > 0.0);
    }
}
