//! Machine model: cell counts to execution-time estimates.
//!
//! The paper's classification model consumes "system parameters (such as
//! CPU speed and communication bandwidth)". The simulator is trace-driven
//! and platform-free, but the meta-partitioner experiments need a clock to
//! compare *static* versus *dynamic* partitioner selection — this model is
//! that clock. Times are in abstract microsecond-like units; only ratios
//! matter.

use serde::{Deserialize, Serialize};

/// Cost coefficients of the abstract parallel machine.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct MachineModel {
    /// Time to update one grid point for one local step.
    pub cell_update: f64,
    /// Time to transfer one grid point between processors (inverse
    /// bandwidth).
    pub cell_transfer: f64,
    /// Fixed per-fragment-pair latency charged on the heaviest
    /// communicator (message count proxy).
    pub message_latency: f64,
    /// Time to move one grid point at redistribution (migration is bulk
    /// transfer: cheaper per point than fine-grained ghost exchange).
    pub migration_transfer: f64,
    /// Time per abstract partitioner cost unit.
    pub partition_unit: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        // A mid-2000s cluster in spirit: computation fast, communication
        // an order of magnitude more expensive per point, migration
        // streamed at bulk bandwidth.
        Self {
            cell_update: 1.0,
            cell_transfer: 8.0,
            message_latency: 50.0,
            migration_transfer: 2.0,
            partition_unit: 5.0,
        }
    }
}

impl MachineModel {
    /// A communication-starved interconnect (higher transfer cost):
    /// shifts the optimum toward communication-minimizing partitioners.
    pub fn slow_network() -> Self {
        Self {
            cell_transfer: 40.0,
            migration_transfer: 10.0,
            message_latency: 200.0,
            ..Self::default()
        }
    }

    /// A compute-bound machine (slow CPUs, fast network): shifts the
    /// optimum toward load balance.
    pub fn slow_cpu() -> Self {
        Self {
            cell_update: 10.0,
            ..Self::default()
        }
    }

    /// A communication-rich interconnect (transfer nearly as cheap as
    /// computation): shifts the optimum toward pure load balance, the
    /// mirror image of [`MachineModel::slow_network`].
    pub fn fast_network() -> Self {
        Self {
            cell_transfer: 1.0,
            migration_transfer: 0.25,
            message_latency: 10.0,
            ..Self::default()
        }
    }

    /// The named machine presets campaigns sweep over: `(name, model)`
    /// pairs. `uniform` is the balanced default; `fast-net` / `slow-net`
    /// move the communication-to-computation ratio in either direction;
    /// `slow-cpu` is compute-bound. The names are stable slugs (they
    /// appear in scenario artifact file names).
    pub fn registry() -> [(&'static str, MachineModel); 4] {
        [
            ("uniform", MachineModel::default()),
            ("fast-net", MachineModel::fast_network()),
            ("slow-net", MachineModel::slow_network()),
            ("slow-cpu", MachineModel::slow_cpu()),
        ]
    }

    /// Parse a machine preset by registry name. `balanced` is accepted
    /// as an alias for `uniform` and `slow-network` for `slow-net` (the
    /// CLI's historical spellings).
    pub fn parse(name: &str) -> Result<Self, String> {
        let canonical = match name {
            "balanced" => "uniform",
            "slow-network" => "slow-net",
            other => other,
        };
        Self::registry()
            .into_iter()
            .find(|(n, _)| *n == canonical)
            .map(|(_, m)| m)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::registry().iter().map(|(n, _)| *n).collect();
                format!(
                    "unknown machine '{name}' (expected one of {})",
                    names.join(", ")
                )
            })
    }

    /// The registry name of this model, when it is a preset — the
    /// reverse lookup scenario slugs use to tag non-default machines.
    pub fn preset_name(&self) -> Option<&'static str> {
        Self::registry()
            .into_iter()
            .find(|(_, m)| m == self)
            .map(|(n, _)| n)
    }

    /// Execution-time estimate of one coarse step: the slowest processor's
    /// compute + communication time (bulk-synchronous step), plus
    /// redistribution costs when a repartitioning happened.
    ///
    /// `loads` are weighted cell updates per processor, `comm` grid-point
    /// transfers per processor, `migration_out` grid points leaving each
    /// processor at the regrid, `partition_cost` the partitioner's
    /// abstract invocation cost (0 when no repartitioning).
    pub fn step_time(
        &self,
        loads: &[u64],
        comm: &[u64],
        migration_out: &[u64],
        partition_cost: f64,
    ) -> f64 {
        let slowest = loads
            .iter()
            .zip(comm)
            .map(|(&l, &c)| l as f64 * self.cell_update + c as f64 * self.cell_transfer)
            .fold(0.0f64, f64::max);
        let migration = migration_out
            .iter()
            .map(|&m| m as f64 * self.migration_transfer)
            .fold(0.0f64, f64::max);
        slowest + migration + partition_cost * self.partition_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_time_takes_slowest_processor() {
        let m = MachineModel::default();
        let t = m.step_time(&[100, 10], &[0, 0], &[0, 0], 0.0);
        assert_eq!(t, 100.0);
        // Communication on the light processor can make it the slowest.
        let t = m.step_time(&[100, 10], &[0, 100], &[0, 0], 0.0);
        assert_eq!(t, 10.0 + 800.0);
    }

    #[test]
    fn migration_and_partitioning_add_up() {
        let m = MachineModel::default();
        let t = m.step_time(&[10, 10], &[0, 0], &[5, 3], 2.0);
        assert_eq!(t, 10.0 + 5.0 * 2.0 + 2.0 * 5.0);
    }

    #[test]
    fn presets_change_the_balance() {
        let base = MachineModel::default();
        let net = MachineModel::slow_network();
        let cpu = MachineModel::slow_cpu();
        let fast = MachineModel::fast_network();
        assert!(net.cell_transfer > base.cell_transfer);
        assert!(cpu.cell_update > base.cell_update);
        assert!(fast.cell_transfer < base.cell_transfer);
    }

    #[test]
    fn registry_names_parse_to_themselves() {
        for (name, model) in MachineModel::registry() {
            assert_eq!(MachineModel::parse(name).unwrap(), model);
            assert_eq!(model.preset_name(), Some(name));
        }
        // Historical CLI aliases keep working.
        assert_eq!(
            MachineModel::parse("balanced").unwrap(),
            MachineModel::default()
        );
        assert_eq!(
            MachineModel::parse("slow-network").unwrap(),
            MachineModel::slow_network()
        );
        // Unknown names list the registry; custom models have no preset
        // name.
        assert!(MachineModel::parse("gpu").unwrap_err().contains("uniform"));
        let custom = MachineModel {
            cell_update: 123.0,
            ..MachineModel::default()
        };
        assert_eq!(custom.preset_name(), None);
    }
}
