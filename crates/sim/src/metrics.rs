//! Per-step metrics and series summaries.

use serde::{Deserialize, Serialize};

/// The measured quantities of one coarse time step, both raw and in the
/// paper's §4.1 grid-relative normalizations.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Coarse step index.
    pub step: u32,
    /// Grid points `|H_t|`.
    pub total_points: u64,
    /// Workload `W_t = Σ_l N_l·r^l`.
    pub workload: u64,
    /// Load imbalance: max processor load / average load (1.0 = perfect).
    pub load_imbalance: f64,
    /// Raw communication volume of the step (grid-point transfers).
    pub comm_cells: u64,
    /// Grid-relative communication: `comm_cells / W_t` (§4.1: 100 % = all
    /// points communicate at all local steps).
    pub rel_comm: f64,
    /// Raw migration volume against the previous step (grid points moved).
    pub migration_cells: u64,
    /// Grid-relative migration: `migration_cells / |H_{t-1}|` (§4.1:
    /// 100 % = the whole previous grid moved). Zero at step 0.
    pub rel_migration: f64,
    /// Partitioner invocation cost estimate (abstract units).
    pub partition_cost: f64,
    /// Number of fragments in the step's partition.
    pub fragments: usize,
    /// Execution-time estimate of the step under the machine model, in
    /// machine-model time units.
    pub step_time: f64,
}

/// Aggregate description of a metric series — the "shape" statistics the
/// validation compares between model and measurement (§5.2 talks about
/// trends, oscillation periods, peaks and valleys rather than absolute
/// values).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl SeriesSummary {
    /// Summarize a series (empty series gives zeros).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Self {
            mean,
            std: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Pearson correlation of two equal-length series; 0.0 when degenerate
/// (constant input or empty).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Lag (in steps, within `±max_lag`) at which the cross-correlation of
/// `a` against `b` peaks: positive means `a` *leads* `b` (a's features
/// appear earlier). Used to check the paper's remark that β_m
/// "occasionally peaks one time-step before" the measured migration.
pub fn peak_lag(a: &[f64], b: &[f64], max_lag: i64) -> i64 {
    assert_eq!(a.len(), b.len());
    let mut best = (f64::NEG_INFINITY, 0i64);
    for lag in -max_lag..=max_lag {
        // Correlate a[i] with b[i + lag].
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..a.len() as i64 {
            let j = i + lag;
            if j >= 0 && (j as usize) < b.len() {
                xs.push(a[i as usize]);
                ys.push(b[j as usize]);
            }
        }
        let r = pearson(&xs, &ys);
        if r > best.0 {
            best = (r, lag);
        }
    }
    best.1
}

/// Dominant oscillation period of a series (in steps) estimated from the
/// first non-trivial peak of the autocorrelation, or `None` for
/// non-oscillatory series.
pub fn dominant_period(xs: &[f64]) -> Option<usize> {
    let n = xs.len();
    if n < 8 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom <= 0.0 {
        return None;
    }
    let auto = |lag: usize| -> f64 {
        let mut s = 0.0;
        for i in 0..n - lag {
            s += (xs[i] - mean) * (xs[i + lag] - mean);
        }
        s / denom
    };
    // Find the first local maximum of the autocorrelation after it first
    // dips below zero (standard period detection).
    let half = n / 2;
    let mut lag = 1;
    while lag < half && auto(lag) > 0.0 {
        lag += 1;
    }
    if lag >= half {
        return None;
    }
    let mut best = (f64::NEG_INFINITY, 0usize);
    for k in lag..half {
        let v = auto(k);
        if v > best.0 {
            best = (v, k);
        }
    }
    if best.0 > 0.15 {
        Some(best.1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_series() {
        let s = SeriesSummary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = SeriesSummary::of(&[]);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn peak_lag_detects_shift() {
        // b is a copy of a delayed by 2 steps: a leads by 2.
        let a: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.7).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| (((i as f64) - 2.0) * 0.7).sin()).collect();
        assert_eq!(peak_lag(&a, &b, 5), 2);
        assert_eq!(peak_lag(&b, &a, 5), -2);
        assert_eq!(peak_lag(&a, &a, 5), 0);
    }

    #[test]
    fn dominant_period_of_sine() {
        let xs: Vec<f64> = (0..64)
            .map(|i| (std::f64::consts::TAU * i as f64 / 8.0).sin())
            .collect();
        let p = dominant_period(&xs).expect("period found");
        assert!((7..=9).contains(&p), "period {p}");
    }

    #[test]
    fn dominant_period_of_noise_free_ramp_is_none() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        assert_eq!(dominant_period(&xs), None);
    }
}
