//! Windowed streaming simulation driver — bounded-memory execution of a
//! snapshot stream through a partitioner.
//!
//! [`simulate_source`] pulls snapshots from a [`SnapshotSource`] into a
//! ring of at most `window` snapshots, partitions the window
//! rayon-parallel (partitioners are pure functions of the hierarchy),
//! then folds the window's step metrics in order, carrying exactly one
//! `(snapshot, partition)` pair across window boundaries (step metrics
//! need the predecessor for migration). Peak residency is therefore
//! `window` in-flight snapshots plus the single carried predecessor —
//! `O(window)`, never `O(steps)` — while the snapshot-parallel speed of
//! the batch driver is kept.
//!
//! With `window == 1` the driver degrades to the strictly sequential
//! regime stateful partitioner selectors require: partitioners are
//! invoked one snapshot at a time, in step order, and — matching the
//! meta-partitioner comparison driver — *not* invoked at all on steps
//! whose hierarchy is unchanged under `reuse_unchanged`, so selector
//! state evolves exactly as in a live run.

use crate::index::MetricScratch;
use crate::policy::{PartitionPolicy, PolicySwitch, StaticPolicy, SwitchEvent};
use crate::simulate::{step_metrics_with, SimConfig, SimResult};
use rayon::prelude::*;
use samr_partition::{Partition, PartitionScratch, Partitioner};
use samr_trace::io::TraceIoError;
use samr_trace::{Snapshot, SnapshotSource};

/// The default window, resolved once per process.
///
/// Honors the `SAMR_STREAM_WINDOW` environment variable when set to a
/// positive integer (a deliberate operator override, including `1` for
/// the strictly sequential regime). Otherwise autotunes to twice the
/// rayon pool width — every worker has a snapshot to partition plus one
/// queued — clamped to `2..=64` so residency stays bounded on very wide
/// machines where more queueing buys no throughput.
pub fn default_window() -> usize {
    static WINDOW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WINDOW.get_or_init(|| {
        let autotuned = (2 * rayon::current_num_threads()).clamp(2, 64);
        match std::env::var("SAMR_STREAM_WINDOW") {
            Ok(v) => match v.parse::<usize>() {
                Ok(w) if w >= 1 => w,
                // An override the operator set but we cannot honor must
                // not be swallowed: say what was rejected and what runs.
                _ => {
                    eprintln!(
                        "warning: SAMR_STREAM_WINDOW='{v}' is not a positive integer; \
                         using the autotuned window of {autotuned}"
                    );
                    autotuned
                }
            },
            Err(_) => autotuned,
        }
    })
}

/// Residency and adaptation accounting of one
/// [`simulate_source_stats`] / [`simulate_policy_source_stats`] run, for
/// tests and capacity planning.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamStats {
    /// Most snapshots ever live in the driver at once: the filled window
    /// plus the carried predecessor (so at most `window + 1`).
    pub peak_resident: usize,
    /// Total snapshots consumed from the source.
    pub snapshots: usize,
    /// Every partitioner switch that took effect, in step order, with
    /// its charged migration volume. Always empty for a static policy.
    pub switch_events: Vec<SwitchEvent>,
}

impl StreamStats {
    /// Number of partitioner switches that took effect.
    pub fn switches(&self) -> usize {
        self.switch_events.len()
    }

    /// Total grid points moved by switch steps — the adaptation bill.
    pub fn switch_migration_cells(&self) -> u64 {
        self.switch_events.iter().map(|e| e.migration_cells).sum()
    }
}

/// Run a snapshot stream through `partitioner` on `cfg.nprocs`
/// processors; see the module docs for the windowing contract. Produces
/// byte-identical results to the batch [`crate::simulate_trace`] for any
/// window, and to the sequential comparison driver for `window == 1`.
pub fn simulate_source<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
    window: usize,
) -> Result<SimResult, TraceIoError> {
    simulate_source_stats(source, partitioner, cfg, window).map(|(result, _)| result)
}

/// [`simulate_source`] plus residency statistics.
///
/// The fixed-partitioner facade over [`simulate_policy_source_stats`]:
/// wraps `partitioner` in a [`StaticPolicy`], which the policy driver
/// reproduces byte-identically (pinned by this module's tests against
/// the batch driver).
pub fn simulate_source_stats<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
    window: usize,
) -> Result<(SimResult, StreamStats), TraceIoError> {
    let mut policy = StaticPolicy::new(partitioner);
    simulate_policy_source_stats(source, &mut policy, cfg, window)
}

/// Run a snapshot stream under a [`PartitionPolicy`] — the policy owns
/// the partitioner and may switch it mid-stream.
///
/// Per snapshot the driver (1) repartitions with the policy's *current*
/// partitioner (or reuses the previous distribution when the hierarchy
/// is unchanged and no switch is pending), (2) computes the step's
/// metrics against the carried predecessor, then (3) feeds the metrics
/// to [`PartitionPolicy::observe`]. A returned [`PolicySwitch`] forces
/// the next snapshot to repartition — even an unchanged one — so the
/// switch materializes; that step's migration volume against the old
/// distribution is the switch's charged cost, recorded as a
/// [`SwitchEvent`] in the returned [`StreamStats`]. A switch requested
/// on the final snapshot never takes effect and is charged nothing.
///
/// The window-parallel pre-partitioning fast path only applies to
/// static policies (`window > 1` with a switching policy would
/// pre-partition with a stale partitioner); adaptive policies run the
/// strictly sequential regime regardless of `window`.
pub fn simulate_policy_source_stats<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    policy: &mut (dyn PartitionPolicy<D> + '_),
    cfg: &SimConfig,
    window: usize,
) -> Result<(SimResult, StreamStats), TraceIoError> {
    let window = window.max(1);
    let mut steps = Vec::with_capacity(source.len_hint().unwrap_or(0));
    let mut total_time = 0.0;
    let mut carry: Option<(Snapshot<D>, Partition<D>)> = None;
    let mut peak_resident = 0usize;
    let mut consumed = 0usize;
    // A switch the policy requested on the previous snapshot, waiting to
    // materialize (and be charged) on the next repartitioning.
    let mut pending: Option<PolicySwitch> = None;
    let mut switch_events: Vec<SwitchEvent> = Vec::new();
    // Arenas reused across every snapshot of the stream: the sequential
    // partitioning path and the per-step metric walks are allocation-free
    // at steady state. Both arenas are partitioner-agnostic (pure
    // geometry buffers), so reuse stays correct across a mid-stream
    // partitioner change.
    let mut pscratch = PartitionScratch::<D>::default();
    let mut mscratch = MetricScratch::<D>::default();
    loop {
        let mut buf: Vec<Snapshot<D>> = Vec::with_capacity(window);
        while buf.len() < window {
            match source.next_snapshot()? {
                Some(s) => buf.push(s),
                None => break,
            }
        }
        if buf.is_empty() {
            break;
        }
        consumed += buf.len();
        peak_resident = peak_resident.max(buf.len() + usize::from(carry.is_some()));
        // Pre-partition the whole window in parallel — except in the
        // sequential (window 1) regime, where partitioners run on demand
        // so stateful selectors see exactly the live invocation order,
        // and under switching policies, where the current partitioner is
        // only known once the preceding step's metrics were observed.
        let mut pre: Vec<Option<Partition<D>>> = if window > 1 && policy.is_static() {
            let partitioner = policy.current();
            buf.par_iter()
                .map(|s| Some(partitioner.partition(&s.hierarchy, cfg.nprocs)))
                .collect()
        } else {
            vec![None; buf.len()]
        };
        let mut eff: Vec<Partition<D>> = Vec::with_capacity(buf.len());
        for i in 0..buf.len() {
            // A pending switch suppresses the unchanged-hierarchy skip:
            // the new partitioner must actually produce (and pay for) a
            // distribution before any reuse may resume.
            let unchanged = pending.is_none() && cfg.reuse_unchanged && {
                let prev_h = if i == 0 {
                    carry.as_ref().map(|(s, _)| &s.hierarchy)
                } else {
                    Some(&buf[i - 1].hierarchy)
                };
                prev_h.is_some_and(|ph| *ph == buf[i].hierarchy)
            };
            let (part, cost) = if unchanged {
                let prev_part = if i == 0 {
                    &carry.as_ref().expect("unchanged implies a predecessor").1
                } else {
                    &eff[i - 1]
                };
                (prev_part.clone(), 0.0)
            } else {
                let part = match pre[i].take() {
                    Some(p) => p,
                    None => policy.current().partition_with(
                        &buf[i].hierarchy,
                        cfg.nprocs,
                        &mut pscratch,
                    ),
                };
                (part, policy.current().cost_estimate(&buf[i].hierarchy))
            };
            eff.push(part);
            let prev_pair = if i == 0 {
                carry.as_ref().map(|(s, p)| (&s.hierarchy, p))
            } else {
                Some((&buf[i - 1].hierarchy, &eff[i - 1]))
            };
            let m = step_metrics_with(
                buf[i].step,
                &buf[i].hierarchy,
                &eff[i],
                prev_pair,
                cfg,
                cost,
                &mut mscratch,
            );
            total_time += m.step_time;
            if let Some(sw) = pending.take() {
                switch_events.push(SwitchEvent {
                    step: buf[i].step,
                    from: sw.from,
                    to: sw.to,
                    migration_cells: m.migration_cells,
                    partition_cost: cost,
                });
            }
            if let Some(sw) = policy.observe(&m) {
                pending = Some(sw);
            }
            steps.push(m);
        }
        // Carry the window's last pair; everything else is dropped here,
        // which is what keeps residency O(window).
        let last_part = eff.pop().expect("window is non-empty");
        let last_snap = buf.pop().expect("window is non-empty");
        carry = Some((last_snap, last_part));
    }
    if steps.is_empty() {
        return Err(TraceIoError::Format(
            "cannot simulate an empty snapshot stream".into(),
        ));
    }
    Ok((
        SimResult {
            partitioner: policy.name(),
            nprocs: cfg.nprocs,
            steps,
            total_time,
        },
        StreamStats {
            peak_resident,
            snapshots: consumed,
            switch_events,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_trace;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;
    use samr_partition::{DomainSfcPartitioner, HybridPartitioner};
    use samr_trace::{HierarchyTrace, MemorySource, TraceMeta};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    /// A moving-box trace with an unchanged-hierarchy plateau in the
    /// middle, so the reuse path crosses window boundaries.
    fn trace(steps: u32) -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "windowed driver test".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..steps {
            let off = if (3..6).contains(&i) {
                6
            } else {
                (i as i64) * 2
            } % 16;
            t.push(samr_trace::Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![r(off, 0, off + 15, 15)]],
                ),
            });
        }
        t
    }

    #[test]
    fn every_window_size_matches_the_batch_driver() {
        let t = trace(11);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let p = DomainSfcPartitioner::default();
        let batch = simulate_trace(&t, &p, &cfg);
        for window in [1usize, 2, 3, 5, 11, 64] {
            let (streamed, stats) =
                simulate_source_stats(&mut MemorySource::new(&t), &p, &cfg, window).unwrap();
            assert_eq!(streamed, batch, "window {window} diverged");
            assert_eq!(stats.snapshots, t.len());
            assert!(
                stats.switch_events.is_empty(),
                "static policies never switch"
            );
            assert!(
                stats.peak_resident <= window + 1,
                "window {window} held {} snapshots",
                stats.peak_resident
            );
        }
    }

    #[test]
    fn window_one_is_strictly_sequential() {
        // A partitioner that records its invocation order proves the
        // sequential regime never reorders or over-invokes.
        use samr_partition::Partition;
        use std::sync::Mutex;
        struct Recording {
            inner: HybridPartitioner,
            calls: Mutex<Vec<u64>>,
        }
        impl Partitioner<2> for Recording {
            fn name(&self) -> String {
                Partitioner::<2>::name(&self.inner)
            }
            fn partition(&self, h: &GridHierarchy<2>, nprocs: usize) -> Partition<2> {
                self.calls.lock().unwrap().push(h.total_points());
                self.inner.partition(h, nprocs)
            }
            fn cost_estimate(&self, h: &GridHierarchy<2>) -> f64 {
                Partitioner::<2>::cost_estimate(&self.inner, h)
            }
        }
        let t = trace(8);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let rec = Recording {
            inner: HybridPartitioner::default(),
            calls: Mutex::new(Vec::new()),
        };
        let (res, stats) =
            simulate_source_stats(&mut MemorySource::new(&t), &rec, &cfg, 1).unwrap();
        assert_eq!(res.steps.len(), 8);
        assert!(stats.peak_resident <= 2, "{}", stats.peak_resident);
        // Steps 4 and 5 repeat step 3's hierarchy: exactly 6 invocations,
        // in step order.
        let calls = rec.calls.into_inner().unwrap();
        let expected: Vec<u64> = t
            .snapshots
            .iter()
            .enumerate()
            .filter(|(i, s)| *i == 0 || t.snapshots[i - 1].hierarchy != s.hierarchy)
            .map(|(_, s)| s.hierarchy.total_points())
            .collect();
        assert_eq!(calls, expected);
        assert!(calls.len() < t.len(), "the plateau must be reused");
    }

    /// A policy that switches from domain-SFC to hybrid once it sees a
    /// given step, for driving the switch-charging machinery.
    struct FlipAfter {
        at: u32,
        flipped: bool,
        a: DomainSfcPartitioner,
        b: HybridPartitioner,
    }

    impl FlipAfter {
        fn new(at: u32) -> Self {
            Self {
                at,
                flipped: false,
                a: DomainSfcPartitioner::default(),
                b: HybridPartitioner::default(),
            }
        }
    }

    impl crate::policy::PartitionPolicy<2> for FlipAfter {
        fn name(&self) -> String {
            "flip".into()
        }
        fn current(&self) -> &(dyn Partitioner<2> + Sync) {
            if self.flipped {
                &self.b
            } else {
                &self.a
            }
        }
        fn observe(&mut self, m: &crate::StepMetrics) -> Option<crate::policy::PolicySwitch> {
            if !self.flipped && m.step == self.at {
                self.flipped = true;
                Some(crate::policy::PolicySwitch {
                    from: "domain".into(),
                    to: "hybrid".into(),
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn a_switch_forces_repartitioning_and_is_charged() {
        // The trace's hierarchy is unchanged over steps 3..6; a switch
        // observed at step 3 must still repartition step 4 (the reuse
        // skip is suppressed) and charge that step's cost + migration.
        let t = trace(11);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let static_run = simulate_trace(&t, &DomainSfcPartitioner::default(), &cfg);
        assert_eq!(static_run.steps[4].partition_cost, 0.0, "plateau reuses");
        let mut policy = FlipAfter::new(3);
        let (res, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        assert_eq!(res.partitioner, "flip");
        assert_eq!(stats.switches(), 1);
        let ev = &stats.switch_events[0];
        assert_eq!(ev.step, 4);
        assert_eq!((ev.from.as_str(), ev.to.as_str()), ("domain", "hybrid"));
        assert!(ev.partition_cost > 0.0, "the switch step repartitions");
        assert_eq!(res.steps[4].partition_cost, ev.partition_cost);
        assert_eq!(res.steps[4].migration_cells, ev.migration_cells);
        // Before the switch the run is byte-identical to the static one.
        assert_eq!(res.steps[..4], static_run.steps[..4]);
        // After the switch step the plateau reuse resumes (step 5 repeats
        // step 4's hierarchy under the now-current partitioner).
        assert_eq!(res.steps[5].partition_cost, 0.0);
        assert_eq!(res.steps[5].migration_cells, 0);
    }

    #[test]
    fn switching_is_window_invariant() {
        // The pending switch must survive window boundaries: the policy
        // path is strictly sequential for every window size.
        let t = trace(11);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let mut p1 = FlipAfter::new(3);
        let (base, base_stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut p1, &cfg, 1).unwrap();
        for window in [2usize, 3, 5, 64] {
            let mut p = FlipAfter::new(3);
            let (res, stats) =
                simulate_policy_source_stats(&mut MemorySource::new(&t), &mut p, &cfg, window)
                    .unwrap();
            assert_eq!(res, base, "window {window} diverged");
            assert_eq!(stats.switch_events, base_stats.switch_events);
        }
    }

    #[test]
    fn a_switch_pending_at_stream_end_is_dropped() {
        // A switch requested on the final snapshot never materializes:
        // no event, nothing charged.
        let t = trace(5);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let mut policy = FlipAfter::new(4);
        let (_, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        assert_eq!(stats.switches(), 0);
        assert!(stats.switch_events.is_empty());
    }

    #[test]
    fn default_window_is_positive_and_bounded_without_override() {
        let w = default_window();
        assert!(w >= 1);
        if std::env::var("SAMR_STREAM_WINDOW").is_err() {
            assert!((2..=64).contains(&w), "autotuned window {w} out of range");
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        let meta = TraceMeta::<2> {
            app: "SYN".into(),
            description: "empty".into(),
            base_domain: Rect2::from_extents(8, 8),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let t = HierarchyTrace::new(meta);
        let cfg = SimConfig::default();
        let p = DomainSfcPartitioner::default();
        assert!(simulate_source(&mut MemorySource::new(&t), &p, &cfg, 4).is_err());
    }
}
