//! Windowed streaming simulation driver — bounded-memory execution of a
//! snapshot stream through a partitioner.
//!
//! [`simulate_source`] pulls snapshots from a [`SnapshotSource`] into a
//! ring of at most `window` snapshots, partitions the window
//! rayon-parallel (partitioners are pure functions of the hierarchy),
//! then folds the window's step metrics in order, carrying exactly one
//! `(snapshot, partition)` pair across window boundaries (step metrics
//! need the predecessor for migration). Peak residency is therefore
//! `window` in-flight snapshots plus the single carried predecessor —
//! `O(window)`, never `O(steps)` — while the snapshot-parallel speed of
//! the batch driver is kept.
//!
//! With `window == 1` the driver degrades to the strictly sequential
//! regime stateful partitioner selectors require: partitioners are
//! invoked one snapshot at a time, in step order, and — matching the
//! meta-partitioner comparison driver — *not* invoked at all on steps
//! whose hierarchy is unchanged under `reuse_unchanged`, so selector
//! state evolves exactly as in a live run.

use crate::index::MetricScratch;
use crate::simulate::{step_metrics_with, SimConfig, SimResult};
use rayon::prelude::*;
use samr_partition::{Partition, PartitionScratch, Partitioner};
use samr_trace::io::TraceIoError;
use samr_trace::{Snapshot, SnapshotSource};

/// The default window, resolved once per process.
///
/// Honors the `SAMR_STREAM_WINDOW` environment variable when set to a
/// positive integer (a deliberate operator override, including `1` for
/// the strictly sequential regime). Otherwise autotunes to twice the
/// rayon pool width — every worker has a snapshot to partition plus one
/// queued — clamped to `2..=64` so residency stays bounded on very wide
/// machines where more queueing buys no throughput.
pub fn default_window() -> usize {
    static WINDOW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WINDOW.get_or_init(|| {
        let autotuned = (2 * rayon::current_num_threads()).clamp(2, 64);
        match std::env::var("SAMR_STREAM_WINDOW") {
            Ok(v) => match v.parse::<usize>() {
                Ok(w) if w >= 1 => w,
                // An override the operator set but we cannot honor must
                // not be swallowed: say what was rejected and what runs.
                _ => {
                    eprintln!(
                        "warning: SAMR_STREAM_WINDOW='{v}' is not a positive integer; \
                         using the autotuned window of {autotuned}"
                    );
                    autotuned
                }
            },
            Err(_) => autotuned,
        }
    })
}

/// Residency accounting of one [`simulate_source_stats`] run, for tests
/// and capacity planning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Most snapshots ever live in the driver at once: the filled window
    /// plus the carried predecessor (so at most `window + 1`).
    pub peak_resident: usize,
    /// Total snapshots consumed from the source.
    pub snapshots: usize,
}

/// Run a snapshot stream through `partitioner` on `cfg.nprocs`
/// processors; see the module docs for the windowing contract. Produces
/// byte-identical results to the batch [`crate::simulate_trace`] for any
/// window, and to the sequential comparison driver for `window == 1`.
pub fn simulate_source<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
    window: usize,
) -> Result<SimResult, TraceIoError> {
    simulate_source_stats(source, partitioner, cfg, window).map(|(result, _)| result)
}

/// [`simulate_source`] plus residency statistics.
pub fn simulate_source_stats<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
    window: usize,
) -> Result<(SimResult, StreamStats), TraceIoError> {
    let window = window.max(1);
    let mut steps = Vec::with_capacity(source.len_hint().unwrap_or(0));
    let mut total_time = 0.0;
    let mut carry: Option<(Snapshot<D>, Partition<D>)> = None;
    let mut peak_resident = 0usize;
    let mut consumed = 0usize;
    // Arenas reused across every snapshot of the stream: the sequential
    // partitioning path and the per-step metric walks are allocation-free
    // at steady state.
    let mut pscratch = PartitionScratch::<D>::default();
    let mut mscratch = MetricScratch::<D>::default();
    loop {
        let mut buf: Vec<Snapshot<D>> = Vec::with_capacity(window);
        while buf.len() < window {
            match source.next_snapshot()? {
                Some(s) => buf.push(s),
                None => break,
            }
        }
        if buf.is_empty() {
            break;
        }
        consumed += buf.len();
        peak_resident = peak_resident.max(buf.len() + usize::from(carry.is_some()));
        // Pre-partition the whole window in parallel — except in the
        // sequential (window 1) regime, where partitioners run on demand
        // so stateful selectors see exactly the live invocation order.
        let mut pre: Vec<Option<Partition<D>>> = if window > 1 {
            buf.par_iter()
                .map(|s| Some(partitioner.partition(&s.hierarchy, cfg.nprocs)))
                .collect()
        } else {
            vec![None; buf.len()]
        };
        let mut eff: Vec<Partition<D>> = Vec::with_capacity(buf.len());
        for i in 0..buf.len() {
            let unchanged = cfg.reuse_unchanged && {
                let prev_h = if i == 0 {
                    carry.as_ref().map(|(s, _)| &s.hierarchy)
                } else {
                    Some(&buf[i - 1].hierarchy)
                };
                prev_h.is_some_and(|ph| *ph == buf[i].hierarchy)
            };
            let (part, cost) = if unchanged {
                let prev_part = if i == 0 {
                    &carry.as_ref().expect("unchanged implies a predecessor").1
                } else {
                    &eff[i - 1]
                };
                (prev_part.clone(), 0.0)
            } else {
                let part = match pre[i].take() {
                    Some(p) => p,
                    None => {
                        partitioner.partition_with(&buf[i].hierarchy, cfg.nprocs, &mut pscratch)
                    }
                };
                (part, partitioner.cost_estimate(&buf[i].hierarchy))
            };
            eff.push(part);
            let prev_pair = if i == 0 {
                carry.as_ref().map(|(s, p)| (&s.hierarchy, p))
            } else {
                Some((&buf[i - 1].hierarchy, &eff[i - 1]))
            };
            let m = step_metrics_with(
                buf[i].step,
                &buf[i].hierarchy,
                &eff[i],
                prev_pair,
                cfg,
                cost,
                &mut mscratch,
            );
            total_time += m.step_time;
            steps.push(m);
        }
        // Carry the window's last pair; everything else is dropped here,
        // which is what keeps residency O(window).
        let last_part = eff.pop().expect("window is non-empty");
        let last_snap = buf.pop().expect("window is non-empty");
        carry = Some((last_snap, last_part));
    }
    if steps.is_empty() {
        return Err(TraceIoError::Format(
            "cannot simulate an empty snapshot stream".into(),
        ));
    }
    Ok((
        SimResult {
            partitioner: partitioner.name(),
            nprocs: cfg.nprocs,
            steps,
            total_time,
        },
        StreamStats {
            peak_resident,
            snapshots: consumed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_trace;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;
    use samr_partition::{DomainSfcPartitioner, HybridPartitioner};
    use samr_trace::{HierarchyTrace, MemorySource, TraceMeta};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    /// A moving-box trace with an unchanged-hierarchy plateau in the
    /// middle, so the reuse path crosses window boundaries.
    fn trace(steps: u32) -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "windowed driver test".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..steps {
            let off = if (3..6).contains(&i) {
                6
            } else {
                (i as i64) * 2
            } % 16;
            t.push(samr_trace::Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![r(off, 0, off + 15, 15)]],
                ),
            });
        }
        t
    }

    #[test]
    fn every_window_size_matches_the_batch_driver() {
        let t = trace(11);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let p = DomainSfcPartitioner::default();
        let batch = simulate_trace(&t, &p, &cfg);
        for window in [1usize, 2, 3, 5, 11, 64] {
            let (streamed, stats) =
                simulate_source_stats(&mut MemorySource::new(&t), &p, &cfg, window).unwrap();
            assert_eq!(streamed, batch, "window {window} diverged");
            assert_eq!(stats.snapshots, t.len());
            assert!(
                stats.peak_resident <= window + 1,
                "window {window} held {} snapshots",
                stats.peak_resident
            );
        }
    }

    #[test]
    fn window_one_is_strictly_sequential() {
        // A partitioner that records its invocation order proves the
        // sequential regime never reorders or over-invokes.
        use samr_partition::Partition;
        use std::sync::Mutex;
        struct Recording {
            inner: HybridPartitioner,
            calls: Mutex<Vec<u64>>,
        }
        impl Partitioner<2> for Recording {
            fn name(&self) -> String {
                Partitioner::<2>::name(&self.inner)
            }
            fn partition(&self, h: &GridHierarchy<2>, nprocs: usize) -> Partition<2> {
                self.calls.lock().unwrap().push(h.total_points());
                self.inner.partition(h, nprocs)
            }
            fn cost_estimate(&self, h: &GridHierarchy<2>) -> f64 {
                Partitioner::<2>::cost_estimate(&self.inner, h)
            }
        }
        let t = trace(8);
        let cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let rec = Recording {
            inner: HybridPartitioner::default(),
            calls: Mutex::new(Vec::new()),
        };
        let (res, stats) =
            simulate_source_stats(&mut MemorySource::new(&t), &rec, &cfg, 1).unwrap();
        assert_eq!(res.steps.len(), 8);
        assert!(stats.peak_resident <= 2, "{}", stats.peak_resident);
        // Steps 4 and 5 repeat step 3's hierarchy: exactly 6 invocations,
        // in step order.
        let calls = rec.calls.into_inner().unwrap();
        let expected: Vec<u64> = t
            .snapshots
            .iter()
            .enumerate()
            .filter(|(i, s)| *i == 0 || t.snapshots[i - 1].hierarchy != s.hierarchy)
            .map(|(_, s)| s.hierarchy.total_points())
            .collect();
        assert_eq!(calls, expected);
        assert!(calls.len() < t.len(), "the plateau must be reused");
    }

    #[test]
    fn default_window_is_positive_and_bounded_without_override() {
        let w = default_window();
        assert!(w >= 1);
        if std::env::var("SAMR_STREAM_WINDOW").is_err() {
            assert!((2..=64).contains(&w), "autotuned window {w} out of range");
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        let meta = TraceMeta::<2> {
            app: "SYN".into(),
            description: "empty".into(),
            base_domain: Rect2::from_extents(8, 8),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let t = HierarchyTrace::new(meta);
        let cfg = SimConfig::default();
        let p = DomainSfcPartitioner::default();
        assert!(simulate_source(&mut MemorySource::new(&t), &p, &cfg, 4).is_err());
    }
}
