//! # samr-sim — trace-driven SAMR execution simulator
//!
//! The paper's measurements come from software "that simulates the
//! execution of the Berger–Colella SAMR algorithm … driven by an
//! application execution trace obtained from a single processor run"
//! (§5.1.3), computing per-regrid-step load balance, communication, data
//! migration and overheads for a chosen partitioner and processor count.
//! This crate is that simulator:
//!
//! - [`comm`]: intra-level ghost-cell communication (per local time step)
//!   and inter-level parent–child transfers, counted exactly from fragment
//!   overlaps;
//! - [`migration`]: grid points whose owner changes between consecutive
//!   partitionings — the numerator of the paper's grid-relative data
//!   migration metric;
//! - [`index`]: the flat grid-bucket fragment index behind the metric
//!   paths, with the all-pairs `naive_*` twins retained as
//!   property-tested oracles;
//! - [`metrics`]: the per-step record ([`StepMetrics`]) with both raw cell
//!   counts and the paper's §4.1 *grid-relative* normalizations;
//! - [`exec`]: a machine model turning cell counts into execution-time
//!   estimates (used by the meta-partitioner experiments);
//! - [`policy`]: partition policies — the runtime owner of the "which
//!   partitioner" decision ([`StaticPolicy`] here; adaptive policies
//!   implement the same [`PartitionPolicy`] contract upstack in
//!   `samr-meta`);
//! - [`stream`]: the windowed streaming driver — a
//!   [`samr_trace::SnapshotSource`] in, per-step metrics out, with peak
//!   residency bounded by the window size (snapshot-parallel within each
//!   window; strictly sequential at window 1 for stateful selectors and
//!   switching policies);
//! - [`simulate`]: the batch facade that runs a whole
//!   [`samr_trace::HierarchyTrace`] through the windowed driver.

#![warn(missing_docs)]

pub mod comm;
pub mod exec;
pub mod index;
pub mod metrics;
pub mod migration;
pub mod policy;
pub mod simulate;
pub mod stream;

pub use exec::MachineModel;
pub use index::{FragIndex, MetricScratch};
pub use metrics::{SeriesSummary, StepMetrics};
pub use policy::{PartitionPolicy, PolicySwitch, StaticPolicy, SwitchEvent};
pub use simulate::{simulate_trace, step_metrics, step_metrics_with, SimConfig, SimResult};
pub use stream::{
    default_window, simulate_policy_source_stats, simulate_source, simulate_source_stats,
    StreamStats,
};
