//! Flat grid-bucket index over one level's fragments.
//!
//! The simulator's communication and migration metrics are all sums of
//! per-pair overlap terms. The historical accounting walked every
//! fragment pair — O(F²) per level — which dominated simulation time for
//! richly fragmented hierarchies. [`FragIndex`] replaces the inner
//! all-pairs scan with a bucketed candidate query: fragments are binned
//! into a uniform grid of roughly `F^(1/D)` buckets per axis over their
//! bounding box, and a query box only visits the buckets it touches.
//! Every metric keeps its naive all-pairs twin (`naive_*` in
//! [`crate::comm`] and [`crate::migration`]) as a property-tested oracle:
//! because the accumulated cell counts are order-independent `u64` sums,
//! a complete, duplicate-free candidate enumeration yields *identical*
//! integers, not merely close ones.

use samr_geom::AABox;
use samr_partition::{Fragment, ProcId};

/// A reusable flat-grid bucket index over owner-tagged boxes.
///
/// `build` may be called repeatedly; all internal buffers are retained
/// and reused, so a long-lived index performs no steady-state heap
/// allocation. Queries enumerate, exactly once each, every stored box
/// that intersects the query box.
pub struct FragIndex<const D: usize> {
    /// Stored boxes, copied at build time.
    rects: Vec<AABox<D>>,
    /// Owner of each stored box.
    owners: Vec<ProcId>,
    /// Bounding box of all stored boxes (`None` when empty).
    bounds: Option<AABox<D>>,
    /// Bucket-grid dimensions per axis.
    nb: [i64; D],
    /// Bucket cell size per axis.
    bsize: [i64; D],
    /// CSR bucket offsets into `items` (length `nbuckets + 1`).
    starts: Vec<u32>,
    /// CSR fill cursor, one per bucket (build-time scratch).
    cursor: Vec<u32>,
    /// Box ids, grouped by bucket.
    items: Vec<u32>,
    /// Per-box visit stamp for duplicate suppression across buckets.
    stamp: Vec<u32>,
    /// Current query generation for `stamp`.
    generation: u32,
}

impl<const D: usize> Default for FragIndex<D> {
    fn default() -> Self {
        Self {
            rects: Vec::new(),
            owners: Vec::new(),
            bounds: None,
            nb: [1; D],
            bsize: [1; D],
            starts: Vec::new(),
            cursor: Vec::new(),
            items: Vec::new(),
            stamp: Vec::new(),
            generation: 0,
        }
    }
}

/// Visit the linear id of every bucket in the `lo..=hi` per-axis range
/// (row-major odometer over the `nb` grid).
fn for_each_bucket<const D: usize>(nb: [i64; D], range: [(i64, i64); D], mut g: impl FnMut(usize)) {
    let mut idx: [i64; D] = std::array::from_fn(|i| range[i].0);
    loop {
        let mut b = 0usize;
        for i in 0..D {
            b = b * nb[i] as usize + idx[i] as usize;
        }
        g(b);
        let mut i = D;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] < range[i].1 {
                idx[i] += 1;
                break;
            }
            idx[i] = range[i].0;
        }
    }
}

impl<const D: usize> FragIndex<D> {
    /// Rebuild the index over `frags`, reusing all internal buffers.
    pub fn build(&mut self, frags: &[Fragment<D>]) {
        self.rects.clear();
        self.owners.clear();
        for f in frags {
            self.rects.push(f.rect);
            self.owners.push(f.owner);
        }
        self.bounds = self
            .rects
            .iter()
            .copied()
            .reduce(|a, b| a.bounding_union(&b));
        let Some(bounds) = self.bounds else {
            self.starts.clear();
            self.items.clear();
            return;
        };
        // ~F^(1/D) buckets per axis keeps the expected bucket occupancy
        // constant; cap at 64 per axis to bound the grid footprint.
        let n = self.rects.len();
        let per_axis = ((n as f64).powf(1.0 / D as f64).ceil() as i64).clamp(1, 64);
        let ext = bounds.extent();
        for i in 0..D {
            self.nb[i] = per_axis.min(ext[i]).max(1);
            self.bsize[i] = (ext[i] + self.nb[i] - 1) / self.nb[i];
        }
        let nbuckets: usize = self.nb.iter().product::<i64>() as usize;
        // CSR counting pass.
        self.starts.clear();
        self.starts.resize(nbuckets + 1, 0);
        for r in &self.rects {
            let range = self.bucket_range_unclipped(r);
            for_each_bucket(self.nb, range, |b| self.starts[b + 1] += 1);
        }
        for b in 0..nbuckets {
            self.starts[b + 1] += self.starts[b];
        }
        // Fill pass.
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..nbuckets]);
        self.items.clear();
        self.items.resize(self.starts[nbuckets] as usize, 0);
        for (id, r) in self.rects.iter().enumerate() {
            let range = self.bucket_range_unclipped(r);
            let (items, cursor) = (&mut self.items, &mut self.cursor);
            for_each_bucket(self.nb, range, |b| {
                items[cursor[b] as usize] = id as u32;
                cursor[b] += 1;
            });
        }
        // Reset the dedup stamps for the new population.
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.generation = 0;
    }

    /// Per-axis bucket range covered by `r`, which must already intersect
    /// `bounds` (true for stored boxes and pre-clipped queries).
    fn bucket_range_unclipped(&self, r: &AABox<D>) -> [(i64, i64); D] {
        let lo = self.bounds.expect("bucket_range on empty index").lo();
        std::array::from_fn(|i| {
            let a = ((r.lo()[i] - lo[i]).max(0) / self.bsize[i]).min(self.nb[i] - 1);
            let b = ((r.hi()[i] - lo[i]).max(0) / self.bsize[i]).min(self.nb[i] - 1);
            (a, b)
        })
    }

    /// Invoke `f(id, rect, owner)` exactly once for every stored box that
    /// intersects `q`.
    pub fn query(&mut self, q: &AABox<D>, mut f: impl FnMut(u32, AABox<D>, ProcId)) {
        let Some(bounds) = self.bounds else {
            return;
        };
        let Some(clipped) = q.intersect(&bounds) else {
            return;
        };
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        let range = self.bucket_range_unclipped(&clipped);
        let (items, starts, stamp, rects, owners, generation) = (
            &self.items,
            &self.starts,
            &mut self.stamp,
            &self.rects,
            &self.owners,
            self.generation,
        );
        for_each_bucket(self.nb, range, |b| {
            for &id in &items[starts[b] as usize..starts[b + 1] as usize] {
                let i = id as usize;
                if stamp[i] != generation {
                    stamp[i] = generation;
                    let r = rects[i];
                    if r.intersects(q) {
                        f(id, r, owners[i]);
                    }
                }
            }
        });
    }

    /// Number of stored boxes.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when no boxes are stored.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }
}

/// Reusable buffers for the indexed metric paths: one fragment index plus
/// the clip/volume arenas threaded through [`crate::comm::comm_accounting`],
/// [`crate::migration::migration_accounting`] and
/// [`crate::simulate::step_metrics_with`]. Like
/// [`samr_partition::PartitionScratch`], the scratch only changes where
/// intermediates live — results are identical to the scratch-free entry
/// points.
pub struct MetricScratch<const D: usize> {
    /// The per-level fragment index (rebuilt once per level walked).
    pub(crate) index: FragIndex<D>,
    /// Ghost-clip accumulation for involvement union counting.
    pub(crate) clips: Vec<AABox<D>>,
    /// Per-processor communication volumes (output of `comm_accounting`).
    pub(crate) vols: Vec<u64>,
    /// Per-processor migration volumes (output of `migration_accounting`).
    pub(crate) mig: Vec<u64>,
}

impl<const D: usize> Default for MetricScratch<D> {
    fn default() -> Self {
        Self {
            index: FragIndex::default(),
            clips: Vec::new(),
            vols: Vec::new(),
            mig: Vec::new(),
        }
    }
}

impl<const D: usize> MetricScratch<D> {
    /// Per-processor communication volumes written by the most recent
    /// [`crate::comm::comm_accounting`] call.
    pub fn per_proc_vols(&self) -> &[u64] {
        &self.vols
    }

    /// Per-processor outbound migration volumes written by the most
    /// recent [`crate::migration::migration_accounting`] call.
    pub fn per_proc_mig(&self) -> &[u64] {
        &self.mig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    fn frag(x0: i64, y0: i64, x1: i64, y1: i64, owner: u32) -> Fragment<2> {
        Fragment {
            rect: Rect2::from_coords(x0, y0, x1, y1),
            owner,
        }
    }

    fn query_ids(idx: &mut FragIndex<2>, q: &Rect2) -> Vec<u32> {
        let mut ids = Vec::new();
        idx.query(q, |id, _, _| ids.push(id));
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_index_yields_nothing() {
        let mut idx = FragIndex::<2>::default();
        idx.build(&[]);
        assert!(idx.is_empty());
        assert_eq!(query_ids(&mut idx, &Rect2::from_extents(8, 8)), vec![]);
    }

    #[test]
    fn finds_exactly_the_intersecting_boxes() {
        let frags = vec![
            frag(0, 0, 3, 3, 0),
            frag(4, 0, 7, 3, 1),
            frag(0, 4, 3, 7, 2),
            frag(10, 10, 12, 12, 0),
        ];
        let mut idx = FragIndex::default();
        idx.build(&frags);
        assert_eq!(idx.len(), 4);
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(2, 2, 5, 5)),
            vec![0, 1, 2]
        );
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(11, 11, 11, 11)),
            vec![3]
        );
        // Disjoint from everything.
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(20, 20, 30, 30)),
            vec![]
        );
    }

    #[test]
    fn each_box_reported_once_even_when_spanning_buckets() {
        // Many small boxes force a multi-bucket grid; one large box spans
        // all buckets and must still be reported exactly once.
        let mut frags: Vec<Fragment<2>> = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                frags.push(frag(x * 4, y * 4, x * 4 + 3, y * 4 + 3, (x + y) as u32));
            }
        }
        frags.push(frag(0, 0, 31, 31, 99));
        let mut idx = FragIndex::default();
        idx.build(&frags);
        let mut count_last = 0;
        idx.query(&Rect2::from_coords(0, 0, 31, 31), |id, _, owner| {
            if id == 64 {
                count_last += 1;
                assert_eq!(owner, 99);
            }
        });
        assert_eq!(count_last, 1);
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(0, 0, 31, 31)).len(),
            65
        );
    }

    #[test]
    fn rebuild_reuses_cleanly() {
        let mut idx = FragIndex::default();
        idx.build(&[frag(0, 0, 7, 7, 0), frag(8, 0, 15, 7, 1)]);
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(6, 0, 9, 7)),
            vec![0, 1]
        );
        // Rebuild with a different population and geometry.
        idx.build(&[frag(100, 100, 103, 103, 5)]);
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(0, 0, 50, 50)),
            vec![]
        );
        assert_eq!(
            query_ids(&mut idx, &Rect2::from_coords(99, 99, 101, 101)),
            vec![0]
        );
    }

    #[test]
    fn three_dimensional_queries() {
        let frags = vec![
            Fragment {
                rect: Box3::from_coords(0, 0, 0, 3, 3, 3),
                owner: 0,
            },
            Fragment {
                rect: Box3::from_coords(4, 4, 4, 7, 7, 7),
                owner: 1,
            },
        ];
        let mut idx = FragIndex::<3>::default();
        idx.build(&frags);
        let mut ids = Vec::new();
        idx.query(&Box3::from_coords(3, 3, 3, 4, 4, 4), |id, _, _| {
            ids.push(id)
        });
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }
}
