//! Communication-volume accounting from fragment overlaps.
//!
//! Every metric here exists twice: the production path walks a per-level
//! [`FragIndex`] (grid-bucket candidate queries, near-linear in the
//! fragment count) and a `naive_*` twin retains the original all-pairs
//! scan as an oracle. The two are property-tested to produce *identical*
//! integer cell counts — all accumulations are order-independent `u64`
//! sums, so a complete duplicate-free candidate enumeration is exact, not
//! approximate.

use crate::index::{FragIndex, MetricScratch};
use samr_geom::boxops;
use samr_grid::GridHierarchy;
use samr_partition::Partition;

/// Intra-level ghost-cell exchange volume for one coarse time step, in
/// grid-point transfers.
///
/// Every fragment needs a ghost shell of width `ghost` filled from
/// same-level neighbours at **every local time step**; level `l` performs
/// `ratio^l` local steps per coarse step, so each ghost cell owned by a
/// different processor counts `ratio^l` times. Ghost cells outside every
/// patch are physical-boundary cells and cost nothing; ghost cells in a
/// fragment of the *same* owner are local copies and cost nothing.
pub fn intra_level_comm<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    let mut index = FragIndex::default();
    let mut total = 0u64;
    for (l, lp) in part.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        index.build(&lp.fragments);
        let mut level_cells = 0u64;
        for f in &lp.fragments {
            let shell = f.rect.grow(ghost);
            index.query(&shell, |_, rect, owner| {
                if owner != f.owner {
                    // f.rect and rect are disjoint, so the whole overlap
                    // lies in the shell ring.
                    level_cells += shell.overlap_cells(&rect);
                }
            });
        }
        total += level_cells * mult;
    }
    total
}

/// All-pairs oracle for [`intra_level_comm`].
pub fn naive_intra_level_comm<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    let mut total = 0u64;
    for (l, lp) in part.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        let frags = &lp.fragments;
        let mut level_cells = 0u64;
        for f in frags {
            let shell = f.rect.grow(ghost);
            for g in frags {
                if g.owner == f.owner {
                    continue;
                }
                // Cells of g inside f's ghost shell but not inside f.
                let overlap = shell.overlap_cells(&g.rect);
                if overlap > 0 {
                    level_cells += overlap;
                }
            }
        }
        total += level_cells * mult;
    }
    total
}

/// Inter-level parent–child transfer volume for one coarse time step, in
/// grid-point transfers.
///
/// Prolongation (boundary fill + initialization) and restriction
/// (projection of the fine solution onto the parent) move every fine cell
/// whose parent coarse cell lives on a *different* processor. The fine
/// level synchronizes with its parent once per fine local step, so level
/// `l+1`'s mismatched cells count `ratio^(l+1)` times.
///
/// Strictly domain-based partitions have zero inter-level volume by
/// construction — the property the paper highlights in §2.2.
pub fn inter_level_comm<const D: usize>(h: &GridHierarchy<D>, part: &Partition<D>) -> u64 {
    let mut index = FragIndex::default();
    let mut total = 0u64;
    for l in 0..part.levels.len().saturating_sub(1) {
        let mult = (h.ratio as u64).pow((l + 1) as u32);
        index.build(&part.levels[l].fragments);
        let mut mismatched_fine_cells = 0u64;
        for ff in &part.levels[l + 1].fragments {
            // Parent region of the fine fragment in coarse index space.
            let parent = ff.rect.coarsen(h.ratio);
            index.query(&parent, |_, rect, owner| {
                if owner != ff.owner {
                    if let Some(ov) = parent.intersect(&rect) {
                        // Convert back to fine cells covered by that
                        // overlap.
                        mismatched_fine_cells += ov.refine(h.ratio).overlap_cells(&ff.rect);
                    }
                }
            });
        }
        total += mismatched_fine_cells * mult;
    }
    total
}

/// All-pairs oracle for [`inter_level_comm`].
pub fn naive_inter_level_comm<const D: usize>(h: &GridHierarchy<D>, part: &Partition<D>) -> u64 {
    let mut total = 0u64;
    for l in 0..part.levels.len().saturating_sub(1) {
        let mult = (h.ratio as u64).pow((l + 1) as u32);
        let coarse = &part.levels[l].fragments;
        let fine = &part.levels[l + 1].fragments;
        let mut mismatched_fine_cells = 0u64;
        for ff in fine {
            let parent = ff.rect.coarsen(h.ratio);
            for cf in coarse {
                if cf.owner == ff.owner {
                    continue;
                }
                if let Some(ov) = parent.intersect(&cf.rect) {
                    mismatched_fine_cells += ov.refine(h.ratio).overlap_cells(&ff.rect);
                }
            }
        }
        total += mismatched_fine_cells * mult;
    }
    total
}

/// Total communication *transfer volume* for one coarse step
/// (intra + inter), counting every directed transfer.
pub fn total_comm<const D: usize>(h: &GridHierarchy<D>, part: &Partition<D>, ghost: i64) -> u64 {
    intra_level_comm(h, part, ghost) + inter_level_comm(h, part)
}

/// All-pairs oracle for [`total_comm`].
pub fn naive_total_comm<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    naive_intra_level_comm(h, part, ghost) + naive_inter_level_comm(h, part)
}

/// Intra-level *involvement* count: grid points that are sent to at least
/// one other processor, counted once per local time step (level `l`
/// points count `ratio^l` times). This matches the paper's §4.1
/// normalization exactly: 100 % ⇔ "all points in the grid being involved
/// in communications at all local time steps".
pub fn intra_level_involved<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    let mut index = FragIndex::default();
    let mut clips: Vec<samr_geom::AABox<D>> = Vec::new();
    let mut total = 0u64;
    for (l, lp) in part.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        index.build(&lp.fragments);
        let mut level_points = 0u64;
        for f in &lp.fragments {
            clips.clear();
            // `g.grow(ghost) ∩ f ≠ ∅  ⟺  g ∩ f.grow(ghost) ≠ ∅`, so the
            // shell query enumerates exactly the fragments with a clip.
            let shell = f.rect.grow(ghost);
            index.query(&shell, |_, rect, owner| {
                if owner != f.owner {
                    if let Some(c) = rect.grow(ghost).intersect(&f.rect) {
                        clips.push(c);
                    }
                }
            });
            if !clips.is_empty() {
                level_points += boxops::union_cells(&clips);
            }
        }
        total += level_points * mult;
    }
    total
}

/// All-pairs oracle for [`intra_level_involved`].
pub fn naive_intra_level_involved<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    let mut total = 0u64;
    let mut clips: Vec<samr_geom::AABox<D>> = Vec::new();
    for (l, lp) in part.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        let frags = &lp.fragments;
        let mut level_points = 0u64;
        for f in frags {
            clips.clear();
            for g in frags {
                if g.owner == f.owner {
                    continue;
                }
                if let Some(c) = g.rect.grow(ghost).intersect(&f.rect) {
                    clips.push(c);
                }
            }
            if !clips.is_empty() {
                level_points += boxops::union_cells(&clips);
            }
        }
        total += level_points * mult;
    }
    total
}

/// Grid points involved in communication per coarse step (the §4.1
/// numerator): intra-level involvement plus inter-level parent–child
/// involvement (each remotely-parented fine cell counts once per fine
/// local step).
pub fn involved_comm_points<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    intra_level_involved(h, part, ghost) + inter_level_comm(h, part)
}

/// All-pairs oracle for [`involved_comm_points`].
pub fn naive_involved_comm_points<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> u64 {
    naive_intra_level_involved(h, part, ghost) + naive_inter_level_comm(h, part)
}

/// Per-processor communication volume (sent + received grid points per
/// coarse step), used by the execution-time model.
pub fn per_proc_comm<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> Vec<u64> {
    let mut scratch = MetricScratch::default();
    comm_accounting(h, part, ghost, &mut scratch);
    std::mem::take(&mut scratch.vols)
}

/// All-pairs oracle for [`per_proc_comm`].
pub fn naive_per_proc_comm<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
) -> Vec<u64> {
    let mut vols = vec![0u64; part.nprocs];
    for (l, lp) in part.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        for f in &lp.fragments {
            let shell = f.rect.grow(ghost);
            for g in &lp.fragments {
                if g.owner == f.owner {
                    continue;
                }
                let overlap = shell.overlap_cells(&g.rect);
                if overlap > 0 {
                    vols[f.owner as usize] += overlap * mult; // received
                    vols[g.owner as usize] += overlap * mult; // sent
                }
            }
        }
    }
    // Inter-level contributions.
    for l in 0..part.levels.len().saturating_sub(1) {
        let mult = (h.ratio as u64).pow((l + 1) as u32);
        for ff in &part.levels[l + 1].fragments {
            let parent = ff.rect.coarsen(h.ratio);
            for cf in &part.levels[l].fragments {
                if cf.owner == ff.owner {
                    continue;
                }
                if let Some(ov) = parent.intersect(&cf.rect) {
                    let fine_cov = ov.refine(h.ratio).overlap_cells(&ff.rect) * mult;
                    vols[ff.owner as usize] += fine_cov;
                    vols[cf.owner as usize] += fine_cov;
                }
            }
        }
    }
    vols
}

/// The communication totals produced by one [`comm_accounting`] walk.
/// Per-processor volumes land in the scratch's `vols` buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommAccounting {
    /// Intra-level ghost-exchange transfer volume ([`intra_level_comm`]).
    pub intra: u64,
    /// Inter-level parent–child transfer volume ([`inter_level_comm`]).
    pub inter: u64,
    /// Intra-level involvement points ([`intra_level_involved`]).
    pub intra_involved: u64,
}

impl CommAccounting {
    /// Total transfer volume ([`total_comm`]).
    pub fn transfer_volume(&self) -> u64 {
        self.intra + self.inter
    }

    /// Involved grid points ([`involved_comm_points`]).
    pub fn involved_points(&self) -> u64 {
        self.intra_involved + self.inter
    }
}

/// One-pass communication accounting: computes [`intra_level_comm`],
/// [`inter_level_comm`], [`intra_level_involved`] and [`per_proc_comm`]
/// (into `scratch.vols`) with a single index build per level and a single
/// ghost-shell query per fragment — the combined cost the execution-time
/// model pays per simulated step.
pub fn comm_accounting<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
    ghost: i64,
    scratch: &mut MetricScratch<D>,
) -> CommAccounting {
    let mut acc = CommAccounting::default();
    scratch.vols.clear();
    scratch.vols.resize(part.nprocs, 0);
    for l in 0..part.levels.len() {
        let mult = (h.ratio as u64).pow(l as u32);
        scratch.index.build(&part.levels[l].fragments);
        let mut level_cells = 0u64;
        let mut level_points = 0u64;
        for f in &part.levels[l].fragments {
            scratch.clips.clear();
            let shell = f.rect.grow(ghost);
            let (clips, vols) = (&mut scratch.clips, &mut scratch.vols);
            scratch.index.query(&shell, |_, rect, owner| {
                if owner != f.owner {
                    let overlap = shell.overlap_cells(&rect);
                    level_cells += overlap;
                    vols[f.owner as usize] += overlap * mult; // received
                    vols[owner as usize] += overlap * mult; // sent
                    if let Some(c) = rect.grow(ghost).intersect(&f.rect) {
                        clips.push(c);
                    }
                }
            });
            if !scratch.clips.is_empty() {
                level_points += boxops::union_cells(&scratch.clips);
            }
        }
        acc.intra += level_cells * mult;
        acc.intra_involved += level_points * mult;
        // Inter-level pass against the still-built coarse index.
        if l + 1 < part.levels.len() {
            let fine_mult = (h.ratio as u64).pow((l + 1) as u32);
            let mut mismatched_fine_cells = 0u64;
            for ff in &part.levels[l + 1].fragments {
                let parent = ff.rect.coarsen(h.ratio);
                let vols = &mut scratch.vols;
                scratch.index.query(&parent, |_, rect, owner| {
                    if owner != ff.owner {
                        if let Some(ov) = parent.intersect(&rect) {
                            let fine_cov = ov.refine(h.ratio).overlap_cells(&ff.rect);
                            mismatched_fine_cells += fine_cov;
                            vols[ff.owner as usize] += fine_cov * fine_mult;
                            vols[owner as usize] += fine_cov * fine_mult;
                        }
                    }
                });
            }
            acc.inter += mismatched_fine_cells * fine_mult;
        }
    }
    acc
}

/// Worst-case ghost surface of a hierarchy, ignoring the partition: every
/// patch-boundary cell communicates at every local step. This is the
/// quantity the ab-initio β_c penalty is built from (aggressive by
/// design, §5.2).
pub fn worst_case_comm<const D: usize>(h: &GridHierarchy<D>, ghost: i64) -> u64 {
    let mut total = 0u64;
    for (l, level) in h.levels.iter().enumerate() {
        let mult = (h.ratio as u64).pow(l as u32);
        let cells: u64 = level
            .patches
            .iter()
            .map(|p| {
                // Boundary ring of width `ghost` (cells within `ghost` of
                // the patch surface).
                p.rect.boundary_shell_cells(ghost)
            })
            .sum();
        total += cells * mult;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_partition::{Fragment, LevelPartition};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn base_hierarchy() -> GridHierarchy<2> {
        GridHierarchy::base_only(Rect2::from_extents(8, 8), 2)
    }

    fn split_partition(owner_b: u32) -> Partition<2> {
        Partition {
            nprocs: 2,
            levels: vec![LevelPartition {
                fragments: vec![
                    Fragment {
                        rect: r(0, 0, 3, 7),
                        owner: 0,
                    },
                    Fragment {
                        rect: r(4, 0, 7, 7),
                        owner: owner_b,
                    },
                ],
            }],
        }
    }

    #[test]
    fn single_owner_no_comm() {
        let h = base_hierarchy();
        let part = split_partition(0);
        assert_eq!(intra_level_comm(&h, &part, 1), 0);
        assert_eq!(total_comm(&h, &part, 1), 0);
    }

    #[test]
    fn two_owner_split_exchanges_one_column_each_way() {
        let h = base_hierarchy();
        let part = split_partition(1);
        // Fragment A's ghost shell covers column x=4 of B (8 cells) and
        // vice versa: 16 transfers per step, multiplier 1 at level 0.
        assert_eq!(intra_level_comm(&h, &part, 1), 16);
        assert_eq!(naive_intra_level_comm(&h, &part, 1), 16);
        // Wider ghost doubles it.
        assert_eq!(intra_level_comm(&h, &part, 2), 32);
        assert_eq!(naive_intra_level_comm(&h, &part, 2), 32);
    }

    #[test]
    fn per_proc_comm_is_symmetric_for_symmetric_split() {
        let h = base_hierarchy();
        let part = split_partition(1);
        let v = per_proc_comm(&h, &part, 1);
        assert_eq!(v, vec![16, 16]);
        assert_eq!(naive_per_proc_comm(&h, &part, 1), v);
    }

    #[test]
    fn level_multiplier_counts_local_steps() {
        // Same split but at level 1: the exchange happens twice per
        // coarse step (ratio 2).
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(0, 0, 7, 7)]],
        );
        let part = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(0, 0, 3, 7),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(4, 0, 7, 7),
                            owner: 1,
                        },
                    ],
                },
            ],
        };
        assert_eq!(intra_level_comm(&h, &part, 1), 16 * 2);
    }

    #[test]
    fn inter_level_zero_when_colocated() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        // Domain-based style: fine fragment sits on the same proc as its
        // parent cells.
        let part = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(0, 0, 7, 3),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(0, 4, 7, 7),
                            owner: 1,
                        },
                    ],
                },
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(4, 4, 11, 7),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(4, 8, 11, 11),
                            owner: 1,
                        },
                    ],
                },
            ],
        };
        assert_eq!(inter_level_comm(&h, &part), 0);
        assert_eq!(naive_inter_level_comm(&h, &part), 0);
    }

    #[test]
    fn inter_level_counts_mismatched_fine_cells() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        // Whole base on proc 0, whole fine level on proc 1: every fine
        // cell (64) is mismatched, multiplier ratio^1 = 2.
        let part = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(0, 0, 7, 7),
                        owner: 0,
                    }],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 1,
                    }],
                },
            ],
        };
        assert_eq!(inter_level_comm(&h, &part), 64 * 2);
        assert_eq!(naive_inter_level_comm(&h, &part), 64 * 2);
        let v = per_proc_comm(&h, &part, 1);
        assert_eq!(v[0], 128);
        assert_eq!(v[1], 128);
    }

    #[test]
    fn accounting_matches_individual_metrics() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        );
        let part = Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(0, 0, 3, 7),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(4, 0, 7, 7),
                            owner: 1,
                        },
                    ],
                },
                LevelPartition {
                    fragments: vec![Fragment {
                        rect: r(4, 4, 11, 11),
                        owner: 0,
                    }],
                },
            ],
        };
        let mut scratch = MetricScratch::default();
        for ghost in [1, 2] {
            let acc = comm_accounting(&h, &part, ghost, &mut scratch);
            assert_eq!(acc.intra, intra_level_comm(&h, &part, ghost));
            assert_eq!(acc.inter, inter_level_comm(&h, &part));
            assert_eq!(acc.intra_involved, intra_level_involved(&h, &part, ghost));
            assert_eq!(acc.transfer_volume(), total_comm(&h, &part, ghost));
            assert_eq!(
                acc.involved_points(),
                involved_comm_points(&h, &part, ghost)
            );
            assert_eq!(scratch.vols, per_proc_comm(&h, &part, ghost));
        }
    }

    #[test]
    fn worst_case_bounds_actual_for_interior_splits() {
        // The ab-initio worst case assumes every patch boundary cell talks
        // every local step; an actual 2-way split only pays along the cut.
        let h = base_hierarchy();
        let part = split_partition(1);
        assert!(worst_case_comm(&h, 1) >= intra_level_comm(&h, &part, 1));
    }

    #[test]
    fn worst_case_thin_patch_counts_all_cells() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(0, 0, 15, 1)]],
        );
        // Level 1 patch is 16x2: all 32 cells are boundary; x2 local steps;
        // base 8x8 has boundary ring 28 cells x1.
        assert_eq!(worst_case_comm(&h, 1), 28 + 32 * 2);
    }
}
