//! Partition policies — the runtime owner of the "which partitioner"
//! decision.
//!
//! Historically the streaming driver took one `&dyn Partitioner` for the
//! whole run: the choice was a constructor-time constant. A
//! [`PartitionPolicy`] turns it into a streamed, observable object: the
//! driver asks the policy for the *current* partitioner before every
//! repartitioning and feeds every computed [`StepMetrics`] back through
//! [`PartitionPolicy::observe`], giving the policy the chance to switch
//! partitioners mid-stream. A switch is not free — the next snapshot is
//! forcibly repartitioned (no `reuse_unchanged` skip) under the new
//! partitioner, and the resulting migration against the carried previous
//! distribution is exactly the switch's data-movement bill, recorded as a
//! [`SwitchEvent`] in the run's
//! [`StreamStats`](crate::stream::StreamStats).
//!
//! This module holds the driver-facing contract plus the trivial
//! [`StaticPolicy`]; adaptive policies (hysteresis thresholds, patience
//! voting) live upstack in `samr-meta`, next to the selector logic they
//! reuse.

use crate::metrics::StepMetrics;
use samr_partition::Partitioner;

/// A partitioner change requested by a policy, to take effect on the
/// next repartitioning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicySwitch {
    /// Configured name of the partitioner being abandoned.
    pub from: String,
    /// Configured name of the partitioner taking over.
    pub to: String,
}

/// One partitioner switch that took effect, with its charged cost: the
/// first snapshot partitioned under the new partitioner and the data
/// volume that had to move to realize the new distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchEvent {
    /// Coarse step at which the new partitioner first produced the
    /// distribution.
    pub step: u32,
    /// Configured name of the partitioner switched away from.
    pub from: String,
    /// Configured name of the partitioner switched to.
    pub to: String,
    /// Grid points whose owner changed in the switch step — the switch's
    /// full migration bill (feature motion plus redistribution).
    pub migration_cells: u64,
    /// Invocation cost charged for the switch step's repartitioning.
    pub partition_cost: f64,
}

/// The runtime owner of the partitioner across a streamed simulation.
///
/// The driver contract, in invocation order per snapshot:
///
/// 1. [`current`](Self::current) names the partitioner for this
///    snapshot's (re)partitioning;
/// 2. the step's metrics are computed (migration charged against the
///    previous distribution, whoever produced it);
/// 3. [`observe`](Self::observe) sees those metrics and may return a
///    [`PolicySwitch`] — from then on [`current`](Self::current) must
///    return the new partitioner, and the driver forces a repartition of
///    the next snapshot so the switch materializes and is charged.
pub trait PartitionPolicy<const D: usize> {
    /// Descriptive name of the policy (used as the result's partitioner
    /// label).
    fn name(&self) -> String;

    /// The partitioner currently in charge.
    fn current(&self) -> &(dyn Partitioner<D> + Sync);

    /// Feed one step's observed metrics; a returned switch takes effect
    /// on the next snapshot.
    fn observe(&mut self, m: &StepMetrics) -> Option<PolicySwitch>;

    /// `true` when [`observe`](Self::observe) can never switch — lets
    /// the driver keep the window-parallel pre-partitioning fast path.
    fn is_static(&self) -> bool {
        false
    }
}

/// The do-nothing policy: one partitioner for the whole run.
///
/// Wrapping a partitioner in a `StaticPolicy` reproduces the historical
/// fixed-partitioner driver byte-identically (the stream tests pin this
/// by comparing against the batch driver).
pub struct StaticPolicy<'a, const D: usize> {
    inner: &'a (dyn Partitioner<D> + Sync),
}

impl<'a, const D: usize> StaticPolicy<'a, D> {
    /// Wrap one partitioner as the policy for a whole run.
    pub fn new(inner: &'a (dyn Partitioner<D> + Sync)) -> Self {
        Self { inner }
    }
}

impl<const D: usize> PartitionPolicy<D> for StaticPolicy<'_, D> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn current(&self) -> &(dyn Partitioner<D> + Sync) {
        self.inner
    }

    fn observe(&mut self, _m: &StepMetrics) -> Option<PolicySwitch> {
        None
    }

    fn is_static(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_partition::HybridPartitioner;

    #[test]
    fn static_policy_mirrors_its_partitioner_and_never_switches() {
        let p = HybridPartitioner::default();
        let mut policy = StaticPolicy::<2>::new(&p);
        assert_eq!(policy.name(), Partitioner::<2>::name(&p));
        assert!(policy.is_static());
        let m = StepMetrics {
            step: 0,
            total_points: 1,
            workload: 1,
            load_imbalance: 1.0,
            comm_cells: 0,
            rel_comm: 0.0,
            migration_cells: 0,
            rel_migration: 0.0,
            partition_cost: 0.0,
            fragments: 1,
            step_time: 0.0,
        };
        assert_eq!(policy.observe(&m), None);
    }
}
