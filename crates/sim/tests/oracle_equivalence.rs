//! Indexed metric paths == retained all-pairs `naive_*` oracles.
//!
//! Every accumulated quantity is an order-independent `u64` sum, so the
//! grid-bucket index must reproduce the naive loops *exactly* — these
//! tests drive both paths over random, deliberately overlap-heavy
//! fragment sets (fragments here need not tile any hierarchy; the metric
//! functions only read rects, owners and the refinement ratio) in both
//! two and three dimensions.

use proptest::prelude::*;
use samr_geom::{Box3, Point2, Rect2};
use samr_grid::GridHierarchy;
use samr_partition::{Fragment, LevelPartition, Partition};
use samr_sim::comm::{
    comm_accounting, inter_level_comm, intra_level_comm, intra_level_involved,
    naive_inter_level_comm, naive_intra_level_comm, naive_intra_level_involved,
    naive_per_proc_comm, per_proc_comm,
};
use samr_sim::migration::{
    interpolation_transfers, migration_accounting, moved_survivors, naive_interpolation_transfers,
    naive_migration_cells, naive_moved_survivors, naive_per_proc_migration, per_proc_migration,
};
use samr_sim::MetricScratch;

const NPROCS: usize = 4;

/// Random owner-tagged 2-D boxes, free to overlap heavily.
fn arb_frags2(max: usize) -> impl Strategy<Value = Vec<Fragment<2>>> {
    prop::collection::vec(
        (
            (0i64..40, 0i64..40, 1i64..12, 1i64..12),
            0u32..NPROCS as u32,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|((x, y, w, h), owner)| Fragment {
                rect: Rect2::from_coords(x, y, x + w - 1, y + h - 1),
                owner,
            })
            .collect()
    })
}

/// Random owner-tagged 3-D boxes.
fn arb_frags3(max: usize) -> impl Strategy<Value = Vec<Fragment<3>>> {
    prop::collection::vec(
        (
            (0i64..20, 0i64..20, 0i64..20, 1i64..8, 1i64..8),
            0u32..NPROCS as u32,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|((x, y, z, w, h), owner)| Fragment {
                rect: Box3::from_coords(x, y, z, x + w - 1, y + h - 1, z + w - 1),
                owner,
            })
            .collect()
    })
}

/// Deal a fragment pool round-robin into `nlevels` level lists.
fn deal<const D: usize>(frags: Vec<Fragment<D>>, nlevels: usize) -> Partition<D> {
    let mut levels: Vec<LevelPartition<D>> = (0..nlevels)
        .map(|_| LevelPartition {
            fragments: Vec::new(),
        })
        .collect();
    for (i, f) in frags.into_iter().enumerate() {
        levels[i % nlevels].fragments.push(f);
    }
    Partition {
        nprocs: NPROCS,
        levels,
    }
}

/// A nested 2-D hierarchy (for the interpolation metrics, which read
/// level rects and the ratio from real hierarchies).
fn arb_hierarchy() -> impl Strategy<Value = GridHierarchy<2>> {
    let blob = (2i64..20, 2i64..20, 2i64..10, 2i64..10);
    (blob, any::<bool>()).prop_map(|((x, y, w, h), deep)| {
        let l1 = Rect2::new(
            Point2::new(x, y),
            Point2::new((x + w).min(31), (y + h).min(31)),
        )
        .refine(2);
        let mut levels = vec![vec![], vec![l1]];
        if deep {
            if let Some(inner) = l1.shrink(2) {
                if inner.extent().x >= 2 && inner.extent().y >= 2 {
                    levels.push(vec![inner.refine(2)]);
                }
            }
        }
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &levels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn comm_metrics_match_oracles_2d(
        frags in arb_frags2(40),
        nlevels in 1usize..4,
        ghost in 1i64..3,
    ) {
        let h = GridHierarchy::base_only(Rect2::from_extents(64, 64), 2);
        let part = deal(frags, nlevels);
        prop_assert_eq!(
            intra_level_comm(&h, &part, ghost),
            naive_intra_level_comm(&h, &part, ghost)
        );
        prop_assert_eq!(inter_level_comm(&h, &part), naive_inter_level_comm(&h, &part));
        prop_assert_eq!(
            intra_level_involved(&h, &part, ghost),
            naive_intra_level_involved(&h, &part, ghost)
        );
        prop_assert_eq!(
            per_proc_comm(&h, &part, ghost),
            naive_per_proc_comm(&h, &part, ghost)
        );
    }

    #[test]
    fn comm_accounting_matches_oracles_2d(
        frags in arb_frags2(40),
        nlevels in 1usize..4,
        ghost in 1i64..3,
    ) {
        let h = GridHierarchy::base_only(Rect2::from_extents(64, 64), 2);
        let part = deal(frags, nlevels);
        let mut scratch = MetricScratch::default();
        let acc = comm_accounting(&h, &part, ghost, &mut scratch);
        prop_assert_eq!(acc.intra, naive_intra_level_comm(&h, &part, ghost));
        prop_assert_eq!(acc.inter, naive_inter_level_comm(&h, &part));
        prop_assert_eq!(acc.intra_involved, naive_intra_level_involved(&h, &part, ghost));
        let naive_vols = naive_per_proc_comm(&h, &part, ghost);
        prop_assert_eq!(scratch.per_proc_vols(), naive_vols.as_slice());
        // The same dirty scratch reproduces itself.
        let again = comm_accounting(&h, &part, ghost, &mut scratch);
        prop_assert_eq!(acc, again);
    }

    #[test]
    fn comm_metrics_match_oracles_3d(
        frags in arb_frags3(30),
        nlevels in 1usize..4,
    ) {
        let h = GridHierarchy::base_only(Box3::from_extents(32, 32, 32), 2);
        let part = deal(frags, nlevels);
        prop_assert_eq!(
            intra_level_comm(&h, &part, 1),
            naive_intra_level_comm(&h, &part, 1)
        );
        prop_assert_eq!(inter_level_comm(&h, &part), naive_inter_level_comm(&h, &part));
        prop_assert_eq!(
            intra_level_involved(&h, &part, 1),
            naive_intra_level_involved(&h, &part, 1)
        );
        prop_assert_eq!(
            per_proc_comm(&h, &part, 1),
            naive_per_proc_comm(&h, &part, 1)
        );
    }

    #[test]
    fn moved_survivors_matches_oracle(
        old_frags in arb_frags2(40),
        new_frags in arb_frags2(40),
        nlevels in 1usize..4,
    ) {
        let prev_part = deal(old_frags, nlevels);
        let cur_part = deal(new_frags, nlevels);
        prop_assert_eq!(
            moved_survivors(&prev_part, &cur_part),
            naive_moved_survivors(&prev_part, &cur_part)
        );
    }

    #[test]
    fn moved_survivors_matches_oracle_3d(
        old_frags in arb_frags3(25),
        new_frags in arb_frags3(25),
        nlevels in 1usize..3,
    ) {
        let prev_part = deal(old_frags, nlevels);
        let cur_part = deal(new_frags, nlevels);
        prop_assert_eq!(
            moved_survivors(&prev_part, &cur_part),
            naive_moved_survivors(&prev_part, &cur_part)
        );
    }

    #[test]
    fn migration_metrics_match_oracles(
        prev_h in arb_hierarchy(),
        cur_h in arb_hierarchy(),
        old_frags in arb_frags2(30),
        new_frags in arb_frags2(30),
    ) {
        // Partitions sized to their hierarchies; fragments are arbitrary
        // overlap-heavy boxes, which is all the metric paths read.
        let prev_part = deal(old_frags, prev_h.levels.len());
        let cur_part = deal(new_frags, cur_h.levels.len());
        prop_assert_eq!(
            interpolation_transfers(&prev_h, &cur_h, &cur_part),
            naive_interpolation_transfers(&prev_h, &cur_h, &cur_part)
        );
        prop_assert_eq!(
            per_proc_migration(&prev_h, &prev_part, &cur_h, &cur_part, NPROCS),
            naive_per_proc_migration(&prev_h, &prev_part, &cur_h, &cur_part, NPROCS)
        );
        let mut scratch = MetricScratch::default();
        let total = migration_accounting(
            &prev_h, &prev_part, &cur_h, &cur_part, NPROCS, &mut scratch,
        );
        prop_assert_eq!(
            total,
            naive_migration_cells(&prev_h, &prev_part, &cur_h, &cur_part)
        );
        let naive_mig = naive_per_proc_migration(&prev_h, &prev_part, &cur_h, &cur_part, NPROCS);
        prop_assert_eq!(scratch.per_proc_mig(), naive_mig.as_slice());
    }
}
