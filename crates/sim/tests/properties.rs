//! Property-based tests on the simulator's measured quantities.

use proptest::prelude::*;
use samr_geom::{Point2, Rect2};
use samr_grid::GridHierarchy;
use samr_partition::{DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner};
use samr_sim::comm::{
    inter_level_comm, intra_level_comm, intra_level_involved, involved_comm_points, total_comm,
};
use samr_sim::migration::{migration_cells, moved_survivors};

fn arb_hierarchy() -> impl Strategy<Value = GridHierarchy<2>> {
    let blob = (2i64..20, 2i64..20, 2i64..10, 2i64..10);
    (blob, any::<bool>()).prop_map(|((x, y, w, h), deep)| {
        let l1 = Rect2::new(
            Point2::new(x, y),
            Point2::new((x + w).min(31), (y + h).min(31)),
        )
        .refine(2);
        let mut levels = vec![vec![], vec![l1]];
        if deep {
            if let Some(inner) = l1.shrink(2) {
                if inner.extent().x >= 2 && inner.extent().y >= 2 {
                    levels.push(vec![inner.refine(2)]);
                }
            }
        }
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &levels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_processor_is_silent(h in arb_hierarchy()) {
        for part in [
            DomainSfcPartitioner::default().partition(&h, 1),
            PatchPartitioner::default().partition(&h, 1),
            HybridPartitioner::default().partition(&h, 1),
        ] {
            prop_assert_eq!(total_comm(&h, &part, 1), 0);
            prop_assert_eq!(involved_comm_points(&h, &part, 1), 0);
        }
    }

    #[test]
    fn comm_monotone_in_ghost_width(h in arb_hierarchy(), nprocs in 2usize..12) {
        let part = HybridPartitioner::default().partition(&h, nprocs);
        let g1 = intra_level_comm(&h, &part, 1);
        let g2 = intra_level_comm(&h, &part, 2);
        let g3 = intra_level_comm(&h, &part, 3);
        prop_assert!(g1 <= g2 && g2 <= g3);
        let i1 = intra_level_involved(&h, &part, 1);
        let i2 = intra_level_involved(&h, &part, 2);
        prop_assert!(i1 <= i2);
    }

    #[test]
    fn involvement_never_exceeds_transfers(h in arb_hierarchy(), nprocs in 2usize..12) {
        // Each involved point participates in >= 1 directed transfer.
        for part in [
            DomainSfcPartitioner::default().partition(&h, nprocs),
            PatchPartitioner::default().partition(&h, nprocs),
            HybridPartitioner::default().partition(&h, nprocs),
        ] {
            prop_assert!(
                intra_level_involved(&h, &part, 1) <= intra_level_comm(&h, &part, 1)
            );
        }
    }

    #[test]
    fn involvement_bounded_by_workload(h in arb_hierarchy(), nprocs in 2usize..12) {
        // Intra-level: a point is involved at most once per local step.
        let part = DomainSfcPartitioner::default().partition(&h, nprocs);
        prop_assert!(intra_level_involved(&h, &part, 1) <= h.workload());
    }

    #[test]
    fn domain_based_never_pays_interlevel(h in arb_hierarchy(), nprocs in 2usize..12) {
        let part = DomainSfcPartitioner::default().partition(&h, nprocs);
        prop_assert_eq!(inter_level_comm(&h, &part), 0);
    }

    #[test]
    fn identical_partitions_never_migrate(h in arb_hierarchy(), nprocs in 1usize..12) {
        let part = HybridPartitioner::default().partition(&h, nprocs);
        prop_assert_eq!(migration_cells(&h, &part, &h, &part), 0);
    }

    #[test]
    fn survivor_migration_is_symmetric_in_magnitude(
        a in arb_hierarchy(),
        b in arb_hierarchy(),
        nprocs in 2usize..8,
    ) {
        // Moving data from distribution A to B touches the same surviving
        // cells as B to A (ownership changes are symmetric on the
        // intersection).
        let p = DomainSfcPartitioner::default();
        let pa = p.partition(&a, nprocs);
        let pb = p.partition(&b, nprocs);
        prop_assert_eq!(
            moved_survivors(&pa, &pb),
            moved_survivors(&pb, &pa)
        );
    }

    #[test]
    fn migration_bounded_by_union_size(
        a in arb_hierarchy(),
        b in arb_hierarchy(),
        nprocs in 2usize..8,
    ) {
        let p = HybridPartitioner::default();
        let pa = p.partition(&a, nprocs);
        let pb = p.partition(&b, nprocs);
        let m = migration_cells(&a, &pa, &b, &pb);
        // Survivors <= |A ∩ B| <= |A|; interpolation transfers <= |B|.
        prop_assert!(m <= a.total_points() + b.total_points());
    }
}
