//! Berger–Rigoutsos point clustering: flags to patch boxes, generic over
//! the dimension.
//!
//! The clusterer reproduces the grid-generation step of the Berger–Colella
//! SAMR algorithm that the paper's applications (GrACE kernels) use: given
//! the refinement flag mask of a level, produce a small set of boxes
//! covering all flags with at least a target *efficiency* (flagged cells /
//! box cells), splitting candidate boxes at signature holes, then at
//! Laplacian inflection points, then by bisection. The paper's set-up fixes
//! the *granularity* (minimum block dimension) at 2; every emitted box
//! respects it by construction. The same signature-driven recursion works
//! unchanged in any dimension — a `D`-dimensional box has `D` signatures.

use crate::flags::FlagField;
use samr_geom::{AABox, Axis};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the Berger–Rigoutsos clusterer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterOptions {
    /// Accept a box when `flagged / cells >= min_efficiency`.
    pub min_efficiency: f64,
    /// Minimum box extent per axis (the paper's granularity = 2).
    pub min_block: i64,
    /// Hard cap on the number of boxes produced (safety valve; remaining
    /// candidates are accepted as-is when reached).
    pub max_boxes: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            min_efficiency: 0.75,
            min_block: 2,
            max_boxes: 4096,
        }
    }
}

impl ClusterOptions {
    /// The paper's §5.1.1 configuration: granularity 2, standard 0.75
    /// efficiency.
    pub fn paper_defaults() -> Self {
        Self::default()
    }
}

/// One work item: a window (disjoint from all other windows) and the tight
/// bounding box of the flags inside it.
struct Candidate<const D: usize> {
    window: AABox<D>,
    bbox: AABox<D>,
    flagged: u64,
}

/// Reusable scratch buffers for [`cluster_flags_with`].
///
/// Berger–Rigoutsos churns through short-lived allocations — a signature
/// `Vec` per candidate scan, a work queue, and the accepted-box list per
/// invocation. Callers that cluster repeatedly (the regrid step clusters
/// one flag field per level per regrid) thread one `ClusterScratch`
/// through and the recursion reuses the same buffers: after warm-up a
/// call allocates nothing at all — the output slice is borrowed from the
/// scratch arena.
#[derive(Default)]
pub struct ClusterScratch<const D: usize> {
    /// Signature buffer shared by every axis scan.
    sig: Vec<u32>,
    /// Pending-candidate stack.
    queue: Vec<Candidate<D>>,
    /// Accepted boxes — the output arena [`cluster_flags_with`] borrows
    /// its result slice from.
    accepted: Vec<AABox<D>>,
}

/// Cluster the flagged cells of `flags` into boxes.
///
/// Returned boxes are pairwise disjoint, contain every flagged cell, have
/// extents `>= min_block` on every axis, and lie inside the flag domain.
pub fn cluster_flags<const D: usize>(flags: &FlagField<D>, opts: &ClusterOptions) -> Vec<AABox<D>> {
    let mut scratch = ClusterScratch::default();
    cluster_flags_with(flags, opts, &mut scratch).to_vec()
}

/// [`cluster_flags`] with caller-owned scratch buffers — identical
/// output, zero allocations once the scratch is warm. The returned
/// slice is borrowed from the scratch arena and stays valid until the
/// next clustering call through the same scratch.
pub fn cluster_flags_with<'a, const D: usize>(
    flags: &FlagField<D>,
    opts: &ClusterOptions,
    scratch: &'a mut ClusterScratch<D>,
) -> &'a [AABox<D>] {
    assert!(opts.min_block >= 1);
    assert!(
        (0.0..=1.0).contains(&opts.min_efficiency),
        "efficiency must be in [0,1]"
    );
    let ClusterScratch {
        sig,
        queue,
        accepted,
    } = scratch;
    accepted.clear();
    let domain = flags.domain();
    let Some(bbox) = flags.bounding_box() else {
        return accepted;
    };
    queue.clear();
    queue.push(Candidate {
        window: domain,
        bbox,
        flagged: flags.count_in(&bbox),
    });

    while let Some(c) = queue.pop() {
        if accepted.len() + queue.len() >= opts.max_boxes {
            accepted.push(expand_to_min(c.bbox, opts.min_block, &c.window));
            continue;
        }
        let efficiency = c.flagged as f64 / c.bbox.cells() as f64;
        if efficiency >= opts.min_efficiency || !splittable(&c.bbox, opts.min_block) {
            accepted.push(expand_to_min(c.bbox, opts.min_block, &c.window));
            continue;
        }
        let (axis, cut) = choose_split(flags, &c.bbox, opts.min_block, sig);
        let (wa, wb) = c.window.split_at(axis, cut);
        for w in [wa, wb] {
            if let Some(bb) = flag_bbox_in(flags, &w, sig) {
                let flagged = flags.count_in(&bb);
                queue.push(Candidate {
                    window: w,
                    bbox: bb,
                    flagged,
                });
            }
        }
    }
    // Deterministic output order regardless of queue discipline (the
    // historical `(lo.y, lo.x, hi.y, hi.x)` key, generalized).
    accepted.sort_by(|a, b| a.cmp_spatial(b));
    accepted
}

/// Byte-for-byte capacity diagnostics for benchmarks and tests: how many
/// boxes the scratch arena currently holds without reallocating.
impl<const D: usize> ClusterScratch<D> {
    /// `true` once every internal buffer has a non-zero capacity — i.e.
    /// subsequent same-shape clustering calls will not allocate.
    pub fn is_warm(&self) -> bool {
        self.sig.capacity() > 0 && self.queue.capacity() > 0 && self.accepted.capacity() > 0
    }
}

/// Tight bounding box of flags restricted to `window`.
fn flag_bbox_in<const D: usize>(
    flags: &FlagField<D>,
    window: &AABox<D>,
    sig: &mut Vec<u32>,
) -> Option<AABox<D>> {
    let w = flags.domain().intersect(window)?;
    let mut lo = w.lo();
    let mut hi = w.hi();
    for i in 0..D {
        let axis = Axis::from_index(i);
        flags.signature_into(axis, &w, sig);
        let first = sig.iter().position(|&v| v > 0)?;
        let last = sig.iter().rposition(|&v| v > 0)?;
        lo = lo.with(axis, w.lo()[i] + first as i64);
        hi = hi.with(axis, w.lo()[i] + last as i64);
    }
    Some(AABox::new(lo, hi))
}

/// A box can be split on some axis while keeping both sides >= min_block.
fn splittable<const D: usize>(bbox: &AABox<D>, min_block: i64) -> bool {
    (0..D).any(|i| bbox.len(Axis::from_index(i)) >= 2 * min_block)
}

/// Axes of a box ordered longest-first (stable on ties, so X precedes Y
/// precedes Z among equals — the historical 2-D ordering).
fn axes_by_length<const D: usize>(bbox: &AABox<D>) -> [Axis; D] {
    let mut axes = Axis::all::<D>();
    axes.sort_by_key(|a| std::cmp::Reverse(bbox.len(*a)));
    axes
}

/// Pick the split (axis, inclusive-left cut coordinate) for a box that
/// failed the efficiency test: first a signature hole, then the strongest
/// Laplacian inflection, then midpoint bisection. Longest axis is examined
/// first at each stage.
fn choose_split<const D: usize>(
    flags: &FlagField<D>,
    bbox: &AABox<D>,
    min_block: i64,
    sig: &mut Vec<u32>,
) -> (Axis, i64) {
    let axes = axes_by_length(bbox);
    // Stage 1: holes.
    for axis in axes {
        if bbox.len(axis) < 2 * min_block {
            continue;
        }
        flags.signature_into(axis, bbox, sig);
        if let Some(i) = best_hole(sig, min_block) {
            return (axis, bbox.lo().get(axis) + i);
        }
    }
    // Stage 2: inflection points of the signature Laplacian.
    for axis in axes {
        if bbox.len(axis) < 2 * min_block {
            continue;
        }
        flags.signature_into(axis, bbox, sig);
        if let Some(i) = best_inflection(sig, min_block) {
            return (axis, bbox.lo().get(axis) + i);
        }
    }
    // Stage 3: bisect the longest splittable axis.
    for axis in axes {
        if bbox.len(axis) >= 2 * min_block {
            let i = bbox.len(axis) / 2 - 1;
            return (axis, bbox.lo().get(axis) + i);
        }
    }
    unreachable!("choose_split called on an unsplittable box");
}

/// Index `i` (inclusive-left cut after position `i`) of the zero-signature
/// hole closest to the box center, with both sides >= min_block. The cut is
/// placed at the zero entry so that one side sheds the empty margin.
fn best_hole(sig: &[u32], min_block: i64) -> Option<i64> {
    let n = sig.len() as i64;
    let lo = min_block - 1;
    let hi = n - 1 - min_block;
    let center = (n - 1) / 2;
    let mut best: Option<i64> = None;
    for i in lo..=hi {
        if sig[i as usize] == 0 {
            let dist = (i - center).abs();
            if best.is_none_or(|b| dist < (b - center).abs()) {
                best = Some(i);
            }
        }
    }
    best
}

/// Index of the strongest sign change of the discrete Laplacian
/// `Δ_i = s[i-1] - 2 s[i] + s[i+1]`, respecting min_block margins.
///
/// The Laplacian is evaluated on the fly from a three-entry signature
/// window — no per-candidate `Vec` (this runs once per axis per split
/// candidate in the clustering recursion).
fn best_inflection(sig: &[u32], min_block: i64) -> Option<i64> {
    let n = sig.len() as i64;
    if n < 4 {
        return None;
    }
    // Boundary entries read as 0, exactly like the materialized array.
    let lap = |i: i64| -> i64 {
        if i <= 0 || i >= n - 1 {
            0
        } else {
            sig[(i - 1) as usize] as i64 - 2 * sig[i as usize] as i64 + sig[(i + 1) as usize] as i64
        }
    };
    let lo = (min_block - 1).max(1);
    let hi = (n - 1 - min_block).min(n - 3);
    let mut best: Option<(i64, i64)> = None; // (|jump|, index)
    let mut a = lap(lo);
    for i in lo..=hi {
        let b = lap(i + 1);
        if a.signum() != b.signum() && (a != 0 || b != 0) {
            let jump = (a - b).abs();
            if best.is_none_or(|(bj, _)| jump > bj) {
                best = Some((jump, i));
            }
        }
        a = b;
    }
    best.map(|(_, i)| i)
}

/// Grow `bbox` to at least `min_block` per axis, staying inside `window`
/// (which is guaranteed to be at least `min_block` wide per axis by the
/// split-margin rule).
fn expand_to_min<const D: usize>(bbox: AABox<D>, min_block: i64, window: &AABox<D>) -> AABox<D> {
    let mut lo = bbox.lo();
    let mut hi = bbox.hi();
    for axis in Axis::all::<D>() {
        let mut deficit = min_block - (hi.get(axis) - lo.get(axis) + 1);
        if deficit <= 0 {
            continue;
        }
        // Prefer growing toward hi, then toward lo.
        let room_hi = window.hi().get(axis) - hi.get(axis);
        let add_hi = deficit.min(room_hi);
        hi = hi.with(axis, hi.get(axis) + add_hi);
        deficit -= add_hi;
        if deficit > 0 {
            let room_lo = lo.get(axis) - window.lo().get(axis);
            let add_lo = deficit.min(room_lo);
            lo = lo.with(axis, lo.get(axis) - add_lo);
        }
    }
    AABox::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Point2, Point3, Rect2};

    fn opts() -> ClusterOptions {
        ClusterOptions::default()
    }

    /// Every flagged cell is inside some box; boxes are disjoint, within
    /// the domain, and respect min_block.
    fn check_valid<const D: usize>(flags: &FlagField<D>, boxes: &[AABox<D>], o: &ClusterOptions) {
        for (i, b) in boxes.iter().enumerate() {
            assert!(flags.domain().contains_rect(b), "{b:?} outside domain");
            assert!(
                b.extent().coords().iter().all(|&e| e >= o.min_block),
                "{b:?} below min block"
            );
            for c in &boxes[i + 1..] {
                assert!(!b.intersects(c), "{b:?} overlaps {c:?}");
            }
        }
        for p in flags.domain().iter_cells() {
            if flags.is_set(p) {
                assert!(
                    boxes.iter().any(|b| b.contains_point(p)),
                    "flag at {p:?} uncovered"
                );
            }
        }
    }

    #[test]
    fn empty_flags_no_boxes() {
        let flags = FlagField::new(Rect2::from_extents(16, 16));
        assert!(cluster_flags(&flags, &opts()).is_empty());
    }

    #[test]
    fn single_dense_block_gets_one_box() {
        let flags = FlagField::from_fn(Rect2::from_extents(32, 32), |p| {
            (4..=9).contains(&p.x) && (4..=9).contains(&p.y)
        });
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes, vec![Rect2::from_coords(4, 4, 9, 9)]);
    }

    #[test]
    fn two_separated_blobs_split_at_hole() {
        let flags = FlagField::from_fn(Rect2::from_extents(64, 16), |p| {
            ((2..=7).contains(&p.x) || (40..=47).contains(&p.x)) && (2..=9).contains(&p.y)
        });
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes.len(), 2);
        check_valid(&flags, &boxes, &opts());
        // Each box should be tight around its blob.
        let total: u64 = boxes.iter().map(AABox::cells).sum();
        assert_eq!(total, flags.count());
    }

    #[test]
    fn diagonal_band_is_split_for_efficiency() {
        // A thin diagonal band has very low bbox efficiency; BR must split
        // it into several boxes with decent efficiency.
        let flags = FlagField::from_fn(Rect2::from_extents(64, 64), |p| (p.x - p.y).abs() <= 1);
        let o = ClusterOptions {
            min_efficiency: 0.7,
            ..opts()
        };
        let boxes = cluster_flags(&flags, &o);
        check_valid(&flags, &boxes, &o);
        assert!(boxes.len() > 2, "expected multiple boxes, got {boxes:?}");
        let covered: u64 = boxes.iter().map(AABox::cells).sum();
        let eff = flags.count() as f64 / covered as f64;
        assert!(eff > 0.3, "overall efficiency too low: {eff}");
    }

    #[test]
    fn single_flag_expands_to_min_block() {
        let mut flags = FlagField::new(Rect2::from_extents(16, 16));
        flags.set(Point2::new(5, 5));
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes.len(), 1);
        assert!(boxes[0].extent().x >= 2 && boxes[0].extent().y >= 2);
        assert!(boxes[0].contains_point(Point2::new(5, 5)));
    }

    #[test]
    fn flag_at_domain_corner_expands_inward() {
        let mut flags = FlagField::new(Rect2::from_extents(16, 16));
        flags.set(Point2::new(15, 15));
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes.len(), 1);
        check_valid(&flags, &boxes, &opts());
    }

    #[test]
    fn ring_flags_covered_efficiently() {
        // A ring (wave front): the classic BR showcase.
        let flags = FlagField::from_fn(Rect2::from_extents(64, 64), |p| {
            let dx = p.x as f64 - 31.5;
            let dy = p.y as f64 - 31.5;
            let r = (dx * dx + dy * dy).sqrt();
            (20.0..=23.0).contains(&r)
        });
        let boxes = cluster_flags(&flags, &opts());
        check_valid(&flags, &boxes, &opts());
        let covered: u64 = boxes.iter().map(AABox::cells).sum();
        // The union of boxes should be far smaller than the bounding box
        // of the ring (47x47) — that is the whole point of clustering.
        assert!(covered < 47 * 47 / 2, "covered {covered} cells");
    }

    #[test]
    fn max_boxes_is_respected() {
        // Scattered random-ish flags with a tiny budget.
        let flags = FlagField::from_fn(Rect2::from_extents(64, 64), |p| {
            (p.x * 7 + p.y * 13) % 17 == 0
        });
        let o = ClusterOptions {
            max_boxes: 4,
            ..opts()
        };
        let boxes = cluster_flags(&flags, &o);
        assert!(boxes.len() <= 4 + 1);
        check_valid(&flags, &boxes, &o);
    }

    #[test]
    fn full_domain_flagged_gives_domain_box() {
        let flags = FlagField::from_fn(Rect2::from_extents(24, 24), |_| true);
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes, vec![Rect2::from_extents(24, 24)]);
    }

    #[test]
    fn deterministic_output() {
        let flags = FlagField::from_fn(Rect2::from_extents(48, 48), |p| {
            (p.x / 5 + p.y / 7) % 3 == 0
        });
        let a = cluster_flags(&flags, &opts());
        let b = cluster_flags(&flags, &opts());
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh() {
        // One scratch threaded through dissimilar fields (different
        // domain sizes, densities, dimensions of recursion) must give
        // exactly the fresh-allocation result every time.
        let mut scratch = ClusterScratch::default();
        let fields = [
            FlagField::from_fn(Rect2::from_extents(64, 64), |p| (p.x - p.y).abs() <= 1),
            FlagField::from_fn(Rect2::from_extents(48, 16), |p| {
                (p.x * 7 + p.y * 13) % 17 == 0
            }),
            FlagField::new(Rect2::from_extents(8, 8)),
            FlagField::from_fn(Rect2::from_extents(24, 24), |_| true),
        ];
        for flags in &fields {
            let fresh = cluster_flags(flags, &opts());
            let reused = cluster_flags_with(flags, &opts(), &mut scratch);
            assert_eq!(fresh, reused);
        }
        // After non-trivial fields, every internal buffer (including the
        // accepted-box output arena) retains capacity for the next call.
        assert!(scratch.is_warm());
        // 3-D through the same (dimension-tagged) scratch type.
        let mut scratch3 = ClusterScratch::default();
        let f3 = FlagField::from_fn(Box3::from_extents(16, 16, 16), |p| {
            (3..=8).contains(&p.x) && p.y >= 4 && p.z <= 10
        });
        for _ in 0..2 {
            assert_eq!(
                cluster_flags_with(&f3, &opts(), &mut scratch3),
                cluster_flags(&f3, &opts())
            );
        }
    }

    #[test]
    fn three_d_sphere_shell_clusters_validly() {
        // A spherical shell — the 3-D analogue of the ring showcase.
        let flags = FlagField::from_fn(Box3::from_extents(24, 24, 24), |p| {
            let dx = p.x as f64 - 11.5;
            let dy = p.y as f64 - 11.5;
            let dz = p.z as f64 - 11.5;
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            (7.0..=9.0).contains(&r)
        });
        let boxes = cluster_flags(&flags, &opts());
        assert!(!boxes.is_empty());
        check_valid(&flags, &boxes, &opts());
        let covered: u64 = boxes.iter().map(AABox::cells).sum();
        // Clustering must beat the single bounding box by a wide margin.
        assert!(covered < 19 * 19 * 19 / 2, "covered {covered} cells");
    }

    #[test]
    fn three_d_dense_block_gets_one_box() {
        let flags = FlagField::from_fn(Box3::from_extents(16, 16, 16), |p| {
            (3..=8).contains(&p.x) && (4..=9).contains(&p.y) && (5..=10).contains(&p.z)
        });
        let boxes = cluster_flags(&flags, &opts());
        assert_eq!(boxes, vec![Box3::from_coords(3, 4, 5, 8, 9, 10)]);
        let mut single = FlagField::new(Box3::from_extents(16, 16, 16));
        single.set(Point3::new(15, 0, 7));
        let boxes = cluster_flags(&single, &opts());
        assert_eq!(boxes.len(), 1);
        check_valid(&single, &boxes, &opts());
    }
}
