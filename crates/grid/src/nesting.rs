//! Proper-nesting enforcement between consecutive levels, generic over
//! the dimension.
//!
//! Berger–Colella SAMR requires every level-`l+1` patch to be contained in
//! the refined interior of level `l` (with a buffer of coarse cells), so
//! that inter-level interpolation stencils never reach outside the parent
//! level. The paper's hierarchies obey this; the trace generators enforce
//! it here after clustering.

use crate::hierarchy::GridHierarchy;
use samr_geom::{boxops, AABox, Region};

/// Shrink `region` by `buffer` cells away from its *internal* boundaries:
/// boundaries shared with the physical `domain` wall are left alone.
pub fn shrink_within<const D: usize>(
    region: &Region<D>,
    domain: &AABox<D>,
    buffer: i64,
) -> Region<D> {
    if buffer == 0 || region.is_empty() {
        return region.clone();
    }
    // Complement of the region inside the domain, grown by the buffer;
    // subtracting it shaves `buffer` cells off internal boundaries only,
    // because the complement stops at the physical boundary.
    let complement = Region::from_rect(*domain).subtract(region);
    let grown: Vec<AABox<D>> = complement.boxes().iter().map(|b| b.grow(buffer)).collect();
    region.subtract_boxes(&grown)
}

/// The region of level-`(l+1)` index space where new fine patches may live:
/// the refined image of level `l` shrunk by `buffer` fine cells away from
/// internal coarse-fine boundaries. Physical domain boundaries are *not*
/// shrunk (features touching the wall may stay refined to the wall).
pub fn nesting_region<const D: usize>(h: &GridHierarchy<D>, l: usize, buffer: i64) -> Region<D> {
    assert!(l < h.levels.len());
    let refined = h.refined_region(l);
    shrink_within(&refined, &h.domain_at_level(l + 1), buffer)
}

/// Clip candidate patch boxes to a nesting region, keeping only pieces that
/// satisfy the minimum block dimension.
///
/// Clipping a box against a union of boxes can produce slivers thinner than
/// `min_block`; such slivers are merged back where an exact merge exists
/// and dropped otherwise (dropping loses a few flagged cells at the nesting
/// boundary, which the flag buffer compensates for — the same policy real
/// SAMR grid generators use).
pub fn clip_to_nesting<const D: usize>(
    rects: &[AABox<D>],
    nest: &Region<D>,
    min_block: i64,
) -> Vec<AABox<D>> {
    let mut pieces: Vec<AABox<D>> = Vec::new();
    for r in rects {
        pieces.extend(nest.intersect_rect(r).boxes().iter().copied());
    }
    let pieces = boxops::disjointify(&pieces);
    let merged = boxops::coalesce(&pieces);
    merged
        .into_iter()
        .filter(|b| b.extent().coords().iter().all(|&e| e >= min_block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Point2, Point3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h_two_level() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        )
    }

    #[test]
    fn nesting_region_without_buffer_is_refined_region() {
        let h = h_two_level();
        let n = nesting_region(&h, 1, 0);
        assert!(n.same_cells(&h.refined_region(1)));
        assert_eq!(n.cells(), 16 * 16);
    }

    #[test]
    fn buffer_shrinks_interior_boundaries() {
        let h = h_two_level();
        // Level-1 patch refined: [8..23]^2 in level-2 index space; its
        // boundary is interior (patch does not touch the domain wall), so a
        // buffer of 2 shrinks all four sides.
        let n = nesting_region(&h, 1, 2);
        assert_eq!(n.cells(), 12 * 12);
        assert!(n.contains_point(Point2::new(10, 10)));
        assert!(!n.contains_point(Point2::new(8, 8)));
    }

    #[test]
    fn buffer_does_not_shrink_physical_boundary() {
        // Level-1 patch touching the domain edge: x in [0..7], y in [4..11]
        // (level-1 domain is [0..31]^2 for a 16x16 base).
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(0, 4, 7, 11)]],
        );
        let n = nesting_region(&h, 1, 2);
        // Refined: [0..15]x[8..23]. Buffered on the three interior sides
        // only: x keeps 0 (physical wall), loses 2 at x=15; y loses 2 both
        // sides.
        assert!(n.contains_point(Point2::new(0, 12)));
        assert!(!n.contains_point(Point2::new(15, 12)));
        assert!(!n.contains_point(Point2::new(5, 8)));
        assert_eq!(n.cells(), 14 * 12);
    }

    #[test]
    fn clip_keeps_interior_boxes() {
        let nest = Region::from_rect(r(0, 0, 31, 31));
        let out = clip_to_nesting(&[r(4, 4, 9, 9)], &nest, 2);
        assert_eq!(out, vec![r(4, 4, 9, 9)]);
    }

    #[test]
    fn clip_cuts_and_drops_slivers() {
        let nest = Region::from_rect(r(0, 0, 10, 10));
        // The candidate pokes out; the clipped part [9..10]x[0..10] is kept
        // (width 2 >= min_block).
        let out = clip_to_nesting(&[r(9, 0, 20, 10)], &nest, 2);
        assert_eq!(out, vec![r(9, 0, 10, 10)]);
        // With a 1-wide overhang the piece [10..10] is a sliver: dropped.
        let out = clip_to_nesting(&[r(10, 0, 20, 10)], &nest, 2);
        assert!(out.is_empty());
    }

    #[test]
    fn shrink_within_respects_physical_walls() {
        let domain = r(0, 0, 15, 15);
        // Region occupying the left half: its right edge is internal, the
        // other three edges are physical walls.
        let reg = Region::from_rect(r(0, 0, 7, 15));
        let s = shrink_within(&reg, &domain, 2);
        assert_eq!(s.cells(), 6 * 16);
        assert!(s.contains_point(Point2::new(0, 0)));
        assert!(!s.contains_point(Point2::new(7, 8)));
        // Buffer 0 is the identity.
        assert!(shrink_within(&reg, &domain, 0).same_cells(&reg));
        // Empty region stays empty.
        assert!(shrink_within(&Region::empty(), &domain, 2).is_empty());
    }

    #[test]
    fn clip_output_is_disjoint() {
        let nest = Region::from_boxes(&[r(0, 0, 15, 7), r(0, 0, 7, 15)]);
        let out = clip_to_nesting(&[r(0, 0, 15, 15), r(4, 4, 11, 11)], &nest, 2);
        for (i, a) in out.iter().enumerate() {
            for b in &out[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
        // All pieces are inside the nesting region.
        for b in &out {
            assert_eq!(nest.intersect_rect(b).cells(), b.cells());
        }
    }

    #[test]
    fn three_d_nesting_shrinks_interior_faces_only() {
        // Level-1 patch touching the z=0 wall of a 16^3 base.
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[vec![], vec![Box3::from_coords(4, 4, 0, 11, 11, 7)]],
        );
        let n = nesting_region(&h, 1, 2);
        // Refined image: [8..23]x[8..23]x[0..15]; z=0 is a physical wall
        // so only five faces shrink: 12 x 12 x 14 cells remain.
        assert_eq!(n.cells(), 12 * 12 * 14);
        assert!(n.contains_point(Point3::new(10, 10, 0)));
        assert!(!n.contains_point(Point3::new(10, 10, 15)));
        assert!(!n.contains_point(Point3::new(8, 10, 5)));
    }
}
