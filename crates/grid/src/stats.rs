//! Hierarchy statistics and refinement-pattern descriptors, generic over
//! the dimension.
//!
//! Two consumers:
//! - the paper's model (`samr-core`) needs `|H|`, the workload `W`, and
//!   per-level surface measures;
//! - the octant-approach baseline classifier (§3) needs *refinement
//!   pattern* (localized ↔ scattered) and *activity dynamics* descriptors.

use crate::hierarchy::GridHierarchy;
use samr_geom::{boxops, AABox};
use serde::{Deserialize, Serialize};

/// Per-level and aggregate statistics of one hierarchy snapshot.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Grid points per level.
    pub cells_per_level: Vec<u64>,
    /// Patch count per level.
    pub patches_per_level: Vec<usize>,
    /// Boundary-ring cells per level (worst-case ghost surface).
    pub boundary_per_level: Vec<u64>,
    /// Total grid points `|H|`.
    pub total_points: u64,
    /// Workload `W = Σ_l N_l·r^l` (cell updates per coarse step).
    pub workload: u64,
    /// Fraction of the base domain covered by refinement.
    pub refined_fraction: f64,
    /// Localization of the refinement pattern in `[0, 1]`:
    /// 1 = all refinement concentrated in one compact blob, 0 = refinement
    /// spread evenly over the whole domain. Defined as
    /// `1 − (refined bounding-box volume / domain volume)` blended with the
    /// blob compactness (refined cells / refined bounding-box volume).
    pub localization: f64,
    /// Number of disconnected refined clusters at level 1 (patch adjacency
    /// components) — the "scattered" count of the octant approach.
    pub cluster_count: usize,
}

impl HierarchyStats {
    /// Compute all statistics for a hierarchy.
    pub fn compute<const D: usize>(h: &GridHierarchy<D>) -> Self {
        let cells_per_level: Vec<u64> = h.levels.iter().map(|l| l.cells()).collect();
        let patches_per_level: Vec<usize> = h.levels.iter().map(|l| l.patch_count()).collect();
        let boundary_per_level: Vec<u64> = h.levels.iter().map(|l| l.boundary_cells()).collect();
        let total_points = cells_per_level.iter().sum();
        let workload = h.workload();
        let refined_fraction = h.refined_fraction();

        let (localization, cluster_count) = if h.levels.len() < 2 {
            (1.0, 0)
        } else {
            let rects = h.levels[1].rects();
            let refined_cells = boxops::total_cells(&rects);
            let bbox = rects
                .iter()
                .skip(1)
                .fold(rects[0], |acc, b| acc.bounding_union(b));
            let domain1 = h.domain_at_level(1);
            let spread = bbox.cells() as f64 / domain1.cells() as f64;
            let compact = refined_cells as f64 / bbox.cells() as f64;
            // Compact blob in a small part of the domain → localized (≈1);
            // sparse patches spanning the domain → scattered (≈0).
            let localization = (1.0 - spread) * compact.sqrt() + compact * spread;
            (localization.clamp(0.0, 1.0), connected_components(&rects))
        };

        Self {
            cells_per_level,
            patches_per_level,
            boundary_per_level,
            total_points,
            workload,
            refined_fraction,
            localization,
            cluster_count,
        }
    }

    /// Number of levels present.
    pub fn depth(&self) -> usize {
        self.cells_per_level.len()
    }

    /// Surface-to-volume ratio of a level (0 when the level is absent or
    /// empty). The ArMADA framework used exactly this box operation for its
    /// octant classification.
    pub fn surface_to_volume(&self, level: usize) -> f64 {
        match (
            self.boundary_per_level.get(level),
            self.cells_per_level.get(level),
        ) {
            (Some(&b), Some(&c)) if c > 0 => b as f64 / c as f64,
            _ => 0.0,
        }
    }
}

/// `true` if the boxes share a face (overlap, or touch across exactly one
/// axis while overlapping on all others). Corner- and edge-only contact
/// does not connect — the same rule the historical 2-D
/// grow-and-intersect test implemented.
fn face_adjacent<const D: usize>(a: &AABox<D>, b: &AABox<D>) -> bool {
    let mut touch_axes = 0usize;
    for i in 0..D {
        let lo = a.lo()[i].max(b.lo()[i]);
        let hi = a.hi()[i].min(b.hi()[i]);
        if lo <= hi {
            continue; // overlapping interval on this axis
        }
        if lo == hi + 1 {
            touch_axes += 1; // exactly adjacent on this axis
        } else {
            return false; // a gap: not connected
        }
    }
    touch_axes <= 1
}

/// Label each box with its connected component under face adjacency (boxes
/// touching along a face are connected; corner-only contact is not).
/// Labels are dense, deterministic (smallest box index in the component
/// determines ordering) and returned per input box.
pub fn component_labels<const D: usize>(rects: &[AABox<D>]) -> Vec<usize> {
    let n = rects.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if face_adjacent(&rects[i], &rects[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    // Densify root ids into 0..k in first-appearance order.
    let mut next = 0usize;
    let mut map: Vec<(usize, usize)> = Vec::new();
    (0..n)
        .map(|i| {
            let root = find(&mut parent, i);
            match map.iter().find(|(r, _)| *r == root) {
                Some((_, id)) => *id,
                None => {
                    map.push((root, next));
                    next += 1;
                    next - 1
                }
            }
        })
        .collect()
}

/// Connected components of a box set under face adjacency (boxes touching
/// along a face are connected).
pub fn connected_components<const D: usize>(rects: &[AABox<D>]) -> usize {
    if rects.is_empty() {
        return 0;
    }
    component_labels(rects).iter().max().map_or(0, |m| m + 1)
}

/// Activity-dynamics descriptor between two consecutive snapshots (octant
/// dimension "activity dynamics", §3.3): relative change in grid size and
/// in refined structure.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ActivityDynamics {
    /// `| |H_t| − |H_{t-1}| | / max(|H_t|, |H_{t-1}|)` in `[0, 1]`.
    pub size_change: f64,
    /// Fraction of the union of refined regions (level ≥ 1, projected to
    /// the base grid) that changed between the snapshots, in `[0, 1]`.
    pub structure_change: f64,
}

impl ActivityDynamics {
    /// Compute the descriptor for a consecutive pair.
    pub fn between<const D: usize>(prev: &GridHierarchy<D>, cur: &GridHierarchy<D>) -> Self {
        let (a, b) = (prev.total_points(), cur.total_points());
        let size_change = if a.max(b) == 0 {
            0.0
        } else {
            (a.abs_diff(b)) as f64 / a.max(b) as f64
        };
        let (ra, rb) = (projected_refined(prev), projected_refined(cur));
        let union = ra.union(&rb);
        let structure_change = if union.is_empty() {
            0.0
        } else {
            let inter = ra.intersect(&rb);
            1.0 - inter.cells() as f64 / union.cells() as f64
        };
        Self {
            size_change,
            structure_change,
        }
    }
}

fn projected_refined<const D: usize>(h: &GridHierarchy<D>) -> samr_geom::Region<D> {
    if h.levels.len() < 2 {
        return samr_geom::Region::empty();
    }
    h.levels[1].region().coarsen(h.ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::GridHierarchy;
    use samr_geom::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h(levels: &[Vec<Rect2>]) -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, levels)
    }

    #[test]
    fn base_only_stats() {
        let s = HierarchyStats::compute(&h(&[vec![]]));
        assert_eq!(s.total_points, 1024);
        assert_eq!(s.workload, 1024);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.refined_fraction, 0.0);
        assert_eq!(s.cluster_count, 0);
    }

    #[test]
    fn workload_weights_levels() {
        let s = HierarchyStats::compute(&h(&[vec![], vec![r(0, 0, 15, 15)]]));
        assert_eq!(s.cells_per_level, vec![1024, 256]);
        assert_eq!(s.workload, 1024 + 256 * 2);
    }

    #[test]
    fn localized_beats_scattered() {
        // One compact blob vs four spread-out blobs of the same total area.
        let local = HierarchyStats::compute(&h(&[vec![], vec![r(10, 10, 17, 17)]]));
        let scattered = HierarchyStats::compute(&h(&[
            vec![],
            vec![
                r(0, 0, 3, 3),
                r(56, 0, 59, 3),
                r(0, 56, 3, 59),
                r(56, 56, 59, 59),
            ],
        ]));
        assert!(local.localization > scattered.localization);
        assert_eq!(local.cluster_count, 1);
        assert_eq!(scattered.cluster_count, 4);
    }

    #[test]
    fn surface_to_volume() {
        let s = HierarchyStats::compute(&h(&[vec![], vec![r(0, 0, 7, 7)]]));
        // 8x8 patch: boundary 28, cells 64.
        assert!((s.surface_to_volume(1) - 28.0 / 64.0).abs() < 1e-12);
        assert_eq!(s.surface_to_volume(7), 0.0);
    }

    #[test]
    fn components_faces_connect_corners_do_not() {
        assert_eq!(connected_components::<2>(&[]), 0);
        assert_eq!(connected_components(&[r(0, 0, 1, 1)]), 1);
        // Face-adjacent.
        assert_eq!(connected_components(&[r(0, 0, 1, 1), r(2, 0, 3, 1)]), 1);
        // Corner contact only.
        assert_eq!(connected_components(&[r(0, 0, 1, 1), r(2, 2, 3, 3)]), 2);
        // Separated.
        assert_eq!(connected_components(&[r(0, 0, 1, 1), r(5, 0, 6, 1)]), 2);
        // Chain a-b-c counts once.
        assert_eq!(
            connected_components(&[r(0, 0, 1, 1), r(2, 0, 3, 1), r(4, 0, 5, 1)]),
            1
        );
    }

    #[test]
    fn three_d_components_require_face_contact() {
        let a = Box3::from_coords(0, 0, 0, 1, 1, 1);
        let face = Box3::from_coords(2, 0, 0, 3, 1, 1);
        let edge = Box3::from_coords(2, 2, 0, 3, 3, 1);
        let corner = Box3::from_coords(2, 2, 2, 3, 3, 3);
        assert_eq!(connected_components(&[a, face]), 1);
        assert_eq!(connected_components(&[a, edge]), 2); // edge contact only
        assert_eq!(connected_components(&[a, corner]), 2);
    }

    #[test]
    fn activity_dynamics_zero_for_identical() {
        let a = h(&[vec![], vec![r(4, 4, 11, 11)]]);
        let d = ActivityDynamics::between(&a, &a.clone());
        assert_eq!(d.size_change, 0.0);
        assert_eq!(d.structure_change, 0.0);
    }

    #[test]
    fn activity_dynamics_detects_motion() {
        let a = h(&[vec![], vec![r(4, 4, 11, 11)]]);
        let b = h(&[vec![], vec![r(12, 12, 19, 19)]]);
        let d = ActivityDynamics::between(&a, &b);
        assert_eq!(d.size_change, 0.0); // same size...
        assert!(d.structure_change > 0.9); // ...completely different place
    }

    #[test]
    fn activity_dynamics_detects_growth() {
        let a = h(&[vec![], vec![r(4, 4, 11, 11)]]);
        let b = h(&[vec![], vec![r(4, 4, 19, 19)]]);
        let d = ActivityDynamics::between(&a, &b);
        assert!(d.size_change > 0.0);
        assert!(d.structure_change > 0.0 && d.structure_change < 1.0);
    }
}
