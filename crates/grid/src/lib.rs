//! # samr-grid — SAMR grid hierarchies
//!
//! The dynamic adaptive grid hierarchy is the central object of the paper:
//! the model's penalties are functions of nothing but the *sequence of
//! hierarchies* `H_0, H_1, …` that an application produces as it adapts.
//! This crate provides:
//!
//! - [`Patch`], [`Level`], [`GridHierarchy`]: the Berger–Colella structured
//!   hierarchy — a coarse base grid (level 0) with factor-`r` refined patch
//!   levels overlaid on flagged regions;
//! - [`FlagField`]: refinement flag masks produced by the application error
//!   estimators;
//! - [`cluster`]: the Berger–Rigoutsos point-clustering algorithm that turns
//!   flags into patch boxes (signature trims, hole and inflection splits,
//!   efficiency threshold, minimum block granularity);
//! - [`nesting`]: proper-nesting enforcement between consecutive levels;
//! - [`stats`]: hierarchy statistics — grid points `|H|`, the workload
//!   `W = Σ_l N_l·r^l` that normalizes the paper's grid-relative
//!   communication metric, surface/volume measures, and refinement-pattern
//!   descriptors used by the octant-approach baseline classifier.

#![warn(missing_docs)]

pub mod cluster;
pub mod flags;
pub mod hierarchy;
pub mod nesting;
pub mod stats;

pub use cluster::{cluster_flags, cluster_flags_with, ClusterOptions, ClusterScratch};
pub use flags::FlagField;
pub use hierarchy::{GridHierarchy, HierarchyError, Level, Patch, PatchId};
pub use stats::HierarchyStats;
