//! Refinement flag fields, generic over the dimension.

use samr_geom::dense::Grid;
use samr_geom::{AABox, Axis, Point};

/// A boolean mask over a box domain marking cells that need refinement.
///
/// Application error estimators produce one `FlagField` per level at every
/// regrid; the Berger–Rigoutsos clusterer turns it into patch boxes. The
/// field also supports the standard *flag buffering* step (dilating the
/// flagged set) that keeps features inside their refined patches until the
/// next regrid — the paper's applications regrid every 4 steps per level,
/// so features can drift a few cells between regrids.
#[derive(Clone, PartialEq, Debug)]
pub struct FlagField<const D: usize> {
    grid: Grid<bool, D>,
}

impl<const D: usize> FlagField<D> {
    /// An all-clear flag field over `domain`.
    pub fn new(domain: AABox<D>) -> Self {
        Self {
            grid: Grid::new(domain, false),
        }
    }

    /// Build from a predicate evaluated at every cell.
    pub fn from_fn(domain: AABox<D>, f: impl FnMut(Point<D>) -> bool) -> Self {
        Self {
            grid: Grid::from_fn(domain, f),
        }
    }

    /// The domain of the mask.
    pub fn domain(&self) -> AABox<D> {
        self.grid.domain()
    }

    /// Is the cell flagged? Cells outside the domain read as unflagged.
    #[inline]
    pub fn is_set(&self, p: Point<D>) -> bool {
        self.grid.domain().contains_point(p) && *self.grid.get(p)
    }

    /// Flag one cell (ignored when outside the domain).
    #[inline]
    pub fn set(&mut self, p: Point<D>) {
        if self.grid.domain().contains_point(p) {
            self.grid.set(p, true);
        }
    }

    /// Flag every cell of `rect` (clipped to the domain).
    pub fn set_rect(&mut self, rect: &AABox<D>) {
        if let Some(w) = self.grid.domain().intersect(rect) {
            self.grid.fill_in(&w, true);
        }
    }

    /// Number of flagged cells.
    pub fn count(&self) -> u64 {
        self.grid.count_true()
    }

    /// Number of flagged cells inside `window`.
    pub fn count_in(&self, window: &AABox<D>) -> u64 {
        self.grid.count_true_in(window)
    }

    /// `true` if no cell is flagged.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Tightest box containing all flagged cells, or `None` if empty.
    pub fn bounding_box(&self) -> Option<AABox<D>> {
        let mut lo = Point::<D>::splat(i64::MAX);
        let mut hi = Point::<D>::splat(i64::MIN);
        let mut any = false;
        self.grid.for_each_in(&self.grid.domain(), |p, &v| {
            if v {
                lo = lo.min(p);
                hi = hi.max(p);
                any = true;
            }
        });
        if any {
            Some(AABox::new(lo, hi))
        } else {
            None
        }
    }

    /// Dilate the flagged set by `buffer` cells in the Chebyshev metric
    /// (the standard SAMR flag-buffer step), clipped to the domain.
    pub fn buffer(&self, buffer: i64) -> FlagField<D> {
        assert!(buffer >= 0);
        if buffer == 0 {
            return self.clone();
        }
        let d = self.grid.domain();
        let mut out = FlagField::new(d);
        self.grid.for_each_in(&d, |p, &v| {
            if v {
                out.set_rect(&AABox::cell(p).grow(buffer));
            }
        });
        out
    }

    /// Signature along `axis` within `window`: flagged-cell count for
    /// each coordinate slice perpendicular to `axis`. Clipped to the
    /// domain; `window` must intersect the domain. `signature(Axis::X, w)`
    /// is the historical column signature, `signature(Axis::Y, w)` the
    /// row signature.
    pub fn signature(&self, axis: Axis, window: &AABox<D>) -> Vec<u32> {
        let w = self
            .grid
            .domain()
            .intersect(window)
            .expect("signature window outside flag domain");
        let a = axis.index();
        let mut sig = vec![0u32; w.extent()[a] as usize];
        if a == 0 {
            // The signature axis is the contiguous axis: accumulate each
            // run element-wise.
            for (_, run) in self.grid.runs_in(&w) {
                for (i, &v) in run.iter().enumerate() {
                    sig[i] += u32::from(v);
                }
            }
        } else {
            // Every cell of a run shares its coordinate on `axis`: one
            // popcount per run.
            for (row, run) in self.grid.runs_in(&w) {
                sig[(row[a] - w.lo()[a]) as usize] += run.iter().filter(|&&b| b).count() as u32;
            }
        }
        sig
    }
}

impl FlagField<2> {
    /// Column signature within `window`: flagged-cell count for each `x`.
    pub fn signature_x(&self, window: &AABox<2>) -> Vec<u32> {
        self.signature(Axis::X, window)
    }

    /// Row signature within `window`: flagged-cell count for each `y`.
    pub fn signature_y(&self, window: &AABox<2>) -> Vec<u32> {
        self.signature(Axis::Y, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Point2, Point3, Rect2};

    fn d() -> Rect2 {
        Rect2::from_extents(8, 8)
    }

    #[test]
    fn set_and_query() {
        let mut f = FlagField::new(d());
        assert!(f.is_empty());
        f.set(Point2::new(3, 4));
        assert!(f.is_set(Point2::new(3, 4)));
        assert!(!f.is_set(Point2::new(4, 3)));
        assert!(!f.is_set(Point2::new(100, 100))); // outside: unflagged
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn set_outside_is_ignored() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(-1, 0));
        assert!(f.is_empty());
    }

    #[test]
    fn set_rect_clips() {
        let mut f = FlagField::new(d());
        f.set_rect(&Rect2::from_coords(6, 6, 10, 10));
        assert_eq!(f.count(), 4); // only [6..7]^2 is inside
    }

    #[test]
    fn bounding_box_tightens() {
        let mut f = FlagField::new(d());
        assert_eq!(f.bounding_box(), None);
        f.set(Point2::new(2, 3));
        f.set(Point2::new(5, 6));
        assert_eq!(f.bounding_box(), Some(Rect2::from_coords(2, 3, 5, 6)));
    }

    #[test]
    fn buffer_dilates_chebyshev() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(4, 4));
        let b = f.buffer(1);
        assert_eq!(b.count(), 9);
        assert!(b.is_set(Point2::new(3, 3)));
        assert!(b.is_set(Point2::new(5, 5)));
        assert!(!b.is_set(Point2::new(2, 4)));
        // Buffering at the domain edge clips.
        let mut e = FlagField::new(d());
        e.set(Point2::new(0, 0));
        assert_eq!(e.buffer(1).count(), 4);
    }

    #[test]
    fn buffer_zero_is_identity() {
        let f = FlagField::from_fn(d(), |p| p.x == p.y);
        assert_eq!(f.buffer(0), f);
    }

    #[test]
    fn signatures_count_rows_and_columns() {
        let f = FlagField::from_fn(d(), |p| p.x >= 2 && p.x <= 3 && p.y >= 1 && p.y <= 4);
        let w = Rect2::from_coords(0, 0, 7, 7);
        let sx = f.signature_x(&w);
        let sy = f.signature_y(&w);
        assert_eq!(sx, vec![0, 0, 4, 4, 0, 0, 0, 0]);
        assert_eq!(sy, vec![0, 2, 2, 2, 2, 0, 0, 0]);
        assert_eq!(sx.iter().map(|&v| v as u64).sum::<u64>(), f.count());
    }

    #[test]
    fn signatures_respect_window() {
        let f = FlagField::from_fn(d(), |_| true);
        let w = Rect2::from_coords(2, 3, 4, 5);
        assert_eq!(f.signature_x(&w), vec![3, 3, 3]);
        assert_eq!(f.signature_y(&w), vec![3, 3, 3]);
    }

    #[test]
    fn three_d_flags_and_signatures() {
        let dom = Box3::from_extents(6, 6, 6);
        let f = FlagField::from_fn(dom, |p| p.z == 2 && p.x >= 1 && p.x <= 3);
        assert_eq!(f.count(), 3 * 6);
        assert_eq!(f.bounding_box(), Some(Box3::from_coords(1, 0, 2, 3, 5, 2)));
        let sig_z = f.signature(Axis::Z, &dom);
        assert_eq!(sig_z, vec![0, 0, 18, 0, 0, 0]);
        let sig_x = f.signature(Axis::X, &dom);
        assert_eq!(sig_x, vec![0, 6, 6, 6, 0, 0]);
        let b = f.buffer(1);
        assert!(b.is_set(Point3::new(1, 0, 1)));
        assert!(b.is_set(Point3::new(4, 0, 3)));
        assert!(!b.is_set(Point3::new(5, 0, 0)));
    }
}
