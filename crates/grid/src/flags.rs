//! Refinement flag fields.

use samr_geom::{Grid2, Point2, Rect2};

/// A boolean mask over a box domain marking cells that need refinement.
///
/// Application error estimators produce one `FlagField` per level at every
/// regrid; the Berger–Rigoutsos clusterer turns it into patch boxes. The
/// field also supports the standard *flag buffering* step (dilating the
/// flagged set) that keeps features inside their refined patches until the
/// next regrid — the paper's applications regrid every 4 steps per level,
/// so features can drift a few cells between regrids.
#[derive(Clone, PartialEq, Debug)]
pub struct FlagField {
    grid: Grid2<bool>,
}

impl FlagField {
    /// An all-clear flag field over `domain`.
    pub fn new(domain: Rect2) -> Self {
        Self {
            grid: Grid2::new(domain, false),
        }
    }

    /// Build from a predicate evaluated at every cell.
    pub fn from_fn(domain: Rect2, f: impl FnMut(Point2) -> bool) -> Self {
        Self {
            grid: Grid2::from_fn(domain, f),
        }
    }

    /// The domain of the mask.
    pub fn domain(&self) -> Rect2 {
        self.grid.domain()
    }

    /// Is the cell flagged? Cells outside the domain read as unflagged.
    #[inline]
    pub fn is_set(&self, p: Point2) -> bool {
        self.grid.domain().contains_point(p) && *self.grid.get(p)
    }

    /// Flag one cell (ignored when outside the domain).
    #[inline]
    pub fn set(&mut self, p: Point2) {
        if self.grid.domain().contains_point(p) {
            self.grid.set(p, true);
        }
    }

    /// Flag every cell of `rect` (clipped to the domain).
    pub fn set_rect(&mut self, rect: &Rect2) {
        if let Some(w) = self.grid.domain().intersect(rect) {
            for y in w.lo().y..=w.hi().y {
                let dom = self.grid.domain();
                let row = self.grid.row_mut(y);
                let off = (w.lo().x - dom.lo().x) as usize;
                let len = w.extent().x as usize;
                for v in &mut row[off..off + len] {
                    *v = true;
                }
            }
        }
    }

    /// Number of flagged cells.
    pub fn count(&self) -> u64 {
        self.grid.count_true()
    }

    /// Number of flagged cells inside `window`.
    pub fn count_in(&self, window: &Rect2) -> u64 {
        self.grid.count_true_in(window)
    }

    /// `true` if no cell is flagged.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Tightest box containing all flagged cells, or `None` if empty.
    pub fn bounding_box(&self) -> Option<Rect2> {
        let d = self.grid.domain();
        let (mut xmin, mut xmax) = (i64::MAX, i64::MIN);
        let (mut ymin, mut ymax) = (i64::MAX, i64::MIN);
        for y in d.lo().y..=d.hi().y {
            let row = self.grid.row(y);
            for (i, &v) in row.iter().enumerate() {
                if v {
                    let x = d.lo().x + i as i64;
                    xmin = xmin.min(x);
                    xmax = xmax.max(x);
                    ymin = ymin.min(y);
                    ymax = ymax.max(y);
                }
            }
        }
        if xmin > xmax {
            None
        } else {
            Some(Rect2::from_coords(xmin, ymin, xmax, ymax))
        }
    }

    /// Dilate the flagged set by `buffer` cells in the Chebyshev metric
    /// (the standard SAMR flag-buffer step), clipped to the domain.
    pub fn buffer(&self, buffer: i64) -> FlagField {
        assert!(buffer >= 0);
        if buffer == 0 {
            return self.clone();
        }
        let d = self.grid.domain();
        let mut out = FlagField::new(d);
        for y in d.lo().y..=d.hi().y {
            let row = self.grid.row(y);
            for (i, &v) in row.iter().enumerate() {
                if v {
                    let x = d.lo().x + i as i64;
                    out.set_rect(&Rect2::cell(Point2::new(x, y)).grow(buffer));
                }
            }
        }
        out
    }

    /// Column signature within `window`: flagged-cell count for each `x`.
    /// Clipped to the domain; `window` must intersect the domain.
    pub fn signature_x(&self, window: &Rect2) -> Vec<u32> {
        let w = self
            .grid
            .domain()
            .intersect(window)
            .expect("signature window outside flag domain");
        let mut sig = vec![0u32; w.extent().x as usize];
        for y in w.lo().y..=w.hi().y {
            let row = self.grid.row(y);
            let off = (w.lo().x - self.grid.domain().lo().x) as usize;
            for (i, &v) in row[off..off + sig.len()].iter().enumerate() {
                sig[i] += u32::from(v);
            }
        }
        sig
    }

    /// Row signature within `window`: flagged-cell count for each `y`.
    pub fn signature_y(&self, window: &Rect2) -> Vec<u32> {
        let w = self
            .grid
            .domain()
            .intersect(window)
            .expect("signature window outside flag domain");
        let mut sig = vec![0u32; w.extent().y as usize];
        for (j, y) in (w.lo().y..=w.hi().y).enumerate() {
            let row = self.grid.row(y);
            let off = (w.lo().x - self.grid.domain().lo().x) as usize;
            let len = w.extent().x as usize;
            sig[j] = row[off..off + len].iter().map(|&v| u32::from(v)).sum();
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Rect2 {
        Rect2::from_extents(8, 8)
    }

    #[test]
    fn set_and_query() {
        let mut f = FlagField::new(d());
        assert!(f.is_empty());
        f.set(Point2::new(3, 4));
        assert!(f.is_set(Point2::new(3, 4)));
        assert!(!f.is_set(Point2::new(4, 3)));
        assert!(!f.is_set(Point2::new(100, 100))); // outside: unflagged
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn set_outside_is_ignored() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(-1, 0));
        assert!(f.is_empty());
    }

    #[test]
    fn set_rect_clips() {
        let mut f = FlagField::new(d());
        f.set_rect(&Rect2::from_coords(6, 6, 10, 10));
        assert_eq!(f.count(), 4); // only [6..7]^2 is inside
    }

    #[test]
    fn bounding_box_tightens() {
        let mut f = FlagField::new(d());
        assert_eq!(f.bounding_box(), None);
        f.set(Point2::new(2, 3));
        f.set(Point2::new(5, 6));
        assert_eq!(f.bounding_box(), Some(Rect2::from_coords(2, 3, 5, 6)));
    }

    #[test]
    fn buffer_dilates_chebyshev() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(4, 4));
        let b = f.buffer(1);
        assert_eq!(b.count(), 9);
        assert!(b.is_set(Point2::new(3, 3)));
        assert!(b.is_set(Point2::new(5, 5)));
        assert!(!b.is_set(Point2::new(2, 4)));
        // Buffering at the domain edge clips.
        let mut e = FlagField::new(d());
        e.set(Point2::new(0, 0));
        assert_eq!(e.buffer(1).count(), 4);
    }

    #[test]
    fn buffer_zero_is_identity() {
        let f = FlagField::from_fn(d(), |p| p.x == p.y);
        assert_eq!(f.buffer(0), f);
    }

    #[test]
    fn signatures_count_rows_and_columns() {
        let f = FlagField::from_fn(d(), |p| p.x >= 2 && p.x <= 3 && p.y >= 1 && p.y <= 4);
        let w = Rect2::from_coords(0, 0, 7, 7);
        let sx = f.signature_x(&w);
        let sy = f.signature_y(&w);
        assert_eq!(sx, vec![0, 0, 4, 4, 0, 0, 0, 0]);
        assert_eq!(sy, vec![0, 2, 2, 2, 2, 0, 0, 0]);
        assert_eq!(sx.iter().map(|&v| v as u64).sum::<u64>(), f.count());
    }

    #[test]
    fn signatures_respect_window() {
        let f = FlagField::from_fn(d(), |_| true);
        let w = Rect2::from_coords(2, 3, 4, 5);
        assert_eq!(f.signature_x(&w), vec![3, 3, 3]);
        assert_eq!(f.signature_y(&w), vec![3, 3, 3]);
    }
}
