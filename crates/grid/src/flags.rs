//! Refinement flag fields, generic over the dimension.

use samr_geom::dense::{accumulate_set, count_set, first_set, last_set, Grid};
use samr_geom::{AABox, Axis, Point};

/// A boolean mask over a box domain marking cells that need refinement.
///
/// Application error estimators produce one `FlagField` per level at every
/// regrid; the Berger–Rigoutsos clusterer turns it into patch boxes. The
/// field also supports the standard *flag buffering* step (dilating the
/// flagged set) that keeps features inside their refined patches until the
/// next regrid — the paper's applications regrid every 4 steps per level,
/// so features can drift a few cells between regrids.
///
/// The flagged-cell total is maintained incrementally by every mutator,
/// so [`FlagField::count`] — which the clusterer's efficiency test calls
/// once per candidate box — is O(1) instead of a full-domain scan; debug
/// builds assert the counter against the scan. The scans themselves
/// (window counts, signatures, bounding box) walk contiguous runs eight
/// cells per step (see [`samr_geom::dense::count_set`]).
#[derive(Clone, PartialEq, Debug)]
pub struct FlagField<const D: usize> {
    grid: Grid<bool, D>,
    /// Number of `true` cells in `grid`, maintained by `set`/`set_rect`.
    set_count: u64,
}

impl<const D: usize> FlagField<D> {
    /// An all-clear flag field over `domain`.
    pub fn new(domain: AABox<D>) -> Self {
        Self {
            grid: Grid::new(domain, false),
            set_count: 0,
        }
    }

    /// Build from a predicate evaluated at every cell.
    pub fn from_fn(domain: AABox<D>, f: impl FnMut(Point<D>) -> bool) -> Self {
        let grid = Grid::from_fn(domain, f);
        let set_count = grid.count_true();
        Self { grid, set_count }
    }

    /// The domain of the mask.
    pub fn domain(&self) -> AABox<D> {
        self.grid.domain()
    }

    /// Is the cell flagged? Cells outside the domain read as unflagged.
    #[inline]
    pub fn is_set(&self, p: Point<D>) -> bool {
        self.grid.domain().contains_point(p) && *self.grid.get(p)
    }

    /// Flag one cell (ignored when outside the domain).
    #[inline]
    pub fn set(&mut self, p: Point<D>) {
        if self.grid.domain().contains_point(p) && !*self.grid.get(p) {
            self.grid.set(p, true);
            self.set_count += 1;
        }
    }

    /// Flag every cell of `rect` (clipped to the domain).
    pub fn set_rect(&mut self, rect: &AABox<D>) {
        if let Some(w) = self.grid.domain().intersect(rect) {
            let already = self.grid.count_true_in(&w);
            self.grid.fill_in(&w, true);
            self.set_count += w.cells() - already;
        }
    }

    /// Bulk row-major flag marking: visit every axis-0-contiguous run of
    /// `window` (clipped to the domain) as a mutable `bool` slice and let
    /// `f` write cells directly — the error-estimator hot loop, which
    /// would otherwise pay a bounds-checked [`FlagField::set`] per cell.
    /// The maintained flag counter is refreshed from word-at-a-time run
    /// counts before and after each visit, so `f` may set (or clear)
    /// any subset of a run and the O(1) [`FlagField::count`] stays exact.
    pub fn mark_rows(&mut self, window: &AABox<D>, mut f: impl FnMut(Point<D>, &mut [bool])) {
        let Some(w) = self.grid.domain().intersect(window) else {
            return;
        };
        let mut delta = 0i64;
        self.grid.for_each_run_mut(&w, |row, run| {
            let before = count_set(run);
            f(row, run);
            delta += count_set(run) as i64 - before as i64;
        });
        self.set_count = self
            .set_count
            .checked_add_signed(delta)
            .expect("flag counter underflow");
    }

    /// Number of flagged cells.
    pub fn count(&self) -> u64 {
        debug_assert_eq!(
            self.set_count,
            self.grid.count_true(),
            "maintained flag counter diverged from the full scan"
        );
        self.set_count
    }

    /// Number of flagged cells inside `window`.
    pub fn count_in(&self, window: &AABox<D>) -> u64 {
        self.grid.count_true_in(window)
    }

    /// `true` if no cell is flagged.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Tightest box containing all flagged cells, or `None` if empty.
    pub fn bounding_box(&self) -> Option<AABox<D>> {
        if self.is_empty() {
            return None;
        }
        let mut lo = Point::<D>::splat(i64::MAX);
        let mut hi = Point::<D>::splat(i64::MIN);
        for (row, run) in self.grid.runs_in(&self.grid.domain()) {
            let Some(first) = first_set(run) else {
                continue;
            };
            let last = last_set(run).expect("run has a first set cell");
            lo[0] = lo[0].min(row[0] + first as i64);
            hi[0] = hi[0].max(row[0] + last as i64);
            for i in 1..D {
                lo[i] = lo[i].min(row[i]);
                hi[i] = hi[i].max(row[i]);
            }
        }
        Some(AABox::new(lo, hi))
    }

    /// Dilate the flagged set by `buffer` cells in the Chebyshev metric
    /// (the standard SAMR flag-buffer step), clipped to the domain.
    pub fn buffer(&self, buffer: i64) -> FlagField<D> {
        assert!(buffer >= 0);
        if buffer == 0 {
            return self.clone();
        }
        let d = self.grid.domain();
        let mut out = FlagField::new(d);
        for (row, run) in self.grid.runs_in(&d) {
            let mut off = 0usize;
            while let Some(i) = first_set(&run[off..]) {
                let mut p = row;
                p[0] += (off + i) as i64;
                out.set_rect(&AABox::cell(p).grow(buffer));
                off += i + 1;
            }
        }
        out
    }

    /// Signature along `axis` within `window`: flagged-cell count for
    /// each coordinate slice perpendicular to `axis`. Clipped to the
    /// domain; `window` must intersect the domain. `signature(Axis::X, w)`
    /// is the historical column signature, `signature(Axis::Y, w)` the
    /// row signature.
    pub fn signature(&self, axis: Axis, window: &AABox<D>) -> Vec<u32> {
        let mut sig = Vec::new();
        self.signature_into(axis, window, &mut sig);
        sig
    }

    /// [`FlagField::signature`] into a caller-owned buffer, so hot loops
    /// (the Berger–Rigoutsos recursion computes several signatures per
    /// candidate box) reuse one allocation instead of building a fresh
    /// `Vec` per scan. `sig` is cleared and resized to the window extent.
    pub fn signature_into(&self, axis: Axis, window: &AABox<D>, sig: &mut Vec<u32>) {
        let w = self
            .grid
            .domain()
            .intersect(window)
            .expect("signature window outside flag domain");
        let a = axis.index();
        sig.clear();
        sig.resize(w.extent()[a] as usize, 0);
        if a == 0 {
            // The signature axis is the contiguous axis: accumulate each
            // run element-wise (all-clear words skip in one compare).
            for (_, run) in self.grid.runs_in(&w) {
                accumulate_set(run, sig);
            }
        } else {
            // Every cell of a run shares its coordinate on `axis`: one
            // word-wise popcount per run.
            for (row, run) in self.grid.runs_in(&w) {
                sig[(row[a] - w.lo()[a]) as usize] += count_set(run) as u32;
            }
        }
    }
}

impl FlagField<2> {
    /// Column signature within `window`: flagged-cell count for each `x`.
    pub fn signature_x(&self, window: &AABox<2>) -> Vec<u32> {
        self.signature(Axis::X, window)
    }

    /// Row signature within `window`: flagged-cell count for each `y`.
    pub fn signature_y(&self, window: &AABox<2>) -> Vec<u32> {
        self.signature(Axis::Y, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Point2, Point3, Rect2};

    fn d() -> Rect2 {
        Rect2::from_extents(8, 8)
    }

    #[test]
    fn set_and_query() {
        let mut f = FlagField::new(d());
        assert!(f.is_empty());
        f.set(Point2::new(3, 4));
        assert!(f.is_set(Point2::new(3, 4)));
        assert!(!f.is_set(Point2::new(4, 3)));
        assert!(!f.is_set(Point2::new(100, 100))); // outside: unflagged
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn set_outside_is_ignored() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(-1, 0));
        assert!(f.is_empty());
    }

    #[test]
    fn set_rect_clips() {
        let mut f = FlagField::new(d());
        f.set_rect(&Rect2::from_coords(6, 6, 10, 10));
        assert_eq!(f.count(), 4); // only [6..7]^2 is inside
    }

    #[test]
    fn bounding_box_tightens() {
        let mut f = FlagField::new(d());
        assert_eq!(f.bounding_box(), None);
        f.set(Point2::new(2, 3));
        f.set(Point2::new(5, 6));
        assert_eq!(f.bounding_box(), Some(Rect2::from_coords(2, 3, 5, 6)));
    }

    #[test]
    fn buffer_dilates_chebyshev() {
        let mut f = FlagField::new(d());
        f.set(Point2::new(4, 4));
        let b = f.buffer(1);
        assert_eq!(b.count(), 9);
        assert!(b.is_set(Point2::new(3, 3)));
        assert!(b.is_set(Point2::new(5, 5)));
        assert!(!b.is_set(Point2::new(2, 4)));
        // Buffering at the domain edge clips.
        let mut e = FlagField::new(d());
        e.set(Point2::new(0, 0));
        assert_eq!(e.buffer(1).count(), 4);
    }

    #[test]
    fn buffer_zero_is_identity() {
        let f = FlagField::from_fn(d(), |p| p.x == p.y);
        assert_eq!(f.buffer(0), f);
    }

    #[test]
    fn signatures_count_rows_and_columns() {
        let f = FlagField::from_fn(d(), |p| p.x >= 2 && p.x <= 3 && p.y >= 1 && p.y <= 4);
        let w = Rect2::from_coords(0, 0, 7, 7);
        let sx = f.signature_x(&w);
        let sy = f.signature_y(&w);
        assert_eq!(sx, vec![0, 0, 4, 4, 0, 0, 0, 0]);
        assert_eq!(sy, vec![0, 2, 2, 2, 2, 0, 0, 0]);
        assert_eq!(sx.iter().map(|&v| v as u64).sum::<u64>(), f.count());
    }

    #[test]
    fn signatures_respect_window() {
        let f = FlagField::from_fn(d(), |_| true);
        let w = Rect2::from_coords(2, 3, 4, 5);
        assert_eq!(f.signature_x(&w), vec![3, 3, 3]);
        assert_eq!(f.signature_y(&w), vec![3, 3, 3]);
    }

    #[test]
    fn mark_rows_matches_per_cell_set() {
        // Row-wise marking must agree with per-cell `set` — cells,
        // counter, and clipping — including over already-set cells and
        // a window that escapes the domain.
        let pred = |p: Point2| (p.x * 5 + p.y * 3) % 7 < 2;
        let windows = [
            Rect2::from_coords(1, 2, 6, 5),
            Rect2::from_coords(4, 4, 11, 11),   // clips
            Rect2::from_coords(-3, -3, -1, -1), // fully outside
        ];
        let mut by_set = FlagField::new(d());
        let mut by_rows = FlagField::new(d());
        by_set.set(Point2::new(2, 3));
        by_rows.set(Point2::new(2, 3));
        for w in &windows {
            for p in w.iter_cells() {
                if pred(p) {
                    by_set.set(p);
                }
            }
            by_rows.mark_rows(w, |row, run| {
                for (k, cell) in run.iter_mut().enumerate() {
                    let p = Point2::new(row.x + k as i64, row.y);
                    if pred(p) {
                        *cell = true;
                    }
                }
            });
        }
        assert_eq!(by_set, by_rows);
        assert_eq!(by_set.count(), by_rows.count());
        // A closure that clears cells keeps the counter exact too.
        by_rows.mark_rows(&Rect2::from_coords(0, 0, 7, 3), |_, run| run.fill(false));
        let live = by_rows.count();
        assert_eq!(
            live,
            by_rows
                .domain()
                .iter_cells()
                .filter(|&p| by_rows.is_set(p))
                .count() as u64
        );
    }

    #[test]
    fn three_d_flags_and_signatures() {
        let dom = Box3::from_extents(6, 6, 6);
        let f = FlagField::from_fn(dom, |p| p.z == 2 && p.x >= 1 && p.x <= 3);
        assert_eq!(f.count(), 3 * 6);
        assert_eq!(f.bounding_box(), Some(Box3::from_coords(1, 0, 2, 3, 5, 2)));
        let sig_z = f.signature(Axis::Z, &dom);
        assert_eq!(sig_z, vec![0, 0, 18, 0, 0, 0]);
        let sig_x = f.signature(Axis::X, &dom);
        assert_eq!(sig_x, vec![0, 6, 6, 6, 0, 0]);
        let b = f.buffer(1);
        assert!(b.is_set(Point3::new(1, 0, 1)));
        assert!(b.is_set(Point3::new(4, 0, 3)));
        assert!(!b.is_set(Point3::new(5, 0, 0)));
    }
}
