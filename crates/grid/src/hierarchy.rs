//! Patches, levels and the adaptive grid hierarchy, generic over the
//! dimension.

use samr_geom::{boxops, AABox, Region};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Identifier of a patch within its level (dense index, stable within one
/// hierarchy snapshot; patches are re-created at every regrid, exactly as
/// in Berger–Colella SAMR, so ids are not stable across snapshots — the
/// paper's β_m deliberately works on box geometry, not identity).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatchId(pub u32);

impl fmt::Debug for PatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One uniform logically-rectangular grid patch of a refinement level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Patch<const D: usize> {
    /// Patch id within the level.
    pub id: PatchId,
    /// The cells of the patch, in the level's own index space.
    pub rect: AABox<D>,
}

impl<const D: usize> Patch<D> {
    /// Number of grid points in the patch.
    #[inline]
    pub fn cells(&self) -> u64 {
        self.rect.cells()
    }
}

impl<const D: usize> Serialize for Patch<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("id".to_string(), self.id.serialize()),
            ("rect".to_string(), self.rect.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for Patch<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            id: serde::field(v, "id")?,
            rect: serde::field(v, "rect")?,
        })
    }
}

/// One refinement level: a set of non-overlapping patches in the level's
/// index space (level `l` index space is the base index space refined by
/// `ratio^l`).
#[derive(Clone, PartialEq, Debug)]
pub struct Level<const D: usize> {
    /// Patches of the level. Invariant (checked by
    /// [`GridHierarchy::validate`]): pairwise disjoint.
    pub patches: Vec<Patch<D>>,
}

impl<const D: usize> Default for Level<D> {
    fn default() -> Self {
        Self {
            patches: Vec::new(),
        }
    }
}

impl<const D: usize> Level<D> {
    /// Build a level from raw boxes, assigning dense patch ids.
    pub fn from_rects(rects: &[AABox<D>]) -> Self {
        Self {
            patches: rects
                .iter()
                .enumerate()
                .map(|(i, &rect)| Patch {
                    id: PatchId(i as u32),
                    rect,
                })
                .collect(),
        }
    }

    /// Number of patches.
    #[inline]
    pub fn patch_count(&self) -> usize {
        self.patches.len()
    }

    /// `true` if the level holds no patches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// Total grid points on the level.
    pub fn cells(&self) -> u64 {
        self.patches.iter().map(Patch::cells).sum()
    }

    /// Total boundary-ring cells over all patches (worst-case ghost
    /// communication surface).
    pub fn boundary_cells(&self) -> u64 {
        self.patches.iter().map(|p| p.rect.perimeter_cells()).sum()
    }

    /// The boxes of all patches.
    pub fn rects(&self) -> Vec<AABox<D>> {
        self.patches.iter().map(|p| p.rect).collect()
    }

    /// The cell set covered by the level.
    pub fn region(&self) -> Region<D> {
        // Patches are disjoint, so no dedup pass is needed.
        self.patches.iter().map(|p| p.rect).collect()
    }
}

impl<const D: usize> Serialize for Level<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![("patches".to_string(), self.patches.serialize())])
    }
}

impl<const D: usize> Deserialize for Level<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            patches: serde::field(v, "patches")?,
        })
    }
}

/// Validation failures for a hierarchy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HierarchyError {
    /// Two patches of one level overlap.
    OverlappingPatches {
        /// Level index.
        level: usize,
        /// First offending patch.
        a: PatchId,
        /// Second offending patch.
        b: PatchId,
    },
    /// A patch leaves the problem domain of its level.
    PatchOutsideDomain {
        /// Level index.
        level: usize,
        /// Offending patch.
        patch: PatchId,
    },
    /// A patch of level `l+1` is not covered by the refined region of
    /// level `l` (proper nesting violated).
    NotProperlyNested {
        /// The finer level index (the violating one).
        level: usize,
        /// Offending patch.
        patch: PatchId,
    },
    /// A patch has an extent below the configured minimum block dimension.
    BlockTooSmall {
        /// Level index.
        level: usize,
        /// Offending patch.
        patch: PatchId,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OverlappingPatches { level, a, b } => {
                write!(f, "level {level}: patches {a:?} and {b:?} overlap")
            }
            Self::PatchOutsideDomain { level, patch } => {
                write!(f, "level {level}: patch {patch:?} outside domain")
            }
            Self::NotProperlyNested { level, patch } => {
                write!(f, "level {level}: patch {patch:?} not properly nested")
            }
            Self::BlockTooSmall { level, patch } => {
                write!(f, "level {level}: patch {patch:?} below minimum block size")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// A structured adaptive grid hierarchy `H_t`: a base grid covering the
/// whole domain plus refined patch levels.
///
/// The configuration matches the paper's §5.1.1: refinement by a constant
/// integer `ratio` (2 in all experiments) in *space and time*, up to
/// `max_levels` levels (5 in all experiments). Level 0 always consists of a
/// single patch covering `base_domain` — SAMR base grids are never adapted,
/// only overlaid.
#[derive(Clone, PartialEq, Debug)]
pub struct GridHierarchy<const D: usize> {
    /// The problem domain in base-level (level 0) index space.
    pub base_domain: AABox<D>,
    /// Space and time refinement factor between consecutive levels.
    pub ratio: i64,
    /// All levels; `levels[0]` covers `base_domain` exactly.
    pub levels: Vec<Level<D>>,
}

impl<const D: usize> Serialize for GridHierarchy<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("base_domain".to_string(), self.base_domain.serialize()),
            ("ratio".to_string(), self.ratio.serialize()),
            ("levels".to_string(), self.levels.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for GridHierarchy<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            base_domain: serde::field(v, "base_domain")?,
            ratio: serde::field(v, "ratio")?,
            levels: serde::field(v, "levels")?,
        })
    }
}

impl<const D: usize> GridHierarchy<D> {
    /// Create a hierarchy with only the base level.
    pub fn base_only(base_domain: AABox<D>, ratio: i64) -> Self {
        assert!(ratio >= 2, "refinement ratio must be >= 2");
        Self {
            base_domain,
            ratio,
            levels: vec![Level::from_rects(&[base_domain])],
        }
    }

    /// Create a hierarchy from per-level box lists. `level_rects[0]` is
    /// ignored in favour of the base domain if empty; otherwise it is taken
    /// as given (allowing multi-patch base grids).
    pub fn from_level_rects(
        base_domain: AABox<D>,
        ratio: i64,
        level_rects: &[Vec<AABox<D>>],
    ) -> Self {
        let mut h = Self::base_only(base_domain, ratio);
        for (l, rects) in level_rects.iter().enumerate() {
            if l == 0 {
                if !rects.is_empty() {
                    h.levels[0] = Level::from_rects(rects);
                }
                continue;
            }
            if rects.is_empty() {
                break; // no patches at this level => deeper levels impossible
            }
            h.levels.push(Level::from_rects(rects));
        }
        h
    }

    /// Number of levels with at least one patch.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The problem domain expressed in level-`l` index space.
    pub fn domain_at_level(&self, l: usize) -> AABox<D> {
        self.base_domain.refine(self.ratio.pow(l as u32))
    }

    /// Total number of grid points `|H|` over all levels — the denominator
    /// of the paper's β_m and the normalizer of relative data migration.
    pub fn total_points(&self) -> u64 {
        self.levels.iter().map(Level::cells).sum()
    }

    /// The workload `W = Σ_l N_l·ratio^l`: cell updates per coarse time
    /// step under factor-`ratio` time refinement (level `l` performs
    /// `ratio^l` local steps per coarse step). This is the normalizer of
    /// the paper's grid-relative communication metric (§4.1).
    pub fn workload(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, lev)| lev.cells() * (self.ratio as u64).pow(l as u32))
            .sum()
    }

    /// The refined cell set of level `l` expressed in level-`l+1` index
    /// space (the region that properly nested `l+1` patches must stay
    /// inside).
    pub fn refined_region(&self, l: usize) -> Region<D> {
        self.levels[l].region().refine(self.ratio)
    }

    /// Fraction of the base domain covered by refinement (level 1 patches
    /// projected down), in `[0, 1]`.
    pub fn refined_fraction(&self) -> f64 {
        if self.levels.len() < 2 {
            return 0.0;
        }
        let projected = self.levels[1].region().coarsen(self.ratio);
        projected.cells() as f64 / self.base_domain.cells() as f64
    }

    /// Check all structural invariants. `min_block` is the granularity of
    /// the paper's set-up (2); pass 1 to disable the block-size check.
    pub fn validate(&self, min_block: i64) -> Result<(), HierarchyError> {
        for (l, level) in self.levels.iter().enumerate() {
            let domain = self.domain_at_level(l);
            for (i, p) in level.patches.iter().enumerate() {
                if !domain.contains_rect(&p.rect) {
                    return Err(HierarchyError::PatchOutsideDomain {
                        level: l,
                        patch: p.id,
                    });
                }
                let e = p.rect.extent();
                if l > 0 && e.coords().iter().any(|&x| x < min_block) {
                    return Err(HierarchyError::BlockTooSmall {
                        level: l,
                        patch: p.id,
                    });
                }
                for q in &level.patches[i + 1..] {
                    if p.rect.intersects(&q.rect) {
                        return Err(HierarchyError::OverlappingPatches {
                            level: l,
                            a: p.id,
                            b: q.id,
                        });
                    }
                }
            }
            if l > 0 {
                let parent = self.refined_region(l - 1);
                for p in &level.patches {
                    if !boxops::covers(&p.rect, parent.boxes()) {
                        return Err(HierarchyError::NotProperlyNested {
                            level: l,
                            patch: p.id,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Point2, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn two_level() -> GridHierarchy<2> {
        // Base 16x16, one refined patch over cells [2..5]x[2..5] => fine
        // box [4..11]^2.
        GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        )
    }

    #[test]
    fn base_only_has_one_patch() {
        let h = GridHierarchy::base_only(Rect2::from_extents(8, 8), 2);
        assert_eq!(h.depth(), 1);
        assert_eq!(h.total_points(), 64);
        assert_eq!(h.workload(), 64);
        assert_eq!(h.refined_fraction(), 0.0);
        assert!(h.validate(2).is_ok());
    }

    #[test]
    fn total_points_and_workload() {
        let h = two_level();
        assert_eq!(h.total_points(), 256 + 64);
        // level 1 runs ratio^1 = 2 local steps per coarse step.
        assert_eq!(h.workload(), 256 + 64 * 2);
    }

    #[test]
    fn domain_at_level_refines() {
        let h = two_level();
        assert_eq!(h.domain_at_level(0), r(0, 0, 15, 15));
        assert_eq!(h.domain_at_level(1), r(0, 0, 31, 31));
    }

    #[test]
    fn refined_fraction_projects_down() {
        let h = two_level();
        // Fine box [4..11]^2 coarsens to [2..5]^2 = 16 cells of 256.
        assert!((h.refined_fraction() - 16.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(two_level().validate(2), Ok(()));
    }

    #[test]
    fn validate_rejects_overlap() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(4, 4, 11, 11), r(10, 10, 13, 13)]],
        );
        assert!(matches!(
            h.validate(2),
            Err(HierarchyError::OverlappingPatches { level: 1, .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(28, 28, 33, 33)]],
        );
        assert!(matches!(
            h.validate(2),
            Err(HierarchyError::PatchOutsideDomain { level: 1, .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_nesting() {
        // Level 2 patch outside the refined level-1 region.
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(4, 4, 11, 11)], vec![r(30, 30, 35, 35)]],
        );
        assert!(matches!(
            h.validate(2),
            Err(HierarchyError::NotProperlyNested { level: 2, .. })
        ));
    }

    #[test]
    fn validate_rejects_small_blocks() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![Rect2::cell(Point2::new(4, 4))]],
        );
        assert!(matches!(
            h.validate(2),
            Err(HierarchyError::BlockTooSmall { level: 1, .. })
        ));
    }

    #[test]
    fn deeper_levels_truncated_after_gap() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![], vec![r(8, 8, 11, 11)]],
        );
        // Empty level 1 terminates the hierarchy.
        assert_eq!(h.depth(), 1);
    }

    #[test]
    fn level_accessors() {
        let lev = Level::from_rects(&[r(0, 0, 3, 3), r(8, 0, 9, 1)]);
        assert_eq!(lev.patch_count(), 2);
        assert_eq!(lev.cells(), 20);
        assert_eq!(lev.boundary_cells(), 12 + 4);
        assert_eq!(lev.region().cells(), 20);
        assert!(!lev.is_empty());
    }

    #[test]
    fn three_d_hierarchy_validates_and_measures() {
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[vec![], vec![Box3::from_coords(4, 4, 4, 11, 11, 11)]],
        );
        assert_eq!(h.depth(), 2);
        assert_eq!(h.total_points(), 4096 + 512);
        assert_eq!(h.workload(), 4096 + 512 * 2);
        assert!((h.refined_fraction() - 64.0 / 4096.0).abs() < 1e-12);
        assert_eq!(h.validate(2), Ok(()));
        // A badly nested level-2 patch is caught in 3-D too.
        let bad = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[
                vec![],
                vec![Box3::from_coords(4, 4, 4, 11, 11, 11)],
                vec![Box3::from_coords(40, 40, 40, 47, 47, 47)],
            ],
        );
        assert!(matches!(
            bad.validate(2),
            Err(HierarchyError::NotProperlyNested { level: 2, .. })
        ));
    }

    #[test]
    fn serde_roundtrip_both_dims() {
        let h2 = two_level();
        let v = h2.serialize();
        assert_eq!(GridHierarchy::<2>::deserialize(&v).unwrap(), h2);
        let h3 = GridHierarchy::from_level_rects(
            Box3::from_extents(8, 8, 8),
            2,
            &[vec![], vec![Box3::from_coords(2, 2, 2, 7, 7, 7)]],
        );
        let v = h3.serialize();
        assert_eq!(GridHierarchy::<3>::deserialize(&v).unwrap(), h3);
        // A 2-D hierarchy value cannot deserialize as 3-D.
        assert!(GridHierarchy::<3>::deserialize(&h2.serialize()).is_err());
    }
}
