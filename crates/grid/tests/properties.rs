//! Property-based tests for the grid substrate: Berger–Rigoutsos output
//! invariants and nesting enforcement on randomly generated flag fields.

use proptest::prelude::*;
use samr_geom::{Point2, Rect2, Region};
use samr_grid::nesting::{clip_to_nesting, shrink_within};
use samr_grid::{cluster_flags, cluster_flags_with, ClusterOptions, ClusterScratch, FlagField};

/// Random flag fields: unions of blobs, rings and random speckle.
fn arb_flags() -> impl Strategy<Value = FlagField<2>> {
    let blobs = prop::collection::vec((0i64..56, 0i64..56, 1i64..12, 1i64..12), 0..4);
    let speckle = prop::collection::vec((0i64..64, 0i64..64), 0..30);
    (blobs, speckle).prop_map(|(blobs, speckle)| {
        let mut f = FlagField::new(Rect2::from_extents(64, 64));
        for (x, y, w, h) in blobs {
            f.set_rect(&Rect2::new(
                Point2::new(x, y),
                Point2::new((x + w).min(63), (y + h).min(63)),
            ));
        }
        for (x, y) in speckle {
            f.set(Point2::new(x, y));
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_covers_all_flags_with_disjoint_blocks(flags in arb_flags()) {
        let opts = ClusterOptions::paper_defaults();
        let boxes = cluster_flags(&flags, &opts);
        // Disjoint, min-block sized, inside the domain.
        for (i, b) in boxes.iter().enumerate() {
            prop_assert!(flags.domain().contains_rect(b));
            prop_assert!(b.extent().x >= opts.min_block && b.extent().y >= opts.min_block);
            for c in &boxes[i + 1..] {
                prop_assert!(!b.intersects(c));
            }
        }
        // Coverage: every flag inside some box.
        let covered: u64 = boxes.iter().map(|b| flags.count_in(b)).sum();
        prop_assert_eq!(covered, flags.count());
        // Empty flags => no boxes.
        if flags.is_empty() {
            prop_assert!(boxes.is_empty());
        }
    }

    #[test]
    fn clustering_efficiency_improves_with_threshold(flags in arb_flags()) {
        prop_assume!(flags.count() > 10);
        let lo = cluster_flags(&flags, &ClusterOptions { min_efficiency: 0.3, ..ClusterOptions::paper_defaults() });
        let hi = cluster_flags(&flags, &ClusterOptions { min_efficiency: 0.9, ..ClusterOptions::paper_defaults() });
        let cells = |bs: &[Rect2]| bs.iter().map(Rect2::cells).sum::<u64>().max(1);
        // Higher efficiency threshold never covers more cells.
        prop_assert!(cells(&hi) <= cells(&lo));
        // And generally uses at least as many boxes.
        prop_assert!(hi.len() >= lo.len());
    }

    #[test]
    fn dirty_cluster_scratch_is_idempotent(fields in prop::collection::vec(arb_flags(), 1..5)) {
        // One scratch arena threaded through a random sequence of
        // dissimilar fields must reproduce the fresh-allocation result
        // at every step — whatever the queue, signature buffer, and
        // accepted-box arena were left holding by the previous field.
        // This is the contract that lets the regrid loop (and the bench
        // suite) reuse one `ClusterScratch` forever.
        let opts = ClusterOptions::paper_defaults();
        let mut scratch = ClusterScratch::default();
        for flags in &fields {
            let fresh = cluster_flags(flags, &opts);
            let reused = cluster_flags_with(flags, &opts, &mut scratch);
            prop_assert_eq!(&fresh, &reused.to_vec());
            // Running the same field again through the now-dirty scratch
            // changes nothing.
            prop_assert_eq!(&fresh, &cluster_flags_with(flags, &opts, &mut scratch).to_vec());
        }
    }

    #[test]
    fn buffered_flags_contain_originals(flags in arb_flags(), buf in 0i64..4) {
        let buffered = flags.buffer(buf);
        for p in flags.domain().iter_cells().step_by(5) {
            if flags.is_set(p) {
                prop_assert!(buffered.is_set(p));
            }
        }
        prop_assert!(buffered.count() >= flags.count());
    }

    #[test]
    fn shrink_within_never_grows(reg_boxes in prop::collection::vec((0i64..28, 0i64..28, 2i64..8, 2i64..8), 1..4), buf in 0i64..4) {
        let domain = Rect2::from_extents(32, 32);
        let rects: Vec<Rect2> = reg_boxes
            .iter()
            .map(|&(x, y, w, h)| {
                Rect2::new(Point2::new(x, y), Point2::new((x + w).min(31), (y + h).min(31)))
            })
            .collect();
        let reg = Region::from_boxes(&rects);
        let shrunk = shrink_within(&reg, &domain, buf);
        prop_assert!(shrunk.cells() <= reg.cells());
        // Shrunk region is a subset.
        prop_assert_eq!(shrunk.overlap_cells(&reg), shrunk.cells());
    }

    #[test]
    fn clip_to_nesting_stays_inside(candidates in prop::collection::vec((0i64..28, 0i64..28, 2i64..10, 2i64..10), 1..5)) {
        let nest = Region::from_boxes(&[
            Rect2::from_coords(0, 0, 19, 31),
            Rect2::from_coords(10, 0, 31, 15),
        ]);
        let rects: Vec<Rect2> = candidates
            .iter()
            .map(|&(x, y, w, h)| {
                Rect2::new(Point2::new(x, y), Point2::new((x + w).min(31), (y + h).min(31)))
            })
            .collect();
        let out = clip_to_nesting(&rects, &nest, 2);
        for (i, b) in out.iter().enumerate() {
            prop_assert!(b.extent().x >= 2 && b.extent().y >= 2);
            prop_assert_eq!(nest.intersect_rect(b).cells(), b.cells());
            for c in &out[i + 1..] {
                prop_assert!(!b.intersects(c));
            }
        }
    }
}
