//! Aggregate statistics of a trace.

use crate::trace::HierarchyTrace;
use serde::{Deserialize, Serialize};

/// Summary of the size dynamics of a trace — the quantities the paper's
/// §4.2 discussion of "absolute importance" revolves around (grid size
/// doubling/halving between steps, local minima vs. peaks).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of snapshots.
    pub steps: usize,
    /// Smallest `|H_t|` over the trace.
    pub min_points: u64,
    /// Largest `|H_t|` over the trace.
    pub max_points: u64,
    /// Mean `|H_t|`.
    pub mean_points: f64,
    /// Largest step-to-step growth ratio `|H_t| / |H_{t-1}|`.
    pub max_growth: f64,
    /// Largest step-to-step shrink ratio `|H_{t-1}| / |H_t|`.
    pub max_shrink: f64,
    /// Maximum hierarchy depth used anywhere in the trace.
    pub max_depth: usize,
    /// Mean number of patches per snapshot (levels >= 1).
    pub mean_patches: f64,
}

impl TraceStats {
    /// Compute statistics over a non-empty trace.
    pub fn compute<const D: usize>(trace: &HierarchyTrace<D>) -> Self {
        assert!(!trace.is_empty(), "cannot summarize an empty trace");
        let points: Vec<u64> = trace
            .snapshots
            .iter()
            .map(|s| s.hierarchy.total_points())
            .collect();
        let mut max_growth = 1.0f64;
        let mut max_shrink = 1.0f64;
        for w in points.windows(2) {
            let (a, b) = (w[0] as f64, w[1] as f64);
            if a > 0.0 {
                max_growth = max_growth.max(b / a);
            }
            if b > 0.0 {
                max_shrink = max_shrink.max(a / b);
            }
        }
        let patch_counts: Vec<usize> = trace
            .snapshots
            .iter()
            .map(|s| {
                s.hierarchy
                    .levels
                    .iter()
                    .skip(1)
                    .map(|l| l.patch_count())
                    .sum()
            })
            .collect();
        Self {
            steps: trace.len(),
            min_points: *points.iter().min().unwrap(),
            max_points: *points.iter().max().unwrap(),
            mean_points: points.iter().sum::<u64>() as f64 / points.len() as f64,
            max_growth,
            max_shrink,
            max_depth: trace
                .snapshots
                .iter()
                .map(|s| s.hierarchy.depth())
                .max()
                .unwrap(),
            mean_patches: patch_counts.iter().sum::<usize>() as f64 / patch_counts.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Snapshot, TraceMeta};
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;

    fn build() -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "TEST".into(),
            description: String::new(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        let sizes: [Option<Rect2>; 4] = [
            None,
            Some(Rect2::from_coords(0, 0, 15, 15)),
            Some(Rect2::from_coords(0, 0, 7, 7)),
            None,
        ];
        for (i, l1) in sizes.iter().enumerate() {
            let rects = match l1 {
                Some(r) => vec![vec![], vec![*r]],
                None => vec![vec![]],
            };
            t.push(Snapshot {
                step: i as u32,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(Rect2::from_extents(16, 16), 2, &rects),
            });
        }
        t
    }

    #[test]
    fn stats_capture_extremes() {
        let s = TraceStats::compute(&build());
        assert_eq!(s.steps, 4);
        assert_eq!(s.min_points, 256);
        assert_eq!(s.max_points, 256 + 256);
        assert_eq!(s.max_depth, 2);
        // 256 -> 512 doubles; 512 -> 320 shrinks; 320 -> 256 shrinks.
        assert!((s.max_growth - 2.0).abs() < 1e-12);
        assert!(s.max_shrink > 1.5);
        assert!((s.mean_patches - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_panics() {
        let meta = TraceMeta {
            app: "T".into(),
            description: String::new(),
            base_domain: Rect2::from_extents(4, 4),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let _ = TraceStats::compute(&HierarchyTrace::new(meta));
    }
}
