//! Pull-based snapshot streams — the bounded-memory trace interface.
//!
//! The paper's model is evaluated per coarse step on `(H_{t-1}, H_t)`
//! pairs; nothing downstream of the trace generator ever needs the whole
//! trace in memory at once. [`SnapshotSource`] is the pull contract that
//! makes this explicit: a source hands out one [`Snapshot`] at a time
//! (plus the run's [`TraceMeta`] up front), so consumers — the model
//! fold, the windowed execution simulator, the codecs — can bound their
//! peak residency at a few snapshots regardless of trace length.
//!
//! Adapters provided here:
//!
//! - [`MemorySource`]: borrows an in-memory [`HierarchyTrace`] (the batch
//!   facade — `simulate_trace` and friends wrap it);
//! - [`SharedTraceSource`]: streams a cache-shared `Arc<AnyTrace>`
//!   without cloning the whole trace;
//! - [`AnySnapshotSource`]: the dimension-erased form the campaign
//!   engine and the CLI traffic in, mirroring [`AnyTrace`].
//!
//! The streaming codec adapters (JSON-lines and `SAMRTRC2` binary,
//! reader *and* writer) live in [`crate::io`].

use crate::io::TraceIoError;
use crate::trace::{AnyTrace, HierarchyTrace, Snapshot, TraceMeta};
use std::sync::Arc;

/// A pull-based stream of hierarchy snapshots with up-front metadata.
///
/// Contract: `next_snapshot` yields snapshots in strictly increasing
/// `step` order and returns `Ok(None)` exactly once, at end of stream.
/// Sources over untrusted bytes (the codec readers) validate each
/// snapshot before yielding it; generator and in-memory sources yield
/// already-validated hierarchies.
pub trait SnapshotSource<const D: usize> {
    /// The run configuration shared by every snapshot of the stream.
    fn meta(&self) -> &TraceMeta<D>;

    /// Pull the next snapshot, or `Ok(None)` at end of stream.
    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError>;

    /// Total number of snapshots, when the source knows it up front.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

impl<const D: usize, S: SnapshotSource<D> + ?Sized> SnapshotSource<D> for Box<S> {
    fn meta(&self) -> &TraceMeta<D> {
        (**self).meta()
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        (**self).next_snapshot()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

impl<const D: usize, S: SnapshotSource<D> + ?Sized> SnapshotSource<D> for &mut S {
    fn meta(&self) -> &TraceMeta<D> {
        (**self).meta()
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        (**self).next_snapshot()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// Stream a borrowed in-memory trace. Snapshots are cloned one at a time
/// on pull, so the consumer's residency stays bounded even though the
/// backing trace is whole.
pub struct MemorySource<'a, const D: usize> {
    trace: &'a HierarchyTrace<D>,
    next: usize,
}

impl<'a, const D: usize> MemorySource<'a, D> {
    /// Stream over `trace` from its first snapshot.
    pub fn new(trace: &'a HierarchyTrace<D>) -> Self {
        Self { trace, next: 0 }
    }
}

impl<const D: usize> SnapshotSource<D> for MemorySource<'_, D> {
    fn meta(&self) -> &TraceMeta<D> {
        &self.trace.meta
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        let snap = self.trace.snapshots.get(self.next).cloned();
        if snap.is_some() {
            self.next += 1;
        }
        Ok(snap)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len())
    }
}

/// Stream a cache-shared dimension-erased trace: holds the `Arc` (no
/// whole-trace clone) and projects the `D`-typed view per pull.
pub struct SharedTraceSource<const D: usize> {
    trace: Arc<AnyTrace>,
    project: fn(&AnyTrace) -> &HierarchyTrace<D>,
    next: usize,
}

impl<const D: usize> SnapshotSource<D> for SharedTraceSource<D> {
    fn meta(&self) -> &TraceMeta<D> {
        &(self.project)(&self.trace).meta
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        let snap = (self.project)(&self.trace)
            .snapshots
            .get(self.next)
            .cloned();
        if snap.is_some() {
            self.next += 1;
        }
        Ok(snap)
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.project)(&self.trace).len())
    }
}

/// A snapshot source of either supported dimension — the dimension-erased
/// form the campaign engine's store and the CLI traffic in (mirrors
/// [`AnyTrace`]). Pipeline code matches on the variant once and then runs
/// dimension-generic.
pub enum AnySnapshotSource {
    /// A 2-D snapshot stream.
    D2(Box<dyn SnapshotSource<2>>),
    /// A 3-D snapshot stream.
    D3(Box<dyn SnapshotSource<3>>),
}

impl AnySnapshotSource {
    /// The spatial dimension of the stream.
    pub fn dim(&self) -> usize {
        match self {
            Self::D2(_) => 2,
            Self::D3(_) => 3,
        }
    }

    /// The application name recorded in the stream's metadata.
    pub fn app(&self) -> String {
        match self {
            Self::D2(s) => s.meta().app.clone(),
            Self::D3(s) => s.meta().app.clone(),
        }
    }

    /// Total number of snapshots, when the source knows it up front.
    pub fn len_hint(&self) -> Option<usize> {
        match self {
            Self::D2(s) => s.len_hint(),
            Self::D3(s) => s.len_hint(),
        }
    }

    /// Drain the stream into a whole in-memory trace (the batch bridge;
    /// validates every snapshot on push).
    pub fn collect(self) -> Result<AnyTrace, TraceIoError> {
        fn drain<const D: usize>(
            mut s: Box<dyn SnapshotSource<D>>,
        ) -> Result<HierarchyTrace<D>, TraceIoError> {
            let mut trace = HierarchyTrace::new(s.meta().clone());
            while let Some(snap) = s.next_snapshot()? {
                trace.try_push(snap).map_err(TraceIoError::Format)?;
            }
            Ok(trace)
        }
        match self {
            Self::D2(s) => drain(s).map(AnyTrace::D2),
            Self::D3(s) => drain(s).map(AnyTrace::D3),
        }
    }
}

/// Stream a cache-shared [`AnyTrace`] as a dimension-erased source.
pub fn shared_source(trace: Arc<AnyTrace>) -> AnySnapshotSource {
    match &*trace {
        AnyTrace::D2(_) => AnySnapshotSource::D2(Box::new(SharedTraceSource::<2> {
            trace,
            project: |t| t.as_2d().expect("variant checked at construction"),
            next: 0,
        })),
        AnyTrace::D3(_) => AnySnapshotSource::D3(Box::new(SharedTraceSource::<3> {
            trace,
            project: |t| t.as_3d().expect("variant checked at construction"),
            next: 0,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;

    fn sample() -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SRC".into(),
            description: "source unit test".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 3,
            regrid_interval: 4,
            min_block: 2,
            seed: 9,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..4u32 {
            let off = step as i64;
            t.push(Snapshot {
                step,
                time: step as f64 * 0.5,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(16, 16),
                    2,
                    &[vec![], vec![Rect2::from_coords(2 + off, 2, 9 + off, 9)]],
                ),
            });
        }
        t
    }

    #[test]
    fn memory_source_replays_the_trace_in_order() {
        let t = sample();
        let mut src = MemorySource::new(&t);
        assert_eq!(src.len_hint(), Some(4));
        assert_eq!(src.meta(), &t.meta);
        let mut got = Vec::new();
        while let Some(s) = src.next_snapshot().unwrap() {
            got.push(s);
        }
        assert_eq!(got, t.snapshots);
        // Exhausted sources stay exhausted.
        assert!(src.next_snapshot().unwrap().is_none());
    }

    #[test]
    fn shared_source_round_trips_through_collect() {
        let any: AnyTrace = sample().into();
        let arc = Arc::new(any.clone());
        let src = shared_source(Arc::clone(&arc));
        assert_eq!(src.dim(), 2);
        assert_eq!(src.app(), "SRC");
        assert_eq!(src.len_hint(), Some(4));
        assert_eq!(src.collect().unwrap(), any);
    }

    #[test]
    fn boxed_and_borrowed_sources_delegate() {
        let t = sample();
        let mut boxed: Box<dyn SnapshotSource<2> + '_> = Box::new(MemorySource::new(&t));
        assert_eq!(boxed.len_hint(), Some(4));
        let mut n = 0;
        let by_ref: &mut dyn SnapshotSource<2> = &mut boxed;
        while by_ref.next_snapshot().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
        assert_eq!(SnapshotSource::len_hint(&by_ref), Some(4));
    }
}
