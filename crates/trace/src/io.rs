//! Trace serialization: JSON-lines and a compact binary format.
//!
//! JSON-lines is the interchange/inspection format (one snapshot per line,
//! greppable, diff-able); the binary format is for large parameter sweeps
//! where trace I/O would otherwise dominate. Both roundtrip exactly.

use crate::trace::{HierarchyTrace, Snapshot, TraceMeta};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use samr_geom::{Point2, Rect2};
use samr_grid::{GridHierarchy, Level};
use std::io::{self, BufRead, Write};

/// Magic bytes of the binary format.
const MAGIC: &[u8; 8] = b"SAMRTRC1";

/// Errors from trace deserialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Structural problem in the encoded data.
    Format(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::Json(e) => write!(f, "trace JSON error: {e}"),
            Self::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Write a trace as JSON-lines: the first line is the metadata, every
/// following line one snapshot.
pub fn write_jsonl<W: Write>(trace: &HierarchyTrace, mut w: W) -> Result<(), TraceIoError> {
    serde_json::to_writer(&mut w, &trace.meta)?;
    w.write_all(b"\n")?;
    for s in &trace.snapshots {
        serde_json::to_writer(&mut w, s)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a JSON-lines trace written by [`write_jsonl`].
pub fn read_jsonl<R: BufRead>(r: R) -> Result<HierarchyTrace, TraceIoError> {
    let mut lines = r.lines();
    let meta_line = lines
        .next()
        .ok_or_else(|| TraceIoError::Format("empty trace stream".into()))??;
    let meta: TraceMeta = serde_json::from_str(&meta_line)?;
    let mut trace = HierarchyTrace::new(meta);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let snap: Snapshot = serde_json::from_str(&line)?;
        trace.try_push(snap).map_err(TraceIoError::Format)?;
    }
    Ok(trace)
}

/// Encode a trace into the compact binary format.
pub fn encode_binary(trace: &HierarchyTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    let meta_json = serde_json::to_vec(&trace.meta).expect("meta serializes");
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    buf.put_u32_le(trace.snapshots.len() as u32);
    for s in &trace.snapshots {
        buf.put_u32_le(s.step);
        buf.put_f64_le(s.time);
        put_rect(&mut buf, &s.hierarchy.base_domain);
        buf.put_u8(s.hierarchy.ratio as u8);
        buf.put_u16_le(s.hierarchy.levels.len() as u16);
        for level in &s.hierarchy.levels {
            buf.put_u32_le(level.patches.len() as u32);
            for p in &level.patches {
                put_rect(&mut buf, &p.rect);
            }
        }
    }
    buf.freeze()
}

/// Decode a binary trace produced by [`encode_binary`].
pub fn decode_binary(mut data: Bytes) -> Result<HierarchyTrace, TraceIoError> {
    let need = |data: &Bytes, n: usize| -> Result<(), TraceIoError> {
        if data.remaining() < n {
            Err(TraceIoError::Format(format!(
                "truncated trace: need {n} more bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&data, 8)?;
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceIoError::Format("bad magic".into()));
    }
    need(&data, 4)?;
    let meta_len = data.get_u32_le() as usize;
    need(&data, meta_len)?;
    let meta_json = data.split_to(meta_len);
    let meta: TraceMeta = serde_json::from_slice(&meta_json)?;
    let mut trace = HierarchyTrace::new(meta);
    need(&data, 4)?;
    let n_snaps = data.get_u32_le();
    for _ in 0..n_snaps {
        need(&data, 4 + 8)?;
        let step = data.get_u32_le();
        let time = data.get_f64_le();
        let base = get_rect(&mut data, &need)?;
        need(&data, 3)?;
        let ratio = data.get_u8() as i64;
        if !(2..=16).contains(&ratio) {
            return Err(TraceIoError::Format(format!(
                "implausible refinement ratio {ratio}"
            )));
        }
        let n_levels = data.get_u16_le() as usize;
        if n_levels > 32 {
            return Err(TraceIoError::Format(format!(
                "implausible level count {n_levels}"
            )));
        }
        let mut level_rects: Vec<Vec<Rect2>> = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            need(&data, 4)?;
            let n_patches = data.get_u32_le() as usize;
            // Bound the allocation by the bytes actually present: each
            // patch needs 16 bytes, so a hostile count fails here instead
            // of reserving gigabytes.
            need(&data, n_patches.saturating_mul(16))?;
            let mut rects = Vec::with_capacity(n_patches);
            for _ in 0..n_patches {
                rects.push(get_rect(&mut data, &need)?);
            }
            level_rects.push(rects);
        }
        let hierarchy = GridHierarchy {
            base_domain: base,
            ratio,
            levels: level_rects.iter().map(|r| Level::from_rects(r)).collect(),
        };
        trace
            .try_push(Snapshot {
                step,
                time,
                hierarchy,
            })
            .map_err(TraceIoError::Format)?;
    }
    Ok(trace)
}

fn put_rect(buf: &mut BytesMut, r: &Rect2) {
    buf.put_i32_le(r.lo().x as i32);
    buf.put_i32_le(r.lo().y as i32);
    buf.put_i32_le(r.hi().x as i32);
    buf.put_i32_le(r.hi().y as i32);
}

fn get_rect(
    data: &mut Bytes,
    need: &impl Fn(&Bytes, usize) -> Result<(), TraceIoError>,
) -> Result<Rect2, TraceIoError> {
    need(data, 16)?;
    let x0 = data.get_i32_le() as i64;
    let y0 = data.get_i32_le() as i64;
    let x1 = data.get_i32_le() as i64;
    let y1 = data.get_i32_le() as i64;
    Rect2::try_new(Point2::new(x0, y0), Point2::new(x1, y1))
        .ok_or_else(|| TraceIoError::Format(format!("empty rect [{x0},{y0}]..[{x1},{y1}]")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> HierarchyTrace {
        let meta = TraceMeta {
            app: "TEST".into(),
            description: "io roundtrip".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 7,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..5u32 {
            let off = step as i64;
            let l1 = Rect2::from_coords(2 + off, 2 + off, 11 + off, 11 + off);
            let l2 = l1.refine(2).shrink(4).unwrap();
            t.push(Snapshot {
                step,
                time: step as f64 * 0.25,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(16, 16),
                    2,
                    &[vec![], vec![l1], vec![l2]],
                ),
            });
        }
        t
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_is_line_oriented() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + t.len());
        assert!(text.lines().next().unwrap().contains("\"app\":\"TEST\""));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let mut json = Vec::new();
        write_jsonl(&t, &mut json).unwrap();
        let bin = encode_binary(&t);
        assert!(
            bin.len() * 2 < json.len(),
            "{} vs {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let err = decode_binary(Bytes::from_static(b"NOTMAGIC....")).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        for cut in [3usize, 9, 20, bytes.len() - 5] {
            let err = decode_binary(bytes.slice(..cut)).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Format(_) | TraceIoError::Json(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(read_jsonl(io::BufReader::new(&b""[..])).is_err());
    }
}
