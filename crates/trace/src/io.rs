//! Trace serialization: JSON-lines and a compact binary format, generic
//! over the dimension — batch *and* streaming.
//!
//! JSON-lines is the interchange/inspection format (one snapshot per line,
//! greppable, diff-able); the binary format is for large parameter sweeps
//! where trace I/O would otherwise dominate. Both roundtrip exactly, and
//! both carry the spatial dimension explicitly (the metadata's `dim`
//! field in JSON, a dimension byte after the magic in binary) so readers
//! can dispatch without guessing.
//!
//! Both formats are record-oriented, so both support **bounded-memory
//! streaming** in each direction: [`JsonlSnapshotReader`] /
//! [`BinarySnapshotReader`] implement [`SnapshotSource`] (one snapshot
//! resident at a time), and [`JsonlSnapshotWriter`] /
//! [`BinarySnapshotWriter`] accept snapshots one at a time — so a trace
//! can be generated straight to disk without ever materializing. The
//! whole-trace functions ([`read_jsonl`], [`decode_binary`], …) are thin
//! collect/drain wrappers over the streaming forms.

use crate::source::{AnySnapshotSource, SnapshotSource};
use crate::trace::{AnyTrace, HierarchyTrace, Snapshot, TraceMeta};
use bytes::{BufMut, Bytes, BytesMut};
use samr_geom::{AABox, Point};
use samr_grid::{GridHierarchy, Level};
use serde::Deserialize;
use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes of the binary format (version 2: dimension-tagged).
const MAGIC: &[u8; 8] = b"SAMRTRC2";

/// Errors from trace deserialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Structural problem in the encoded data.
    Format(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::Json(e) => write!(f, "trace JSON error: {e}"),
            Self::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// The per-snapshot validation every codec reader applies before
/// yielding: strictly increasing steps and structural hierarchy
/// invariants — the same contract [`HierarchyTrace::try_push`] enforces
/// at the in-memory boundary.
fn validate_snapshot<const D: usize>(
    meta: &TraceMeta<D>,
    last_step: &mut Option<u32>,
    snap: &Snapshot<D>,
) -> Result<(), TraceIoError> {
    if let Some(last) = *last_step {
        if snap.step <= last {
            return Err(TraceIoError::Format(format!(
                "trace steps must be strictly increasing: {} after {}",
                snap.step, last
            )));
        }
    }
    snap.hierarchy.validate(meta.min_block).map_err(|e| {
        TraceIoError::Format(format!("invalid hierarchy at step {}: {e}", snap.step))
    })?;
    *last_step = Some(snap.step);
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON-lines
// ---------------------------------------------------------------------------

/// Streaming JSON-lines writer: metadata on construction, then one line
/// per [`JsonlSnapshotWriter::write_snapshot`] call. Nothing is buffered
/// beyond the line being written.
pub struct JsonlSnapshotWriter<W: Write> {
    w: W,
}

impl<W: Write> JsonlSnapshotWriter<W> {
    /// Start a stream by writing the metadata line.
    pub fn new<const D: usize>(mut w: W, meta: &TraceMeta<D>) -> Result<Self, TraceIoError> {
        serde_json::to_writer(&mut w, meta)?;
        w.write_all(b"\n")?;
        Ok(Self { w })
    }

    /// Append one snapshot line.
    pub fn write_snapshot<const D: usize>(
        &mut self,
        snap: &Snapshot<D>,
    ) -> Result<(), TraceIoError> {
        serde_json::to_writer(&mut self.w, snap)?;
        self.w.write_all(b"\n")?;
        Ok(())
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming JSON-lines reader: parses the metadata line on construction
/// and then one snapshot per pull, validating each before yielding.
pub struct JsonlSnapshotReader<const D: usize, R: BufRead> {
    r: R,
    meta: TraceMeta<D>,
    last_step: Option<u32>,
}

impl<const D: usize, R: BufRead> JsonlSnapshotReader<D, R> {
    /// Read the metadata line and set up the snapshot stream.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut first = String::new();
        if r.read_line(&mut first)? == 0 {
            return Err(TraceIoError::Format("empty trace stream".into()));
        }
        let meta: TraceMeta<D> = serde_json::from_str(first.trim_end())?;
        Ok(Self {
            r,
            meta,
            last_step: None,
        })
    }
}

impl<const D: usize, R: BufRead> SnapshotSource<D> for JsonlSnapshotReader<D, R> {
    fn meta(&self) -> &TraceMeta<D> {
        &self.meta
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        loop {
            let mut line = String::new();
            if self.r.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            let snap: Snapshot<D> = serde_json::from_str(line.trim_end())?;
            validate_snapshot(&self.meta, &mut self.last_step, &snap)?;
            return Ok(Some(snap));
        }
    }
}

/// Write a trace as JSON-lines: the first line is the metadata, every
/// following line one snapshot.
pub fn write_jsonl<const D: usize, W: Write>(
    trace: &HierarchyTrace<D>,
    w: W,
) -> Result<(), TraceIoError> {
    let mut out = JsonlSnapshotWriter::new(w, &trace.meta)?;
    for s in &trace.snapshots {
        out.write_snapshot(s)?;
    }
    out.finish()?;
    Ok(())
}

/// Read a JSON-lines trace written by [`write_jsonl`].
pub fn read_jsonl<const D: usize, R: BufRead>(r: R) -> Result<HierarchyTrace<D>, TraceIoError> {
    collect_source(JsonlSnapshotReader::new(r)?)
}

/// Read a JSON-lines trace of either dimension, dispatching on the
/// metadata's `dim` field. Only the metadata line is buffered; the
/// snapshot lines stream through [`read_jsonl`] as usual.
pub fn read_jsonl_any<R: BufRead>(mut r: R) -> Result<AnyTrace, TraceIoError> {
    let mut first = String::new();
    if r.read_line(&mut first)? == 0 {
        return Err(TraceIoError::Format("empty trace stream".into()));
    }
    let dim = jsonl_meta_dim(&first)?;
    let rest = std::io::Cursor::new(first.into_bytes()).chain(r);
    match dim {
        2 => read_jsonl::<2, _>(std::io::BufReader::new(rest)).map(AnyTrace::D2),
        3 => read_jsonl::<3, _>(std::io::BufReader::new(rest)).map(AnyTrace::D3),
        other => Err(TraceIoError::Format(format!(
            "unsupported trace dimension {other}"
        ))),
    }
}

/// The `dim` field of a JSON-lines metadata line.
fn jsonl_meta_dim(line: &str) -> Result<usize, TraceIoError> {
    serde_json::value_from_slice(line.trim_end().as_bytes())
        .ok()
        .and_then(|v| v.get("dim").and_then(|d| usize::deserialize(d).ok()))
        .ok_or_else(|| TraceIoError::Format("metadata line carries no dimension".into()))
}

/// Drain a snapshot source into a whole in-memory trace.
fn collect_source<const D: usize, S: SnapshotSource<D>>(
    mut src: S,
) -> Result<HierarchyTrace<D>, TraceIoError> {
    let mut trace = HierarchyTrace::new(src.meta().clone());
    while let Some(snap) = src.next_snapshot()? {
        trace.try_push(snap).map_err(TraceIoError::Format)?;
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Binary (SAMRTRC2)
// ---------------------------------------------------------------------------

/// Encode one snapshot record into `buf` (the shared body encoding of
/// the batch encoder and the streaming writer).
fn encode_snapshot<const D: usize>(buf: &mut BytesMut, s: &Snapshot<D>) {
    buf.put_u32_le(s.step);
    buf.put_f64_le(s.time);
    put_rect(buf, &s.hierarchy.base_domain);
    buf.put_u8(s.hierarchy.ratio as u8);
    buf.put_u16_le(s.hierarchy.levels.len() as u16);
    for level in &s.hierarchy.levels {
        buf.put_u32_le(level.patches.len() as u32);
        for p in &level.patches {
            put_rect(buf, &p.rect);
        }
    }
}

/// Streaming binary writer: header on construction, one record per
/// [`BinarySnapshotWriter::write_snapshot`], snapshot count backpatched
/// on [`BinarySnapshotWriter::finish`] (which is why the sink must
/// [`Seek`] — files and in-memory cursors both do).
pub struct BinarySnapshotWriter<W: Write + Seek> {
    w: W,
    count_pos: u64,
    count: u32,
}

impl<W: Write + Seek> BinarySnapshotWriter<W> {
    /// Write the stream header (magic, dimension byte, metadata, count
    /// placeholder).
    pub fn new<const D: usize>(mut w: W, meta: &TraceMeta<D>) -> Result<Self, TraceIoError> {
        let mut head = BytesMut::with_capacity(1 << 10);
        head.put_slice(MAGIC);
        head.put_u8(D as u8);
        let meta_json = serde_json::to_vec(meta).expect("meta serializes");
        head.put_u32_le(meta_json.len() as u32);
        head.put_slice(&meta_json);
        w.write_all(&head.freeze())?;
        let count_pos = w.stream_position()?;
        w.write_all(&0u32.to_le_bytes())?;
        Ok(Self {
            w,
            count_pos,
            count: 0,
        })
    }

    /// Append one snapshot record.
    pub fn write_snapshot<const D: usize>(
        &mut self,
        snap: &Snapshot<D>,
    ) -> Result<(), TraceIoError> {
        let mut record = BytesMut::with_capacity(1 << 12);
        encode_snapshot(&mut record, snap);
        self.w.write_all(&record.freeze())?;
        self.count += 1;
        Ok(())
    }

    /// Backpatch the snapshot count, flush, and hand back the writer.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.w.seek(SeekFrom::Start(self.count_pos))?;
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Map an end-of-stream read to a format error: at this layer a short
/// stream is malformed data, not an I/O accident.
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Format("truncated trace".into())
        } else {
            TraceIoError::Io(e)
        }
    })
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, TraceIoError> {
    let mut b = [0u8; 1];
    read_exact_or_truncated(r, &mut b)?;
    Ok(b[0])
}

fn read_u16_le<R: Read>(r: &mut R) -> Result<u16, TraceIoError> {
    let mut b = [0u8; 2];
    read_exact_or_truncated(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32_le<R: Read>(r: &mut R) -> Result<u32, TraceIoError> {
    let mut b = [0u8; 4];
    read_exact_or_truncated(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f64_le<R: Read>(r: &mut R) -> Result<f64, TraceIoError> {
    let mut b = [0u8; 8];
    read_exact_or_truncated(r, &mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_rect<const D: usize, R: Read>(r: &mut R) -> Result<AABox<D>, TraceIoError> {
    let mut raw = [0i64; D];
    for v in raw.iter_mut() {
        let mut b = [0u8; 4];
        read_exact_or_truncated(r, &mut b)?;
        *v = i32::from_le_bytes(b) as i64;
    }
    let lo = Point::<D>::from_fn(|i| raw[i]);
    for v in raw.iter_mut() {
        let mut b = [0u8; 4];
        read_exact_or_truncated(r, &mut b)?;
        *v = i32::from_le_bytes(b) as i64;
    }
    let hi = Point::<D>::from_fn(|i| raw[i]);
    AABox::try_new(lo, hi).ok_or_else(|| TraceIoError::Format(format!("empty rect {lo:?}..{hi:?}")))
}

/// Streaming binary reader: parses the header on construction and then
/// one record per pull, validating each snapshot before yielding. Per-
/// level allocations are grown incrementally, so a hostile patch count
/// fails at end of input instead of reserving gigabytes.
pub struct BinarySnapshotReader<const D: usize, R: Read> {
    r: R,
    meta: TraceMeta<D>,
    remaining: u32,
    total: u32,
    last_step: Option<u32>,
}

impl<const D: usize, R: Read> BinarySnapshotReader<D, R> {
    /// Read and check the stream header.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut head = [0u8; 9];
        r.read_exact(&mut head).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Format("truncated trace header".into())
            } else {
                TraceIoError::Io(e)
            }
        })?;
        if &head[..8] != MAGIC {
            return Err(TraceIoError::Format("bad magic".into()));
        }
        let dim = head[8] as usize;
        if !(dim == 2 || dim == 3) {
            return Err(TraceIoError::Format(format!(
                "unsupported trace dimension {dim}"
            )));
        }
        if dim != D {
            return Err(TraceIoError::Format(format!(
                "trace dimension mismatch: stream carries {dim}-D, expected {D}-D"
            )));
        }
        let meta_len = read_u32_le(&mut r)? as usize;
        // The metadata is one JSON object; cap the buffer growth by
        // reading incrementally so a hostile length fails at EOF.
        let mut meta_json = vec![0u8; meta_len.min(1 << 16)];
        read_exact_or_truncated(&mut r, &mut meta_json)?;
        while meta_json.len() < meta_len {
            let take = (meta_len - meta_json.len()).min(1 << 16);
            let start = meta_json.len();
            meta_json.resize(start + take, 0);
            read_exact_or_truncated(&mut r, &mut meta_json[start..])?;
        }
        let meta: TraceMeta<D> = serde_json::from_slice(&meta_json)?;
        let total = read_u32_le(&mut r)?;
        Ok(Self {
            r,
            meta,
            remaining: total,
            total,
            last_step: None,
        })
    }
}

impl<const D: usize, R: Read> SnapshotSource<D> for BinarySnapshotReader<D, R> {
    fn meta(&self) -> &TraceMeta<D> {
        &self.meta
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let step = read_u32_le(&mut self.r)?;
        let time = read_f64_le(&mut self.r)?;
        let base = read_rect::<D, _>(&mut self.r)?;
        let ratio = read_u8(&mut self.r)? as i64;
        if !(2..=16).contains(&ratio) {
            return Err(TraceIoError::Format(format!(
                "implausible refinement ratio {ratio}"
            )));
        }
        let n_levels = read_u16_le(&mut self.r)? as usize;
        if n_levels > 32 {
            return Err(TraceIoError::Format(format!(
                "implausible level count {n_levels}"
            )));
        }
        let mut level_rects: Vec<Vec<AABox<D>>> = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_patches = read_u32_le(&mut self.r)? as usize;
            let mut rects = Vec::with_capacity(n_patches.min(1 << 16));
            for _ in 0..n_patches {
                rects.push(read_rect::<D, _>(&mut self.r)?);
            }
            level_rects.push(rects);
        }
        let snap = Snapshot {
            step,
            time,
            hierarchy: GridHierarchy {
                base_domain: base,
                ratio,
                levels: level_rects.iter().map(|r| Level::from_rects(r)).collect(),
            },
        };
        validate_snapshot(&self.meta, &mut self.last_step, &snap)?;
        self.remaining -= 1;
        Ok(Some(snap))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total as usize)
    }
}

/// Encode a trace into the compact binary format.
pub fn encode_binary<const D: usize>(trace: &HierarchyTrace<D>) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u8(D as u8);
    let meta_json = serde_json::to_vec(&trace.meta).expect("meta serializes");
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    buf.put_u32_le(trace.snapshots.len() as u32);
    for s in &trace.snapshots {
        encode_snapshot(&mut buf, s);
    }
    buf.freeze()
}

/// Encode a dimension-erased trace.
pub fn encode_binary_any(trace: &AnyTrace) -> Bytes {
    match trace {
        AnyTrace::D2(t) => encode_binary(t),
        AnyTrace::D3(t) => encode_binary(t),
    }
}

/// Sniff the dimension byte of a binary trace header, validating the
/// magic. Returns an error for short or foreign byte streams.
pub fn binary_dim(data: &[u8]) -> Result<usize, TraceIoError> {
    if data.len() < 9 {
        return Err(TraceIoError::Format("truncated trace header".into()));
    }
    if &data[..8] != MAGIC {
        return Err(TraceIoError::Format("bad magic".into()));
    }
    match data[8] {
        d @ (2 | 3) => Ok(d as usize),
        other => Err(TraceIoError::Format(format!(
            "unsupported trace dimension {other}"
        ))),
    }
}

/// Decode a binary trace produced by [`encode_binary`]. The stream's
/// dimension byte must match `D`; use [`decode_binary_any`] to dispatch
/// on it instead. A collect over [`BinarySnapshotReader`]; trailing bytes
/// after the declared snapshot count are ignored, as before.
pub fn decode_binary<const D: usize>(data: Bytes) -> Result<HierarchyTrace<D>, TraceIoError> {
    let mut slice: &[u8] = &data;
    collect_source(BinarySnapshotReader::<D, _>::new(&mut slice)?)
}

/// Decode a binary trace of either dimension, dispatching on the header's
/// dimension byte.
pub fn decode_binary_any(data: Bytes) -> Result<AnyTrace, TraceIoError> {
    match binary_dim(&data)? {
        2 => decode_binary::<2>(data).map(AnyTrace::D2),
        3 => decode_binary::<3>(data).map(AnyTrace::D3),
        _ => unreachable!("binary_dim only returns supported dimensions"),
    }
}

fn put_rect<const D: usize>(buf: &mut BytesMut, r: &AABox<D>) {
    for i in 0..D {
        buf.put_i32_le(r.lo()[i] as i32);
    }
    for i in 0..D {
        buf.put_i32_le(r.hi()[i] as i32);
    }
}

// ---------------------------------------------------------------------------
// File sniffing
// ---------------------------------------------------------------------------

/// Open a trace file as a dimension-erased streaming snapshot source,
/// sniffing the format (binary `SAMRTRC2` vs. JSON-lines) and the
/// dimension from the header — the single file entry point the CLI and
/// the engine's spill cache share. Only the header is parsed eagerly;
/// snapshots stream on demand.
pub fn open_trace_source(path: &Path) -> Result<AnySnapshotSource, TraceIoError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 9];
    let mut got = 0usize;
    while got < head.len() {
        let n = file.read(&mut head[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    file.seek(SeekFrom::Start(0))?;
    if got >= 9 && &head[..8] == MAGIC {
        let r = io::BufReader::new(file);
        return match head[8] {
            2 => Ok(AnySnapshotSource::D2(Box::new(
                BinarySnapshotReader::<2, _>::new(r)?,
            ))),
            3 => Ok(AnySnapshotSource::D3(Box::new(
                BinarySnapshotReader::<3, _>::new(r)?,
            ))),
            other => Err(TraceIoError::Format(format!(
                "unsupported trace dimension {other}"
            ))),
        };
    }
    if got >= 7 && head.starts_with(b"SAMRTRC") {
        // A binary trace of another format version (e.g. the
        // pre-dimension-tag SAMRTRC1): fail with an actionable message
        // instead of feeding binary bytes to the JSONL parser.
        return Err(TraceIoError::Format(format!(
            "unsupported binary trace version {:?}; regenerate with `samr generate`",
            String::from_utf8_lossy(&head[..8])
        )));
    }
    // JSON-lines: sniff the dimension from the metadata line, rewind, and
    // hand the stream to the typed reader.
    let mut r = io::BufReader::new(file);
    let mut first = String::new();
    if r.read_line(&mut first)? == 0 {
        return Err(TraceIoError::Format("empty trace stream".into()));
    }
    let dim = jsonl_meta_dim(&first)?;
    let mut file = r.into_inner();
    file.seek(SeekFrom::Start(0))?;
    let r = io::BufReader::new(file);
    match dim {
        2 => Ok(AnySnapshotSource::D2(Box::new(
            JsonlSnapshotReader::<2, _>::new(r)?,
        ))),
        3 => Ok(AnySnapshotSource::D3(Box::new(
            JsonlSnapshotReader::<3, _>::new(r)?,
        ))),
        other => Err(TraceIoError::Format(format!(
            "unsupported trace dimension {other}"
        ))),
    }
}

/// Stream a snapshot source to a seekable sink in the binary format,
/// returning the number of snapshots written. The bounded-memory
/// generate-straight-to-disk path: one snapshot resident at a time.
pub fn write_binary_source<const D: usize, W: Write + Seek>(
    src: &mut (dyn SnapshotSource<D> + '_),
    w: W,
) -> Result<u32, TraceIoError> {
    let mut out = BinarySnapshotWriter::new(w, src.meta())?;
    let mut n = 0u32;
    while let Some(snap) = src.next_snapshot()? {
        out.write_snapshot(&snap)?;
        n += 1;
    }
    out.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    fn sample_trace() -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "TEST".into(),
            description: "io roundtrip".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 7,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..5u32 {
            let off = step as i64;
            let l1 = Rect2::from_coords(2 + off, 2 + off, 11 + off, 11 + off);
            let l2 = l1.refine(2).shrink(4).unwrap();
            t.push(Snapshot {
                step,
                time: step as f64 * 0.25,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(16, 16),
                    2,
                    &[vec![], vec![l1], vec![l2]],
                ),
            });
        }
        t
    }

    fn sample_trace_3d() -> HierarchyTrace<3> {
        let meta = TraceMeta {
            app: "SP3D".into(),
            description: "io roundtrip (3-D)".into(),
            base_domain: Box3::from_extents(12, 12, 12),
            ratio: 2,
            max_levels: 3,
            regrid_interval: 4,
            min_block: 2,
            seed: 7,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..4u32 {
            let off = step as i64;
            let l1 = Box3::from_coords(2 + off, 2, 2, 7 + off, 7, 7);
            t.push(Snapshot {
                step,
                time: step as f64 * 0.25,
                hierarchy: GridHierarchy::from_level_rects(
                    Box3::from_extents(12, 12, 12),
                    2,
                    &[vec![], vec![l1]],
                ),
            });
        }
        t
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl::<2, _>(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_roundtrip_3d_and_any() {
        let t = sample_trace_3d();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl::<3, _>(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
        let any = read_jsonl_any(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(any, AnyTrace::D3(t));
        // A 3-D stream read as 2-D errors out cleanly.
        assert!(read_jsonl::<2, _>(io::BufReader::new(&buf[..])).is_err());
    }

    #[test]
    fn jsonl_is_line_oriented() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + t.len());
        assert!(text.lines().next().unwrap().contains("\"app\":\"TEST\""));
        assert!(text.lines().next().unwrap().contains("\"dim\":2"));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        let back = decode_binary::<2>(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_roundtrip_3d_and_any() {
        let t = sample_trace_3d();
        let bytes = encode_binary(&t);
        assert_eq!(binary_dim(&bytes).unwrap(), 3);
        let back = decode_binary::<3>(bytes.clone()).unwrap();
        assert_eq!(t, back);
        let any = decode_binary_any(bytes.clone()).unwrap();
        assert_eq!(any, AnyTrace::D3(t));
        // Dimension mismatch is a clean error, not a mis-parse.
        let err = decode_binary::<2>(bytes).unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn streaming_binary_writer_matches_batch_encoder() {
        let t = sample_trace();
        let mut cursor = io::Cursor::new(Vec::new());
        {
            let mut w = BinarySnapshotWriter::new(&mut cursor, &t.meta).unwrap();
            for s in &t.snapshots {
                w.write_snapshot(s).unwrap();
            }
            w.finish().unwrap();
        }
        assert_eq!(cursor.into_inner(), encode_binary(&t).to_vec());
    }

    #[test]
    fn streaming_binary_reader_pulls_one_snapshot_at_a_time() {
        let t = sample_trace_3d();
        let bytes = encode_binary(&t);
        let mut slice: &[u8] = &bytes;
        let mut r = BinarySnapshotReader::<3, _>::new(&mut slice).unwrap();
        assert_eq!(r.len_hint(), Some(t.len()));
        assert_eq!(r.meta(), &t.meta);
        for want in &t.snapshots {
            assert_eq!(r.next_snapshot().unwrap().as_ref(), Some(want));
        }
        assert!(r.next_snapshot().unwrap().is_none());
        assert!(r.next_snapshot().unwrap().is_none());
    }

    #[test]
    fn streaming_readers_reject_corruption_like_batch_decoders() {
        // Non-monotone steps through the streaming JSONL reader.
        let t = sample_trace();
        let mut buf = Vec::new();
        let mut w = JsonlSnapshotWriter::new(&mut buf, &t.meta).unwrap();
        w.write_snapshot(&t.snapshots[1]).unwrap();
        w.write_snapshot(&t.snapshots[0]).unwrap();
        w.finish().unwrap();
        let mut r = JsonlSnapshotReader::<2, _>::new(io::BufReader::new(&buf[..])).unwrap();
        assert!(r.next_snapshot().unwrap().is_some());
        let err = r.next_snapshot().unwrap_err();
        assert!(err.to_string().contains("strictly increasing"), "{err}");
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let mut json = Vec::new();
        write_jsonl(&t, &mut json).unwrap();
        let bin = encode_binary(&t);
        assert!(
            bin.len() * 2 < json.len(),
            "{} vs {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let err = decode_binary::<2>(Bytes::from_static(b"NOTMAGIC.....")).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(binary_dim(b"NOTMAGIC.....").is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        for cut in [3usize, 9, 20, bytes.len() - 5] {
            let err = decode_binary::<2>(bytes.slice(..cut)).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Format(_) | TraceIoError::Json(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(read_jsonl::<2, _>(io::BufReader::new(&b""[..])).is_err());
        assert!(read_jsonl_any(io::BufReader::new(&b""[..])).is_err());
    }

    #[test]
    fn open_trace_source_sniffs_both_formats() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("samr-trace-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("t.bin.trace");
        let jsonl_path = dir.join("t.jsonl.trace");
        std::fs::write(&bin_path, &encode_binary(&t)[..]).unwrap();
        let mut jf = Vec::new();
        write_jsonl(&t, &mut jf).unwrap();
        std::fs::write(&jsonl_path, jf).unwrap();
        for path in [&bin_path, &jsonl_path] {
            let src = open_trace_source(path).unwrap();
            assert_eq!(src.dim(), 2);
            assert_eq!(src.collect().unwrap(), AnyTrace::D2(t.clone()));
        }
        // Unknown versions fail with an actionable message.
        let old = dir.join("t.old.trace");
        std::fs::write(&old, b"SAMRTRC1xxxxxxxx").unwrap();
        let err = match open_trace_source(&old) {
            Err(e) => e,
            Ok(_) => panic!("unknown binary version must not open"),
        };
        assert!(err.to_string().contains("unsupported binary trace version"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_binary_source_streams_a_memory_source() {
        use crate::source::MemorySource;
        let t = sample_trace();
        let mut src = MemorySource::new(&t);
        let mut cursor = io::Cursor::new(Vec::new());
        let n = write_binary_source::<2, _>(&mut src, &mut cursor).unwrap();
        assert_eq!(n as usize, t.len());
        assert_eq!(cursor.into_inner(), encode_binary(&t).to_vec());
    }
}
