//! Trace serialization: JSON-lines and a compact binary format, generic
//! over the dimension.
//!
//! JSON-lines is the interchange/inspection format (one snapshot per line,
//! greppable, diff-able); the binary format is for large parameter sweeps
//! where trace I/O would otherwise dominate. Both roundtrip exactly, and
//! both carry the spatial dimension explicitly (the metadata's `dim`
//! field in JSON, a dimension byte after the magic in binary) so readers
//! can dispatch without guessing.

use crate::trace::{AnyTrace, HierarchyTrace, Snapshot, TraceMeta};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use samr_geom::{AABox, Point};
use samr_grid::{GridHierarchy, Level};
use serde::Deserialize;
use std::io::{self, BufRead, Read, Write};

/// Magic bytes of the binary format (version 2: dimension-tagged).
const MAGIC: &[u8; 8] = b"SAMRTRC2";

/// Errors from trace deserialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Structural problem in the encoded data.
    Format(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::Json(e) => write!(f, "trace JSON error: {e}"),
            Self::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Write a trace as JSON-lines: the first line is the metadata, every
/// following line one snapshot.
pub fn write_jsonl<const D: usize, W: Write>(
    trace: &HierarchyTrace<D>,
    mut w: W,
) -> Result<(), TraceIoError> {
    serde_json::to_writer(&mut w, &trace.meta)?;
    w.write_all(b"\n")?;
    for s in &trace.snapshots {
        serde_json::to_writer(&mut w, s)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a JSON-lines trace written by [`write_jsonl`].
pub fn read_jsonl<const D: usize, R: BufRead>(r: R) -> Result<HierarchyTrace<D>, TraceIoError> {
    let mut lines = r.lines();
    let meta_line = lines
        .next()
        .ok_or_else(|| TraceIoError::Format("empty trace stream".into()))??;
    let meta: TraceMeta<D> = serde_json::from_str(&meta_line)?;
    let mut trace = HierarchyTrace::new(meta);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let snap: Snapshot<D> = serde_json::from_str(&line)?;
        trace.try_push(snap).map_err(TraceIoError::Format)?;
    }
    Ok(trace)
}

/// Read a JSON-lines trace of either dimension, dispatching on the
/// metadata's `dim` field. Only the metadata line is buffered; the
/// snapshot lines stream through [`read_jsonl`] as usual.
pub fn read_jsonl_any<R: BufRead>(mut r: R) -> Result<AnyTrace, TraceIoError> {
    let mut first = String::new();
    if r.read_line(&mut first)? == 0 {
        return Err(TraceIoError::Format("empty trace stream".into()));
    }
    let dim = serde_json::value_from_slice(first.trim_end().as_bytes())
        .ok()
        .and_then(|v| v.get("dim").and_then(|d| usize::deserialize(d).ok()))
        .ok_or_else(|| TraceIoError::Format("metadata line carries no dimension".into()))?;
    let rest = std::io::Cursor::new(first.into_bytes()).chain(r);
    match dim {
        2 => read_jsonl::<2, _>(std::io::BufReader::new(rest)).map(AnyTrace::D2),
        3 => read_jsonl::<3, _>(std::io::BufReader::new(rest)).map(AnyTrace::D3),
        other => Err(TraceIoError::Format(format!(
            "unsupported trace dimension {other}"
        ))),
    }
}

/// Encode a trace into the compact binary format.
pub fn encode_binary<const D: usize>(trace: &HierarchyTrace<D>) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u8(D as u8);
    let meta_json = serde_json::to_vec(&trace.meta).expect("meta serializes");
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    buf.put_u32_le(trace.snapshots.len() as u32);
    for s in &trace.snapshots {
        buf.put_u32_le(s.step);
        buf.put_f64_le(s.time);
        put_rect(&mut buf, &s.hierarchy.base_domain);
        buf.put_u8(s.hierarchy.ratio as u8);
        buf.put_u16_le(s.hierarchy.levels.len() as u16);
        for level in &s.hierarchy.levels {
            buf.put_u32_le(level.patches.len() as u32);
            for p in &level.patches {
                put_rect(&mut buf, &p.rect);
            }
        }
    }
    buf.freeze()
}

/// Encode a dimension-erased trace.
pub fn encode_binary_any(trace: &AnyTrace) -> Bytes {
    match trace {
        AnyTrace::D2(t) => encode_binary(t),
        AnyTrace::D3(t) => encode_binary(t),
    }
}

/// Sniff the dimension byte of a binary trace header, validating the
/// magic. Returns an error for short or foreign byte streams.
pub fn binary_dim(data: &[u8]) -> Result<usize, TraceIoError> {
    if data.len() < 9 {
        return Err(TraceIoError::Format("truncated trace header".into()));
    }
    if &data[..8] != MAGIC {
        return Err(TraceIoError::Format("bad magic".into()));
    }
    match data[8] {
        d @ (2 | 3) => Ok(d as usize),
        other => Err(TraceIoError::Format(format!(
            "unsupported trace dimension {other}"
        ))),
    }
}

/// Decode a binary trace produced by [`encode_binary`]. The stream's
/// dimension byte must match `D`; use [`decode_binary_any`] to dispatch
/// on it instead.
pub fn decode_binary<const D: usize>(mut data: Bytes) -> Result<HierarchyTrace<D>, TraceIoError> {
    let need = |data: &Bytes, n: usize| -> Result<(), TraceIoError> {
        if data.remaining() < n {
            Err(TraceIoError::Format(format!(
                "truncated trace: need {n} more bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&data, 9)?;
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceIoError::Format("bad magic".into()));
    }
    let dim = data.get_u8() as usize;
    if dim != D {
        return Err(TraceIoError::Format(format!(
            "trace dimension mismatch: stream carries {dim}-D, expected {D}-D"
        )));
    }
    need(&data, 4)?;
    let meta_len = data.get_u32_le() as usize;
    need(&data, meta_len)?;
    let meta_json = data.split_to(meta_len);
    let meta: TraceMeta<D> = serde_json::from_slice(&meta_json)?;
    let mut trace = HierarchyTrace::new(meta);
    need(&data, 4)?;
    let n_snaps = data.get_u32_le();
    for _ in 0..n_snaps {
        need(&data, 4 + 8)?;
        let step = data.get_u32_le();
        let time = data.get_f64_le();
        let base = get_rect::<D>(&mut data, &need)?;
        need(&data, 3)?;
        let ratio = data.get_u8() as i64;
        if !(2..=16).contains(&ratio) {
            return Err(TraceIoError::Format(format!(
                "implausible refinement ratio {ratio}"
            )));
        }
        let n_levels = data.get_u16_le() as usize;
        if n_levels > 32 {
            return Err(TraceIoError::Format(format!(
                "implausible level count {n_levels}"
            )));
        }
        let mut level_rects: Vec<Vec<AABox<D>>> = Vec::with_capacity(n_levels);
        let rect_bytes = 8 * D;
        for _ in 0..n_levels {
            need(&data, 4)?;
            let n_patches = data.get_u32_le() as usize;
            // Bound the allocation by the bytes actually present: each
            // patch needs `rect_bytes`, so a hostile count fails here
            // instead of reserving gigabytes.
            need(&data, n_patches.saturating_mul(rect_bytes))?;
            let mut rects = Vec::with_capacity(n_patches);
            for _ in 0..n_patches {
                rects.push(get_rect::<D>(&mut data, &need)?);
            }
            level_rects.push(rects);
        }
        let hierarchy = GridHierarchy {
            base_domain: base,
            ratio,
            levels: level_rects.iter().map(|r| Level::from_rects(r)).collect(),
        };
        trace
            .try_push(Snapshot {
                step,
                time,
                hierarchy,
            })
            .map_err(TraceIoError::Format)?;
    }
    Ok(trace)
}

/// Decode a binary trace of either dimension, dispatching on the header's
/// dimension byte.
pub fn decode_binary_any(data: Bytes) -> Result<AnyTrace, TraceIoError> {
    match binary_dim(&data)? {
        2 => decode_binary::<2>(data).map(AnyTrace::D2),
        3 => decode_binary::<3>(data).map(AnyTrace::D3),
        _ => unreachable!("binary_dim only returns supported dimensions"),
    }
}

fn put_rect<const D: usize>(buf: &mut BytesMut, r: &AABox<D>) {
    for i in 0..D {
        buf.put_i32_le(r.lo()[i] as i32);
    }
    for i in 0..D {
        buf.put_i32_le(r.hi()[i] as i32);
    }
}

fn get_rect<const D: usize>(
    data: &mut Bytes,
    need: &impl Fn(&Bytes, usize) -> Result<(), TraceIoError>,
) -> Result<AABox<D>, TraceIoError> {
    need(data, 8 * D)?;
    let lo = Point::<D>::from_fn(|_| data.get_i32_le() as i64);
    let hi = Point::<D>::from_fn(|_| data.get_i32_le() as i64);
    AABox::try_new(lo, hi).ok_or_else(|| TraceIoError::Format(format!("empty rect {lo:?}..{hi:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    fn sample_trace() -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "TEST".into(),
            description: "io roundtrip".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 7,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..5u32 {
            let off = step as i64;
            let l1 = Rect2::from_coords(2 + off, 2 + off, 11 + off, 11 + off);
            let l2 = l1.refine(2).shrink(4).unwrap();
            t.push(Snapshot {
                step,
                time: step as f64 * 0.25,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(16, 16),
                    2,
                    &[vec![], vec![l1], vec![l2]],
                ),
            });
        }
        t
    }

    fn sample_trace_3d() -> HierarchyTrace<3> {
        let meta = TraceMeta {
            app: "SP3D".into(),
            description: "io roundtrip (3-D)".into(),
            base_domain: Box3::from_extents(12, 12, 12),
            ratio: 2,
            max_levels: 3,
            regrid_interval: 4,
            min_block: 2,
            seed: 7,
        };
        let mut t = HierarchyTrace::new(meta);
        for step in 0..4u32 {
            let off = step as i64;
            let l1 = Box3::from_coords(2 + off, 2, 2, 7 + off, 7, 7);
            t.push(Snapshot {
                step,
                time: step as f64 * 0.25,
                hierarchy: GridHierarchy::from_level_rects(
                    Box3::from_extents(12, 12, 12),
                    2,
                    &[vec![], vec![l1]],
                ),
            });
        }
        t
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl::<2, _>(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_roundtrip_3d_and_any() {
        let t = sample_trace_3d();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl::<3, _>(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
        let any = read_jsonl_any(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(any, AnyTrace::D3(t));
        // A 3-D stream read as 2-D errors out cleanly.
        assert!(read_jsonl::<2, _>(io::BufReader::new(&buf[..])).is_err());
    }

    #[test]
    fn jsonl_is_line_oriented() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + t.len());
        assert!(text.lines().next().unwrap().contains("\"app\":\"TEST\""));
        assert!(text.lines().next().unwrap().contains("\"dim\":2"));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        let back = decode_binary::<2>(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_roundtrip_3d_and_any() {
        let t = sample_trace_3d();
        let bytes = encode_binary(&t);
        assert_eq!(binary_dim(&bytes).unwrap(), 3);
        let back = decode_binary::<3>(bytes.clone()).unwrap();
        assert_eq!(t, back);
        let any = decode_binary_any(bytes.clone()).unwrap();
        assert_eq!(any, AnyTrace::D3(t));
        // Dimension mismatch is a clean error, not a mis-parse.
        let err = decode_binary::<2>(bytes).unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let mut json = Vec::new();
        write_jsonl(&t, &mut json).unwrap();
        let bin = encode_binary(&t);
        assert!(
            bin.len() * 2 < json.len(),
            "{} vs {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let err = decode_binary::<2>(Bytes::from_static(b"NOTMAGIC.....")).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(binary_dim(b"NOTMAGIC.....").is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample_trace();
        let bytes = encode_binary(&t);
        for cut in [3usize, 9, 20, bytes.len() - 5] {
            let err = decode_binary::<2>(bytes.slice(..cut)).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Format(_) | TraceIoError::Json(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(read_jsonl::<2, _>(io::BufReader::new(&b""[..])).is_err());
        assert!(read_jsonl_any(io::BufReader::new(&b""[..])).is_err());
    }
}
