//! Trace container types.

use samr_geom::Rect2;
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize};

/// Metadata describing how a trace was produced — the paper's §5.1.1
/// experimental configuration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Application kernel name (e.g. "BL2D").
    pub app: String,
    /// Free-text description of the scenario.
    pub description: String,
    /// Base-grid domain (level 0 index space).
    pub base_domain: Rect2,
    /// Space/time refinement factor between levels (paper: 2).
    pub ratio: i64,
    /// Maximum number of levels (paper: 5).
    pub max_levels: usize,
    /// Regrid interval in local steps per level (paper: 4).
    pub regrid_interval: u32,
    /// Minimum block dimension / granularity (paper: 2).
    pub min_block: i64,
    /// RNG seed used by the generator, for exact reproducibility.
    pub seed: u64,
}

/// The grid hierarchy at one coarse time step.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Coarse time-step index (0-based).
    pub step: u32,
    /// Physical simulation time of the snapshot.
    pub time: f64,
    /// The (unpartitioned) grid hierarchy.
    pub hierarchy: GridHierarchy,
}

/// A sequence of hierarchy snapshots, one per coarse time step.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct HierarchyTrace {
    /// Run configuration.
    pub meta: TraceMeta,
    /// Snapshots ordered by `step`.
    pub snapshots: Vec<Snapshot>,
}

impl HierarchyTrace {
    /// Create an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Self {
            meta,
            snapshots: Vec::new(),
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if the trace has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Append a snapshot; panics if steps are not strictly increasing or
    /// the hierarchy violates its structural invariants (the trace is the
    /// contract between the generator and both consumers, so it is
    /// validated at the boundary). Deserializers, which handle untrusted
    /// bytes, use [`HierarchyTrace::try_push`] instead.
    pub fn push(&mut self, snap: Snapshot) {
        self.try_push(snap)
            .unwrap_or_else(|e| panic!("invalid snapshot: {e}"));
    }

    /// Fallible variant of [`HierarchyTrace::push`]: returns an error
    /// instead of panicking when the snapshot is malformed.
    pub fn try_push(&mut self, snap: Snapshot) -> Result<(), String> {
        if let Some(last) = self.snapshots.last() {
            if snap.step <= last.step {
                return Err(format!(
                    "trace steps must be strictly increasing: {} after {}",
                    snap.step, last.step
                ));
            }
        }
        snap.hierarchy
            .validate(self.meta.min_block)
            .map_err(|e| format!("invalid hierarchy at step {}: {e}", snap.step))?;
        self.snapshots.push(snap);
        Ok(())
    }

    /// Iterate over consecutive snapshot pairs `(H_{t-1}, H_t)` — the unit
    /// the paper's β_m and relative migration are defined on.
    pub fn pairs(&self) -> impl Iterator<Item = (&Snapshot, &Snapshot)> + '_ {
        self.snapshots.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// The hierarchy at snapshot index `i`.
    pub fn hierarchy(&self, i: usize) -> &GridHierarchy {
        &self.snapshots[i].hierarchy
    }

    /// The largest `|H_t|` over the *first* `upto + 1` snapshots — the
    /// paper's §4.3 normalizer ("the largest grid encountered so far").
    pub fn max_points_so_far(&self, upto: usize) -> u64 {
        self.snapshots[..=upto]
            .iter()
            .map(|s| s.hierarchy.total_points())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn meta() -> TraceMeta {
        TraceMeta {
            app: "TEST".into(),
            description: "unit-test trace".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 42,
        }
    }

    fn snap(step: u32, rects: Vec<Vec<Rect2>>) -> Snapshot {
        Snapshot {
            step,
            time: step as f64 * 0.1,
            hierarchy: GridHierarchy::from_level_rects(Rect2::from_extents(16, 16), 2, &rects),
        }
    }

    #[test]
    fn push_and_iterate_pairs() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(0, vec![vec![]]));
        t.push(snap(
            1,
            vec![vec![], vec![Rect2::from_coords(4, 4, 11, 11)]],
        ));
        t.push(snap(
            2,
            vec![vec![], vec![Rect2::from_coords(6, 6, 13, 13)]],
        ));
        assert_eq!(t.len(), 3);
        let pairs: Vec<_> = t.pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.step, 0);
        assert_eq!(pairs[1].1.step, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_non_monotone_steps() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(1, vec![vec![]]));
        t.push(snap(1, vec![vec![]]));
    }

    #[test]
    #[should_panic(expected = "invalid hierarchy")]
    fn push_rejects_invalid_hierarchy() {
        let mut t = HierarchyTrace::new(meta());
        // Overlapping level-1 patches.
        t.push(snap(
            0,
            vec![
                vec![],
                vec![
                    Rect2::from_coords(4, 4, 11, 11),
                    Rect2::from_coords(10, 10, 13, 13),
                ],
            ],
        ));
    }

    #[test]
    fn max_points_so_far_is_running_max() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(
            0,
            vec![vec![], vec![Rect2::from_coords(0, 0, 15, 15)]],
        ));
        t.push(snap(1, vec![vec![]]));
        t.push(snap(2, vec![vec![], vec![Rect2::from_coords(0, 0, 7, 7)]]));
        let p0 = t.hierarchy(0).total_points();
        assert_eq!(t.max_points_so_far(0), p0);
        assert_eq!(t.max_points_so_far(1), p0);
        assert_eq!(t.max_points_so_far(2), p0);
    }
}
