//! Trace container types, generic over the dimension.

use samr_geom::AABox;
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize, Value};

/// Metadata describing how a trace was produced — the paper's §5.1.1
/// experimental configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceMeta<const D: usize> {
    /// Application kernel name (e.g. "BL2D").
    pub app: String,
    /// Free-text description of the scenario.
    pub description: String,
    /// Base-grid domain (level 0 index space).
    pub base_domain: AABox<D>,
    /// Space/time refinement factor between levels (paper: 2).
    pub ratio: i64,
    /// Maximum number of levels (paper: 5).
    pub max_levels: usize,
    /// Regrid interval in local steps per level (paper: 4).
    pub regrid_interval: u32,
    /// Minimum block dimension / granularity (paper: 2).
    pub min_block: i64,
    /// RNG seed used by the generator, for exact reproducibility.
    pub seed: u64,
}

impl<const D: usize> Serialize for TraceMeta<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("app".to_string(), self.app.serialize()),
            ("description".to_string(), self.description.serialize()),
            ("dim".to_string(), D.serialize()),
            ("base_domain".to_string(), self.base_domain.serialize()),
            ("ratio".to_string(), self.ratio.serialize()),
            ("max_levels".to_string(), self.max_levels.serialize()),
            (
                "regrid_interval".to_string(),
                self.regrid_interval.serialize(),
            ),
            ("min_block".to_string(), self.min_block.serialize()),
            ("seed".to_string(), self.seed.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for TraceMeta<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let dim: usize = serde::field(v, "dim")?;
        if dim != D {
            return Err(serde::Error::msg(format!(
                "trace dimension mismatch: stream carries {dim}-D, expected {D}-D"
            )));
        }
        Ok(Self {
            app: serde::field(v, "app")?,
            description: serde::field(v, "description")?,
            base_domain: serde::field(v, "base_domain")?,
            ratio: serde::field(v, "ratio")?,
            max_levels: serde::field(v, "max_levels")?,
            regrid_interval: serde::field(v, "regrid_interval")?,
            min_block: serde::field(v, "min_block")?,
            seed: serde::field(v, "seed")?,
        })
    }
}

/// The grid hierarchy at one coarse time step.
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot<const D: usize> {
    /// Coarse time-step index (0-based).
    pub step: u32,
    /// Physical simulation time of the snapshot.
    pub time: f64,
    /// The (unpartitioned) grid hierarchy.
    pub hierarchy: GridHierarchy<D>,
}

impl<const D: usize> Serialize for Snapshot<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("step".to_string(), self.step.serialize()),
            ("time".to_string(), self.time.serialize()),
            ("hierarchy".to_string(), self.hierarchy.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for Snapshot<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            step: serde::field(v, "step")?,
            time: serde::field(v, "time")?,
            hierarchy: serde::field(v, "hierarchy")?,
        })
    }
}

/// A sequence of hierarchy snapshots, one per coarse time step.
#[derive(Clone, PartialEq, Debug)]
pub struct HierarchyTrace<const D: usize> {
    /// Run configuration.
    pub meta: TraceMeta<D>,
    /// Snapshots ordered by `step`.
    pub snapshots: Vec<Snapshot<D>>,
}

impl<const D: usize> Serialize for HierarchyTrace<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("meta".to_string(), self.meta.serialize()),
            ("snapshots".to_string(), self.snapshots.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for HierarchyTrace<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            meta: serde::field(v, "meta")?,
            snapshots: serde::field(v, "snapshots")?,
        })
    }
}

impl<const D: usize> HierarchyTrace<D> {
    /// Create an empty trace with the given metadata.
    pub fn new(meta: TraceMeta<D>) -> Self {
        Self {
            meta,
            snapshots: Vec::new(),
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if the trace has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Append a snapshot; panics if steps are not strictly increasing or
    /// the hierarchy violates its structural invariants (the trace is the
    /// contract between the generator and both consumers, so it is
    /// validated at the boundary). Deserializers, which handle untrusted
    /// bytes, use [`HierarchyTrace::try_push`] instead.
    pub fn push(&mut self, snap: Snapshot<D>) {
        self.try_push(snap)
            .unwrap_or_else(|e| panic!("invalid snapshot: {e}"));
    }

    /// Fallible variant of [`HierarchyTrace::push`]: returns an error
    /// instead of panicking when the snapshot is malformed.
    pub fn try_push(&mut self, snap: Snapshot<D>) -> Result<(), String> {
        if let Some(last) = self.snapshots.last() {
            if snap.step <= last.step {
                return Err(format!(
                    "trace steps must be strictly increasing: {} after {}",
                    snap.step, last.step
                ));
            }
        }
        snap.hierarchy
            .validate(self.meta.min_block)
            .map_err(|e| format!("invalid hierarchy at step {}: {e}", snap.step))?;
        self.snapshots.push(snap);
        Ok(())
    }

    /// Iterate over consecutive snapshot pairs `(H_{t-1}, H_t)` — the unit
    /// the paper's β_m and relative migration are defined on.
    pub fn pairs(&self) -> impl Iterator<Item = (&Snapshot<D>, &Snapshot<D>)> + '_ {
        self.snapshots.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// The hierarchy at snapshot index `i`.
    pub fn hierarchy(&self, i: usize) -> &GridHierarchy<D> {
        &self.snapshots[i].hierarchy
    }

    /// The largest `|H_t|` over the *first* `upto + 1` snapshots — the
    /// paper's §4.3 normalizer ("the largest grid encountered so far").
    pub fn max_points_so_far(&self, upto: usize) -> u64 {
        self.snapshots[..=upto]
            .iter()
            .map(|s| s.hierarchy.total_points())
            .max()
            .unwrap_or(0)
    }

    /// Rough in-memory footprint of the trace in bytes (snapshot, level
    /// and patch payloads). Used by the engine's trace-cache byte budget
    /// to decide between keeping a trace resident and spilling it to
    /// disk; an estimate, not an allocator-exact measurement.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut total = size_of::<Self>() as u64;
        for s in &self.snapshots {
            total += size_of::<Snapshot<D>>() as u64;
            for l in &s.hierarchy.levels {
                total += size_of::<samr_grid::Level<D>>() as u64
                    + (l.patches.len() * size_of::<samr_grid::Patch<D>>()) as u64;
            }
        }
        total
    }
}

/// A trace of either supported dimension — the dimension-erased form the
/// campaign engine's shared store and the CLI traffic in. Pipeline code
/// matches on the variant once and then runs dimension-generic.
#[derive(Clone, PartialEq, Debug)]
pub enum AnyTrace {
    /// A 2-D trace.
    D2(HierarchyTrace<2>),
    /// A 3-D trace.
    D3(HierarchyTrace<3>),
}

impl AnyTrace {
    /// The spatial dimension of the trace.
    pub fn dim(&self) -> usize {
        match self {
            AnyTrace::D2(_) => 2,
            AnyTrace::D3(_) => 3,
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        match self {
            AnyTrace::D2(t) => t.len(),
            AnyTrace::D3(t) => t.len(),
        }
    }

    /// `true` if the trace has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The application name recorded in the metadata.
    pub fn app(&self) -> &str {
        match self {
            AnyTrace::D2(t) => &t.meta.app,
            AnyTrace::D3(t) => &t.meta.app,
        }
    }

    /// The 2-D trace, if this is one.
    pub fn as_2d(&self) -> Option<&HierarchyTrace<2>> {
        match self {
            AnyTrace::D2(t) => Some(t),
            AnyTrace::D3(_) => None,
        }
    }

    /// The 3-D trace, if this is one.
    pub fn as_3d(&self) -> Option<&HierarchyTrace<3>> {
        match self {
            AnyTrace::D2(_) => None,
            AnyTrace::D3(t) => Some(t),
        }
    }

    /// Rough in-memory footprint in bytes (see
    /// [`HierarchyTrace::approx_bytes`]).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            AnyTrace::D2(t) => t.approx_bytes(),
            AnyTrace::D3(t) => t.approx_bytes(),
        }
    }
}

impl From<HierarchyTrace<2>> for AnyTrace {
    fn from(t: HierarchyTrace<2>) -> Self {
        AnyTrace::D2(t)
    }
}

impl From<HierarchyTrace<3>> for AnyTrace {
    fn from(t: HierarchyTrace<3>) -> Self {
        AnyTrace::D3(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    pub(crate) fn meta() -> TraceMeta<2> {
        TraceMeta {
            app: "TEST".into(),
            description: "unit-test trace".into(),
            base_domain: Rect2::from_extents(16, 16),
            ratio: 2,
            max_levels: 5,
            regrid_interval: 4,
            min_block: 2,
            seed: 42,
        }
    }

    fn snap(step: u32, rects: Vec<Vec<Rect2>>) -> Snapshot<2> {
        Snapshot {
            step,
            time: step as f64 * 0.1,
            hierarchy: GridHierarchy::from_level_rects(Rect2::from_extents(16, 16), 2, &rects),
        }
    }

    #[test]
    fn push_and_iterate_pairs() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(0, vec![vec![]]));
        t.push(snap(
            1,
            vec![vec![], vec![Rect2::from_coords(4, 4, 11, 11)]],
        ));
        t.push(snap(
            2,
            vec![vec![], vec![Rect2::from_coords(6, 6, 13, 13)]],
        ));
        assert_eq!(t.len(), 3);
        let pairs: Vec<_> = t.pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.step, 0);
        assert_eq!(pairs[1].1.step, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_non_monotone_steps() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(1, vec![vec![]]));
        t.push(snap(1, vec![vec![]]));
    }

    #[test]
    #[should_panic(expected = "invalid hierarchy")]
    fn push_rejects_invalid_hierarchy() {
        let mut t = HierarchyTrace::new(meta());
        // Overlapping level-1 patches.
        t.push(snap(
            0,
            vec![
                vec![],
                vec![
                    Rect2::from_coords(4, 4, 11, 11),
                    Rect2::from_coords(10, 10, 13, 13),
                ],
            ],
        ));
    }

    #[test]
    fn max_points_so_far_is_running_max() {
        let mut t = HierarchyTrace::new(meta());
        t.push(snap(
            0,
            vec![vec![], vec![Rect2::from_coords(0, 0, 15, 15)]],
        ));
        t.push(snap(1, vec![vec![]]));
        t.push(snap(2, vec![vec![], vec![Rect2::from_coords(0, 0, 7, 7)]]));
        let p0 = t.hierarchy(0).total_points();
        assert_eq!(t.max_points_so_far(0), p0);
        assert_eq!(t.max_points_so_far(1), p0);
        assert_eq!(t.max_points_so_far(2), p0);
    }

    #[test]
    fn three_d_trace_validates_on_push() {
        let meta3 = TraceMeta::<3> {
            app: "SP3D".into(),
            description: "3-D unit test".into(),
            base_domain: Box3::from_extents(8, 8, 8),
            ratio: 2,
            max_levels: 3,
            regrid_interval: 4,
            min_block: 2,
            seed: 1,
        };
        let mut t = HierarchyTrace::new(meta3);
        t.push(Snapshot {
            step: 0,
            time: 0.0,
            hierarchy: GridHierarchy::from_level_rects(
                Box3::from_extents(8, 8, 8),
                2,
                &[vec![], vec![Box3::from_coords(2, 2, 2, 9, 9, 9)]],
            ),
        });
        assert_eq!(t.len(), 1);
        let any: AnyTrace = t.into();
        assert_eq!(any.dim(), 3);
        assert!(any.as_3d().is_some());
        assert!(any.as_2d().is_none());
    }

    #[test]
    fn meta_serde_carries_and_checks_dim() {
        let m = meta();
        let v = m.serialize();
        assert_eq!(TraceMeta::<2>::deserialize(&v).unwrap(), m);
        assert!(TraceMeta::<3>::deserialize(&v)
            .unwrap_err()
            .to_string()
            .contains("dimension mismatch"));
    }
}
