//! # samr-trace — grid-hierarchy traces
//!
//! The paper's entire validation methodology is *trace-driven* (§5.1.3):
//! an application execution trace captures the state of the SAMR grid
//! hierarchy at every regrid step, **independent of any partitioning**, and
//! is then consumed twice — once by the model (producing `β_m`, `β_c` per
//! step) and once by the partitioner + execution simulator (producing the
//! actual relative migration and communication). This crate is that trace:
//!
//! - [`Snapshot`]: the hierarchy at one coarse time step;
//! - [`HierarchyTrace`]: the full sequence plus run metadata;
//! - [`SnapshotSource`]: the pull-based streaming form — one snapshot
//!   resident at a time, so paper-scale sweeps stay in bounded memory
//!   from the generator to the consumers;
//! - [`io`]: JSON-lines (human-inspectable) and compact binary
//!   serialization, each with batch and streaming readers *and* writers;
//! - [`TraceStats`]: aggregate descriptors of a trace (size dynamics,
//!   depth usage) used by the experiment harness.

#![warn(missing_docs)]

pub mod io;
pub mod source;
pub mod stats;
pub mod trace;

pub use source::{shared_source, AnySnapshotSource, MemorySource, SnapshotSource};
pub use stats::TraceStats;
pub use trace::{AnyTrace, HierarchyTrace, Snapshot, TraceMeta};
