//! Failure injection: the binary trace decoder must reject arbitrary and
//! corrupted inputs with an error — never panic, never loop, never
//! allocate unboundedly. Exercised against both the 2-D and the 3-D
//! decoder instantiation, since the dimension byte steers the per-box
//! record size.

use proptest::prelude::*;
use samr_geom::{Box3, Rect2};
use samr_grid::GridHierarchy;
use samr_trace::io::{decode_binary, decode_binary_any, encode_binary};
use samr_trace::{HierarchyTrace, Snapshot, TraceMeta};

fn sample_trace() -> HierarchyTrace<2> {
    let meta = TraceMeta {
        app: "FUZZ".into(),
        description: "corruption target".into(),
        base_domain: Rect2::from_extents(16, 16),
        ratio: 2,
        max_levels: 3,
        regrid_interval: 4,
        min_block: 2,
        seed: 1,
    };
    let mut t = HierarchyTrace::new(meta);
    for step in 0..4u32 {
        let off = step as i64;
        t.push(Snapshot {
            step,
            time: step as f64,
            hierarchy: GridHierarchy::from_level_rects(
                Rect2::from_extents(16, 16),
                2,
                &[vec![], vec![Rect2::from_coords(2 + off, 2, 9 + off, 9)]],
            ),
        });
    }
    t
}

fn sample_trace_3d() -> HierarchyTrace<3> {
    let meta = TraceMeta {
        app: "FUZZ3".into(),
        description: "corruption target (3-D)".into(),
        base_domain: Box3::from_extents(12, 12, 12),
        ratio: 2,
        max_levels: 3,
        regrid_interval: 4,
        min_block: 2,
        seed: 1,
    };
    let mut t = HierarchyTrace::new(meta);
    for step in 0..4u32 {
        let off = step as i64;
        t.push(Snapshot {
            step,
            time: step as f64,
            hierarchy: GridHierarchy::from_level_rects(
                Box3::from_extents(12, 12, 12),
                2,
                &[
                    vec![],
                    vec![Box3::from_coords(2 + off, 2, 2, 7 + off, 7, 7)],
                ],
            ),
        });
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine except a panic — in either instantiation
        // and in the dimension-dispatching reader.
        let _ = decode_binary::<2>(bytes::Bytes::from(bytes.clone()));
        let _ = decode_binary::<3>(bytes::Bytes::from(bytes.clone()));
        let _ = decode_binary_any(bytes::Bytes::from(bytes));
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        dim_byte in any::<u8>(),
    ) {
        let mut data = b"SAMRTRC2".to_vec();
        data.push(dim_byte); // including unsupported dimensions
        data.extend(bytes);
        let _ = decode_binary::<2>(bytes::Bytes::from(data.clone()));
        let _ = decode_binary::<3>(bytes::Bytes::from(data.clone()));
        let _ = decode_binary_any(bytes::Bytes::from(data));
    }

    #[test]
    fn single_byte_corruption_is_rejected_or_valid(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Flipping one byte of a valid encoding must either fail cleanly
        // or still decode into a *structurally valid* trace (some bytes,
        // e.g. inside the time float or box coordinates that stay
        // ordered, produce different-but-wellformed data; pushes are
        // validated, so structural breakage surfaces as an error).
        let good = encode_binary(&sample_trace());
        let mut bad = good.to_vec();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        let result = std::panic::catch_unwind(|| decode_binary::<2>(bytes::Bytes::from(bad)));
        // catch_unwind guards against hierarchy-validation panics inside
        // push(); either clean error, validation panic caught here, or a
        // structurally valid decode are acceptable — silent memory
        // corruption is not (checked implicitly: we got here).
        let _ = result;
    }

    #[test]
    fn single_byte_corruption_3d_is_rejected_or_valid(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let good = encode_binary(&sample_trace_3d());
        let mut bad = good.to_vec();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        let result =
            std::panic::catch_unwind(|| decode_binary_any(bytes::Bytes::from(bad)));
        let _ = result;
    }

    #[test]
    fn truncation_at_every_length_is_clean(frac in 0.0f64..1.0) {
        let good = encode_binary(&sample_trace());
        let cut = ((good.len() - 1) as f64 * frac) as usize;
        let result = std::panic::catch_unwind(|| decode_binary::<2>(good.slice(..cut)));
        match result {
            Ok(inner) => prop_assert!(inner.is_err(), "truncated decode must fail"),
            Err(_) => prop_assert!(false, "decoder panicked on truncation"),
        }
    }

    #[test]
    fn truncation_at_every_length_is_clean_3d(frac in 0.0f64..1.0) {
        let good = encode_binary(&sample_trace_3d());
        let cut = ((good.len() - 1) as f64 * frac) as usize;
        let result = std::panic::catch_unwind(|| decode_binary_any(good.slice(..cut)));
        match result {
            Ok(inner) => prop_assert!(inner.is_err(), "truncated 3-D decode must fail"),
            Err(_) => prop_assert!(false, "decoder panicked on 3-D truncation"),
        }
    }

    #[test]
    fn dimension_confusion_is_a_clean_error(frac in 0.0f64..1.0) {
        // A valid 3-D stream fed to the 2-D decoder (and vice versa) must
        // produce a mismatch error at any truncation length, never a
        // garbage parse.
        let b3 = encode_binary(&sample_trace_3d());
        let cut = 9 + ((b3.len() - 9) as f64 * frac) as usize;
        let r = decode_binary::<2>(b3.slice(..cut));
        prop_assert!(r.is_err());
        let b2 = encode_binary(&sample_trace());
        let cut = 9 + ((b2.len() - 9) as f64 * frac) as usize;
        let r = decode_binary::<3>(b2.slice(..cut));
        prop_assert!(r.is_err());
    }
}
