//! Failure injection: the binary trace decoder must reject arbitrary and
//! corrupted inputs with an error — never panic, never loop, never
//! allocate unboundedly.

use proptest::prelude::*;
use samr_geom::Rect2;
use samr_grid::GridHierarchy;
use samr_trace::io::{decode_binary, encode_binary};
use samr_trace::{HierarchyTrace, Snapshot, TraceMeta};

fn sample_trace() -> HierarchyTrace {
    let meta = TraceMeta {
        app: "FUZZ".into(),
        description: "corruption target".into(),
        base_domain: Rect2::from_extents(16, 16),
        ratio: 2,
        max_levels: 3,
        regrid_interval: 4,
        min_block: 2,
        seed: 1,
    };
    let mut t = HierarchyTrace::new(meta);
    for step in 0..4u32 {
        let off = step as i64;
        t.push(Snapshot {
            step,
            time: step as f64,
            hierarchy: GridHierarchy::from_level_rects(
                Rect2::from_extents(16, 16),
                2,
                &[vec![], vec![Rect2::from_coords(2 + off, 2, 9 + off, 9)]],
            ),
        });
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine except a panic.
        let _ = decode_binary(bytes::Bytes::from(bytes));
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let mut data = b"SAMRTRC1".to_vec();
        data.extend(bytes);
        let _ = decode_binary(bytes::Bytes::from(data));
    }

    #[test]
    fn single_byte_corruption_is_rejected_or_valid(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Flipping one byte of a valid encoding must either fail cleanly
        // or still decode into a *structurally valid* trace (some bytes,
        // e.g. inside the time float or box coordinates that stay
        // ordered, produce different-but-wellformed data; pushes are
        // validated, so structural breakage surfaces as an error).
        let good = encode_binary(&sample_trace());
        let mut bad = good.to_vec();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        let result = std::panic::catch_unwind(|| decode_binary(bytes::Bytes::from(bad)));
        // catch_unwind guards against hierarchy-validation panics inside
        // push(); either clean error, validation panic caught here, or a
        // structurally valid decode are acceptable — silent memory
        // corruption is not (checked implicitly: we got here).
        let _ = result;
    }

    #[test]
    fn truncation_at_every_length_is_clean(frac in 0.0f64..1.0) {
        let good = encode_binary(&sample_trace());
        let cut = ((good.len() - 1) as f64 * frac) as usize;
        let result = std::panic::catch_unwind(|| decode_binary(good.slice(..cut)));
        match result {
            Ok(inner) => prop_assert!(inner.is_err(), "truncated decode must fail"),
            Err(_) => prop_assert!(false, "decoder panicked on truncation"),
        }
    }
}
