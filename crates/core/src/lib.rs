//! # samr-core — the partitioner-centric classification model
//!
//! This crate is the paper's primary contribution: a model that, **ab
//! initio** — from nothing but the unpartitioned grid hierarchy and a few
//! machine parameters — places the current state of a SAMR application
//! into a *continuous, absolute, partitioner-centric classification
//! space* whose three dimensions are exactly the three universal
//! partitioning trade-offs (§4):
//!
//! 1. **load balance vs. communication** (Trade-off 1, from Part I;
//!    reconstructed here as the pair `β_l`, `β_c`),
//! 2. **partitioning speed vs. overall quality** (Trade-off 2, §4.3),
//! 3. **data migration** (Trade-off 3, §4.4 — the penalty `β_m`, this
//!    paper's headline result).
//!
//! The paper's experimental claim (Figures 4–7) is that `β_m` and `β_c`,
//! computed per step from the trace alone, capture the *shape* of the
//! measured relative data migration and communication of an actual
//! partitioned run. The [`model::ModelPipeline`] reproduces exactly that
//! computation; `samr-sim` provides the measured side.
//!
//! The [`octant`] module implements the older discrete octant approach
//! and an ArMADA-style relative classifier (§3) — the baselines the paper
//! argues are inadequate — so the comparison is reproducible too.

#![warn(missing_docs)]

pub mod model;
pub mod octant;
pub mod relative;
pub mod sampling;
pub mod space;
pub mod tradeoff1;
pub mod tradeoff2;
pub mod tradeoff3;

pub use model::{ModelAccumulator, ModelConfig, ModelPipeline, ModelState};
pub use space::{ClassificationPoint, StateCurve};
pub use tradeoff3::{beta_m, BetaMDenominator};
