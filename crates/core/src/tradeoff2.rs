//! Trade-off 2: partitioning speed vs. overall quality (§4.3).
//!
//! The paper lays the theoretical foundation: compare
//!
//! 1. how much time the partitioner **wants** — a first version is the
//!    mean of the other penalties (β_l, β_c, β_m), which is then scaled
//!    by the *absolute importance* of those relative metrics (§4.2): the
//!    current grid size normalized by the largest grid *encountered so
//!    far* in the run (the true maximum is unknowable online);
//! 2. what time slot the application **offers** — derived from the
//!    repartitioner invocation intervals measured by coarse timing calls
//!    (a reviewer of Part I suggested those): the more infrequently the
//!    partitioner is invoked, the greater the time slots it can claim.
//!
//! The paper leaves the final comparison to "hands-on practical
//! experimenting"; this implementation normalizes the offer with a
//! saturating exponential and takes `d2 = request / (request + offer)` as
//! the dimension-2 coordinate (0 → any cheap partitioning will do, 1 → a
//! long, high-quality partitioning pass is warranted). The choice is
//! documented as a reconstruction and exercised by ablation ABL2.

use serde::{Deserialize, Serialize};

/// Online state of the Trade-off 2 computation: the running grid-size
/// maximum (§4.2) and the invocation timer (§4.3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tradeoff2State {
    /// Largest `|H_t|` seen so far.
    pub max_points_so_far: u64,
    /// Simulation time of the previous partitioner invocation.
    pub last_invocation: Option<f64>,
    /// Time scale (same units as the invocation clock) at which an
    /// invocation interval counts as a "large" slot.
    pub interval_scale: f64,
}

/// The two quantities the trade-off compares plus the resulting
/// coordinate.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Tradeoff2 {
    /// Quantification (1): how much time the partitioner wants, in
    /// `[0, 1]`.
    pub request: f64,
    /// Quantification (2): the normalized time slot the application can
    /// offer, in `[0, 1)`.
    pub offer: f64,
    /// Normalized grid size used for the absolute-importance weighting.
    pub grid_size_norm: f64,
    /// Dimension-2 coordinate in `[0, 1]`.
    pub d2: f64,
}

impl Tradeoff2State {
    /// Start a fresh run.
    pub fn new(interval_scale: f64) -> Self {
        assert!(interval_scale > 0.0);
        Self {
            max_points_so_far: 0,
            last_invocation: None,
            interval_scale,
        }
    }

    /// Record a partitioner invocation at time `now` for a hierarchy of
    /// `points` grid points with the other penalties `betas`, and produce
    /// the Trade-off 2 quantities.
    ///
    /// `weight_by_grid_size = false` disables the §4.2 absolute-importance
    /// factor (ablation ABL2).
    pub fn observe(
        &mut self,
        now: f64,
        points: u64,
        betas: &[f64],
        weight_by_grid_size: bool,
    ) -> Tradeoff2 {
        self.max_points_so_far = self.max_points_so_far.max(points);
        let grid_size_norm = if self.max_points_so_far == 0 {
            0.0
        } else {
            points as f64 / self.max_points_so_far as f64
        };
        let mean_beta = if betas.is_empty() {
            0.0
        } else {
            betas.iter().sum::<f64>() / betas.len() as f64
        };
        let request = if weight_by_grid_size {
            mean_beta * grid_size_norm
        } else {
            mean_beta
        };
        let interval = match self.last_invocation {
            Some(t) => (now - t).max(0.0),
            None => 0.0,
        };
        self.last_invocation = Some(now);
        let offer = 1.0 - (-interval / self.interval_scale).exp();
        let d2 = if request + offer <= 0.0 {
            0.0
        } else {
            request / (request + offer)
        };
        Tradeoff2 {
            request,
            offer,
            grid_size_norm,
            d2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_scales_with_penalties_and_size() {
        let mut s = Tradeoff2State::new(1.0);
        // First observation: grid is its own maximum (norm 1).
        let t = s.observe(0.0, 1000, &[0.2, 0.4, 0.6], true);
        assert!((t.request - 0.4).abs() < 1e-12);
        assert_eq!(t.grid_size_norm, 1.0);
        // Later, a smaller grid damps the request (absolute importance of
        // relative metrics, §4.2).
        let t = s.observe(1.0, 250, &[0.2, 0.4, 0.6], true);
        assert!((t.grid_size_norm - 0.25).abs() < 1e-12);
        assert!((t.request - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ablation_disables_size_weighting() {
        let mut s = Tradeoff2State::new(1.0);
        s.observe(0.0, 1000, &[0.5], true);
        let t = s.observe(1.0, 100, &[0.5], false);
        assert!((t.request - 0.5).abs() < 1e-12);
    }

    #[test]
    fn offer_grows_with_invocation_interval() {
        let mut s = Tradeoff2State::new(10.0);
        let first = s.observe(0.0, 100, &[0.5], true);
        assert_eq!(first.offer, 0.0); // no interval yet
        let quick = s.observe(0.1, 100, &[0.5], true);
        let mut s2 = Tradeoff2State::new(10.0);
        s2.observe(0.0, 100, &[0.5], true);
        let slow = s2.observe(50.0, 100, &[0.5], true);
        assert!(slow.offer > quick.offer);
        assert!(slow.offer < 1.0);
    }

    #[test]
    fn d2_high_when_requesting_more_than_offered() {
        let mut s = Tradeoff2State::new(10.0);
        s.observe(0.0, 100, &[], true);
        // Rapid re-invocations (tiny offer) with severe penalties.
        let t = s.observe(0.05, 100, &[0.9, 0.9, 0.9], true);
        assert!(t.d2 > 0.9, "{t:?}");
        // Long gaps with mild penalties.
        let mut s = Tradeoff2State::new(1.0);
        s.observe(0.0, 100, &[], true);
        let t = s.observe(100.0, 100, &[0.05, 0.05, 0.05], true);
        assert!(t.d2 < 0.1, "{t:?}");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let mut s = Tradeoff2State::new(1.0);
        let t = s.observe(0.0, 0, &[], true);
        assert_eq!(t.request, 0.0);
        assert_eq!(t.d2, 0.0);
        assert!((0.0..=1.0).contains(&t.offer));
    }
}
