//! The end-to-end model pipeline: trace in, per-step classification out.
//!
//! This is the program of §5.1: "the trace-file is processed by a program
//! implementing our proposed model. This program outputs β_m and β_c for
//! each time-step." It also produces the full classification point
//! (d1, d2, d3) so the locus of Figure 3 (right) can be plotted, and the
//! meta-partitioner can consume the state directly.

use crate::space::{ClassificationPoint, StateCurve};
use crate::tradeoff1::{beta_c, beta_l, dimension1};
use crate::tradeoff2::{Tradeoff2, Tradeoff2State};
use crate::tradeoff3::{beta_m_with, BetaMDenominator};
use samr_grid::GridHierarchy;
use samr_trace::io::TraceIoError;
use samr_trace::{AnySnapshotSource, HierarchyTrace, Snapshot, SnapshotSource};
use serde::{Deserialize, Serialize};

/// Model configuration.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Atomic-unit size for the β_l workload sampling.
    pub unit: i64,
    /// Reference processor count (system parameter) for the β_c cut
    /// surface.
    pub p_ref: usize,
    /// β_m denominator (the paper's choice is `Current`; `Previous` is
    /// the ablation).
    pub denominator: BetaMDenominatorConfig,
    /// Apply the §4.2 absolute-importance grid-size weighting inside
    /// Trade-off 2 (ablation ABL2 turns it off).
    pub weight_by_grid_size: bool,
    /// Time scale of the invocation-interval normalization (in trace
    /// time units).
    pub interval_scale: f64,
}

/// Serializable mirror of [`BetaMDenominator`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BetaMDenominatorConfig {
    /// `|H_t|` (the paper's choice).
    Current,
    /// `|H_{t-1}|` (ablation).
    Previous,
}

impl From<BetaMDenominatorConfig> for BetaMDenominator {
    fn from(c: BetaMDenominatorConfig) -> Self {
        match c {
            BetaMDenominatorConfig::Current => BetaMDenominator::Current,
            BetaMDenominatorConfig::Previous => BetaMDenominator::Previous,
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            unit: 2,
            p_ref: 16,
            denominator: BetaMDenominatorConfig::Current,
            weight_by_grid_size: true,
            interval_scale: 1.0,
        }
    }
}

/// The model's output for one coarse time step.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ModelState {
    /// Coarse step index.
    pub step: u32,
    /// Ab-initio load-imbalance penalty.
    pub beta_l: f64,
    /// Ab-initio worst-case communication penalty.
    pub beta_c: f64,
    /// Data-migration penalty (0 at the first step: no previous
    /// hierarchy).
    pub beta_m: f64,
    /// Trade-off 2 quantities.
    pub tradeoff2: Tradeoff2,
    /// The continuous classification point.
    pub point: ClassificationPoint,
}

/// The incremental form of the model: a fold over consecutive snapshot
/// pairs `(H_{t-1}, H_t)`, carrying only the Trade-off 2 recurrence —
/// never the trace. One [`ModelAccumulator::step`] call per snapshot
/// emits that step's [`ModelState`]; [`ModelPipeline::run`] is a collect
/// over it, and streaming consumers drive it directly to keep peak
/// residency at two snapshots.
#[derive(Clone, Debug)]
pub struct ModelAccumulator {
    config: ModelConfig,
    t2: Tradeoff2State,
}

impl ModelAccumulator {
    /// Start a fold with the given configuration.
    pub fn new(config: ModelConfig) -> Self {
        Self {
            t2: Tradeoff2State::new(config.interval_scale),
            config,
        }
    }

    /// Consume one `(previous hierarchy, current snapshot)` pair and emit
    /// the step's model state. `prev` is `None` exactly at the first
    /// step, where β_m is 0 by definition (no previous hierarchy).
    pub fn step<const D: usize>(
        &mut self,
        prev: Option<&GridHierarchy<D>>,
        snap: &Snapshot<D>,
    ) -> ModelState {
        let h = &snap.hierarchy;
        let bl = beta_l(h, self.config.unit, self.config.p_ref);
        let bc = beta_c(h, self.config.p_ref);
        let bm = match prev {
            None => 0.0,
            Some(ph) => beta_m_with(ph, h, self.config.denominator.into()),
        };
        let t2q = self.t2.observe(
            snap.time,
            h.total_points(),
            &[bl, bc, bm],
            self.config.weight_by_grid_size,
        );
        ModelState {
            step: snap.step,
            beta_l: bl,
            beta_c: bc,
            beta_m: bm,
            tradeoff2: t2q,
            point: ClassificationPoint::new(dimension1(bl, bc), t2q.d2, bm),
        }
    }
}

/// Walks a hierarchy trace and emits one [`ModelState`] per snapshot.
#[derive(Clone, Debug, Default)]
pub struct ModelPipeline {
    /// Configuration used for every step.
    pub config: ModelConfig,
}

impl ModelPipeline {
    /// Pipeline with default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline with explicit configuration.
    pub fn with_config(config: ModelConfig) -> Self {
        Self { config }
    }

    /// Run the model over a whole trace — a collect over
    /// [`ModelAccumulator`] with identical output.
    pub fn run<const D: usize>(&self, trace: &HierarchyTrace<D>) -> Vec<ModelState> {
        let mut acc = ModelAccumulator::new(self.config);
        let mut out = Vec::with_capacity(trace.len());
        for (i, snap) in trace.snapshots.iter().enumerate() {
            let prev = (i > 0).then(|| trace.hierarchy(i - 1));
            out.push(acc.step(prev, snap));
        }
        out
    }

    /// Run the model over a snapshot stream, holding at most two
    /// snapshots (the current pair) at any point.
    pub fn run_source<const D: usize>(
        &self,
        source: &mut (dyn SnapshotSource<D> + '_),
    ) -> Result<Vec<ModelState>, TraceIoError> {
        let mut acc = ModelAccumulator::new(self.config);
        let mut out = Vec::with_capacity(source.len_hint().unwrap_or(0));
        let mut prev: Option<Snapshot<D>> = None;
        while let Some(snap) = source.next_snapshot()? {
            out.push(acc.step(prev.as_ref().map(|p| &p.hierarchy), &snap));
            prev = Some(snap);
        }
        Ok(out)
    }

    /// Run the model over a dimension-erased snapshot stream.
    pub fn run_any_source(
        &self,
        source: &mut AnySnapshotSource,
    ) -> Result<Vec<ModelState>, TraceIoError> {
        match source {
            AnySnapshotSource::D2(s) => self.run_source::<2>(s),
            AnySnapshotSource::D3(s) => self.run_source::<3>(s),
        }
    }

    /// Run the model and return the locus curve (Figure 3 right).
    pub fn state_curve<const D: usize>(&self, trace: &HierarchyTrace<D>) -> StateCurve {
        let mut curve = StateCurve::default();
        for s in self.run(trace) {
            curve.push(s.step, s.point);
        }
        curve
    }
}

/// Convenience: the β_m series of a trace (the model side of the
/// Figures 4–7 right panels).
pub fn beta_m_series<const D: usize>(trace: &HierarchyTrace<D>) -> Vec<f64> {
    ModelPipeline::new()
        .run(trace)
        .iter()
        .map(|s| s.beta_m)
        .collect()
}

/// Convenience: the β_c series of a trace (the model side of the
/// Figures 4–7 left panels).
pub fn beta_c_series<const D: usize>(trace: &HierarchyTrace<D>) -> Vec<f64> {
    ModelPipeline::new()
        .run(trace)
        .iter()
        .map(|s| s.beta_c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;
    use samr_trace::{Snapshot, TraceMeta};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn trace_moving() -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "moving box".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..8u32 {
            let off = i as i64 * 4;
            t.push(Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![r(off, 0, off + 15, 15)]],
                ),
            });
        }
        t
    }

    #[test]
    fn pipeline_emits_one_state_per_snapshot() {
        let trace = trace_moving();
        let states = ModelPipeline::new().run(&trace);
        assert_eq!(states.len(), trace.len());
        assert_eq!(states[0].beta_m, 0.0);
        for s in &states {
            assert!((0.0..=1.0).contains(&s.beta_l));
            assert!((0.0..=1.0).contains(&s.beta_c));
            assert!((0.0..=1.0).contains(&s.beta_m));
            assert!((0.0..=1.0).contains(&s.point.d1));
            assert!((0.0..=1.0).contains(&s.point.d2));
            assert!((0.0..=1.0).contains(&s.point.d3));
        }
    }

    #[test]
    fn moving_box_sustains_beta_m() {
        let trace = trace_moving();
        let states = ModelPipeline::new().run(&trace);
        for s in &states[1..] {
            // Base 1024 cells static, level-1 box 256 cells shifted by 4:
            // overlap 1024 + 12*16 = 1216 of 1280 => β_m = 64/1280 = 0.05
            // at every step.
            assert!(
                (s.beta_m - 0.05).abs() < 1e-9,
                "step {} had β_m {}",
                s.step,
                s.beta_m
            );
        }
    }

    #[test]
    fn d3_equals_beta_m() {
        let trace = trace_moving();
        for s in ModelPipeline::new().run(&trace) {
            assert_eq!(s.point.d3, s.beta_m);
        }
    }

    #[test]
    fn run_source_matches_batch_run() {
        use samr_trace::MemorySource;
        let trace = trace_moving();
        let p = ModelPipeline::new();
        let batch = p.run(&trace);
        let streamed = p
            .run_source::<2>(&mut MemorySource::new(&trace))
            .expect("in-memory source cannot fail");
        assert_eq!(batch, streamed);
    }

    #[test]
    fn state_curve_matches_run() {
        let trace = trace_moving();
        let p = ModelPipeline::new();
        let curve = p.state_curve(&trace);
        assert_eq!(curve.len(), trace.len());
        assert!(curve.arc_length() > 0.0);
    }

    #[test]
    fn series_helpers_agree_with_pipeline() {
        let trace = trace_moving();
        let states = ModelPipeline::new().run(&trace);
        let bm = beta_m_series(&trace);
        let bc = beta_c_series(&trace);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(bm[i], s.beta_m);
            assert_eq!(bc[i], s.beta_c);
        }
    }

    #[test]
    fn ablation_denominator_changes_growth_steps() {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "growing".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 2,
            regrid_interval: 4,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for (i, size) in [7i64, 31].iter().enumerate() {
            t.push(Snapshot {
                step: i as u32,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(
                    Rect2::from_extents(32, 32),
                    2,
                    &[vec![], vec![r(0, 0, *size, *size)]],
                ),
            });
        }
        let paper = ModelPipeline::new().run(&t);
        let ablated = ModelPipeline::with_config(ModelConfig {
            denominator: BetaMDenominatorConfig::Previous,
            ..ModelConfig::default()
        })
        .run(&t);
        assert!(paper[1].beta_m > ablated[1].beta_m);
    }
}
