//! Trade-off 3: the data-migration penalty β_m (§4.4).
//!
//! > "By intersecting the boxes in the hierarchy at time-step t−1 with
//! > those at time-step t, we get an indication of how much the grid has
//! > changed during this time-step. […] Then, the data migration penalty
//! >
//! >   β_m(H_{t-1}, H_t) = 1 − (1/|H_t|) Σ_l Σ_i Σ_j |G_{t-1}^{l,i} ∩ G_t^{l,j}|
//! >
//! > where the operator ∩ denotes grid intersection."
//!
//! A large same-level overlap means little change (small penalty); a small
//! overlap means the hierarchy was rebuilt elsewhere and data will have to
//! move. The penalty is **absolute**: each consecutive pair maps onto
//! `[0, 1]` independently of any other step (unlike ArMADA's relative
//! classification), and it is comparable to the grid-relative migration
//! metric of §4.1 by construction.

use samr_grid::GridHierarchy;

/// Which hierarchy size normalizes the overlap sum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BetaMDenominator {
    /// `|H_t|`, the paper's choice: when the grid grows
    /// (`|H_{t-1}| < |H_t|`) most of the small grid is expected to move,
    /// and dividing by the larger `|H_t|` yields the larger penalty;
    /// when it shrinks, most of the large grid is simply deleted, and
    /// `|H_t|` again gives the right (smaller) scale.
    Current,
    /// `|H_{t-1}|` — the alternative the paper argues against; kept for
    /// the ablation experiment (ABL1 in DESIGN.md).
    Previous,
}

/// Total same-level box overlap between two hierarchies:
/// `Σ_l Σ_i Σ_j |G_{t-1}^{l,i} ∩ G_t^{l,j}|` in grid points.
pub fn hierarchy_overlap<const D: usize>(prev: &GridHierarchy<D>, cur: &GridHierarchy<D>) -> u64 {
    assert_eq!(
        prev.ratio, cur.ratio,
        "hierarchies must share the refinement factor"
    );
    let mut sum = 0u64;
    for l in 0..prev.levels.len().min(cur.levels.len()) {
        for gp in &prev.levels[l].patches {
            for gc in &cur.levels[l].patches {
                sum += gp.rect.overlap_cells(&gc.rect);
            }
        }
    }
    sum
}

/// The paper's data-migration penalty `β_m(H_{t-1}, H_t) ∈ [0, 1]` with
/// the paper's `|H_t|` denominator.
pub fn beta_m<const D: usize>(prev: &GridHierarchy<D>, cur: &GridHierarchy<D>) -> f64 {
    beta_m_with(prev, cur, BetaMDenominator::Current)
}

/// β_m with an explicit denominator choice (for the ablation).
pub fn beta_m_with<const D: usize>(
    prev: &GridHierarchy<D>,
    cur: &GridHierarchy<D>,
    denom: BetaMDenominator,
) -> f64 {
    let overlap = hierarchy_overlap(prev, cur) as f64;
    let d = match denom {
        BetaMDenominator::Current => cur.total_points(),
        BetaMDenominator::Previous => prev.total_points(),
    }
    .max(1) as f64;
    (1.0 - overlap / d).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h(levels: &[Vec<Rect2>]) -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(Rect2::from_extents(16, 16), 2, levels)
    }

    #[test]
    fn identical_hierarchies_zero_penalty() {
        let a = h(&[vec![], vec![r(4, 4, 11, 11)]]);
        assert_eq!(beta_m(&a, &a.clone()), 0.0);
    }

    #[test]
    fn disjoint_refinement_maximal_penalty_on_refined_part() {
        // Same sizes, completely relocated refinement: overlap only on the
        // static base grid.
        let a = h(&[vec![], vec![r(0, 0, 7, 7)]]);
        let b = h(&[vec![], vec![r(24, 24, 31, 31)]]);
        // |H_t| = 256 + 64; overlap = 256 (base only).
        let expected = 1.0 - 256.0 / 320.0;
        assert!((beta_m(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn growth_uses_larger_denominator() {
        // Small grid grows: paper says expect most of the small grid to
        // move => penalty should be large. With |H_t| in the denominator
        // the non-overlapped new mass raises the penalty.
        let small = h(&[vec![], vec![r(0, 0, 7, 7)]]);
        let large = h(&[vec![], vec![r(0, 0, 23, 23)]]);
        let grow = beta_m(&small, &large);
        let grow_prev_denom = beta_m_with(&small, &large, BetaMDenominator::Previous);
        assert!(grow > 0.0);
        // The ablation denominator underestimates growth-induced movement.
        assert!(grow > grow_prev_denom - 1e-12);
    }

    #[test]
    fn shrink_uses_smaller_denominator() {
        // Large grid shrinks onto a sub-box: the surviving grid fully
        // overlaps the old one => little must move. |H_t| (small) in the
        // denominator keeps the penalty at 0; |H_{t-1}| would overstate.
        let large = h(&[vec![], vec![r(0, 0, 23, 23)]]);
        let small = h(&[vec![], vec![r(0, 0, 7, 7)]]);
        let shrink = beta_m(&large, &small);
        assert_eq!(shrink, 0.0);
        let shrink_prev = beta_m_with(&large, &small, BetaMDenominator::Previous);
        assert!(shrink_prev > shrink);
    }

    #[test]
    fn partial_move_is_between_extremes() {
        let a = h(&[vec![], vec![r(0, 0, 15, 15)]]);
        let b = h(&[vec![], vec![r(8, 0, 23, 15)]]);
        let v = beta_m(&a, &b);
        // Overlap: base 256 + refined overlap 8x16=128 of 256.
        let expected = 1.0 - (256.0 + 128.0) / (256.0 + 256.0);
        assert!((v - expected).abs() < 1e-12);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn deep_levels_participate() {
        let a = h(&[vec![], vec![r(0, 0, 15, 15)], vec![r(0, 0, 15, 15)]]);
        let b = h(&[vec![], vec![r(0, 0, 15, 15)], vec![r(16, 16, 31, 31)]]);
        // Level 2 moved entirely; levels 0,1 static.
        let overlap = 256.0 + 256.0;
        let total = 256.0 + 256.0 + 256.0;
        assert!((beta_m(&a, &b) - (1.0 - overlap / total)).abs() < 1e-12);
    }

    #[test]
    fn penalty_is_clamped() {
        // Penalty can never leave [0,1] even for pathological inputs.
        let a = h(&[vec![]]);
        let b = h(&[vec![], vec![r(0, 0, 31, 31)]]);
        let v = beta_m(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = h(&[vec![], vec![r(0, 0, 15, 15)]]);
        let b = h(&[vec![], vec![r(8, 8, 23, 23)]]);
        assert_eq!(hierarchy_overlap(&a, &b), hierarchy_overlap(&b, &a));
    }

    #[test]
    #[should_panic(expected = "refinement factor")]
    fn mismatched_ratio_panics() {
        let a = GridHierarchy::base_only(Rect2::from_extents(8, 8), 2);
        let b = GridHierarchy::base_only(Rect2::from_extents(8, 8), 4);
        let _ = hierarchy_overlap(&a, &b);
    }
}
