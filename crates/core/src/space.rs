//! The continuous partitioner-centric classification space (§4, Figure 3
//! right).
//!
//! Unlike the octant approach (relative, discrete), the proposed space is
//! **absolute and continuous**: a state sampling maps onto a point in
//! `[0,1]³`, and "the locus of all such points, as a simulation evolves,
//! will be a curve in the same space. […] This enables not only a coarse
//! grained partitioner selection, but also an extremely fine grained
//! partitioner configuration."

use serde::{Deserialize, Serialize};

/// A point in the partitioner-centric classification space.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClassificationPoint {
    /// Dimension I — communication vs. load balance: 0 → optimize
    /// communication, 1 → optimize load balance.
    pub d1: f64,
    /// Dimension II — speed vs. overall quality: 0 → optimize speed (any
    /// partitioning will do), 1 → optimize quality (invest time).
    pub d2: f64,
    /// Dimension III — data migration: 0 → no migration pressure, 1 →
    /// expect the whole grid to move.
    pub d3: f64,
}

impl ClassificationPoint {
    /// Construct, clamping every coordinate into `[0, 1]`.
    pub fn new(d1: f64, d2: f64, d3: f64) -> Self {
        Self {
            d1: d1.clamp(0.0, 1.0),
            d2: d2.clamp(0.0, 1.0),
            d3: d3.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance to another point (used by the meta-partitioner
    /// to damp configuration thrashing).
    pub fn distance(&self, other: &Self) -> f64 {
        let dx = self.d1 - other.d1;
        let dy = self.d2 - other.d2;
        let dz = self.d3 - other.d3;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// The octant of the discrete legacy space this point falls into
    /// (bit 0: d1 ≥ ½, bit 1: d2 ≥ ½, bit 2: d3 ≥ ½) — the coarse
    /// projection the octant approach would have used.
    pub fn octant(&self) -> u8 {
        u8::from(self.d1 >= 0.5) | (u8::from(self.d2 >= 0.5) << 1) | (u8::from(self.d3 >= 0.5) << 2)
    }
}

/// The locus of classification points over a run — the curve of Figure 3
/// (right).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct StateCurve {
    /// `(coarse step, point)` in step order.
    pub points: Vec<(u32, ClassificationPoint)>,
}

impl StateCurve {
    /// Append a sample.
    pub fn push(&mut self, step: u32, p: ClassificationPoint) {
        self.points.push((step, p));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length of the curve — a scalar measure of how much the
    /// partitioning requirements moved over the run (the paper's argument
    /// for dynamic re-selection is precisely that this is large).
    pub fn arc_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].1.distance(&w[1].1))
            .sum()
    }

    /// How many times the coarse octant projection changes along the
    /// curve — the number of discrete re-selections the octant approach
    /// would have made.
    pub fn octant_transitions(&self) -> usize {
        self.points
            .windows(2)
            .filter(|w| w[0].1.octant() != w[1].1.octant())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps() {
        let p = ClassificationPoint::new(-0.5, 0.5, 1.5);
        assert_eq!(p.d1, 0.0);
        assert_eq!(p.d2, 0.5);
        assert_eq!(p.d3, 1.0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = ClassificationPoint::new(0.0, 0.0, 0.0);
        let b = ClassificationPoint::new(1.0, 0.0, 0.0);
        assert!((a.distance(&b) - 1.0).abs() < 1e-12);
        let c = ClassificationPoint::new(1.0, 1.0, 1.0);
        assert!((a.distance(&c) - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn octant_projection() {
        assert_eq!(ClassificationPoint::new(0.1, 0.1, 0.1).octant(), 0);
        assert_eq!(ClassificationPoint::new(0.9, 0.1, 0.1).octant(), 1);
        assert_eq!(ClassificationPoint::new(0.1, 0.9, 0.1).octant(), 2);
        assert_eq!(ClassificationPoint::new(0.1, 0.1, 0.9).octant(), 4);
        assert_eq!(ClassificationPoint::new(0.9, 0.9, 0.9).octant(), 7);
    }

    #[test]
    fn curve_accumulates() {
        let mut c = StateCurve::default();
        assert!(c.is_empty());
        c.push(0, ClassificationPoint::new(0.0, 0.0, 0.0));
        c.push(1, ClassificationPoint::new(1.0, 0.0, 0.0));
        c.push(2, ClassificationPoint::new(1.0, 1.0, 0.0));
        assert_eq!(c.len(), 3);
        assert!((c.arc_length() - 2.0).abs() < 1e-12);
        assert_eq!(c.octant_transitions(), 2);
    }
}
