//! Ab-initio sampling of the grid hierarchy.
//!
//! The model's inputs are *samples of application state* taken directly
//! from the unpartitioned hierarchy (§4: "a model for sampling and
//! translating these samples of the given application parameters (such as
//! the grid hierarchy) … into the partitioner-centric classification
//! space"). This module computes the composite-workload distribution over
//! the base domain, which feeds the reconstructed load-imbalance penalty
//! β_l. It deliberately does **not** reuse partitioner code: the model
//! must remain independent of any particular partitioning.

use samr_geom::{AABox, Point};
use samr_grid::GridHierarchy;

/// Composite workload (cell updates per coarse step) of each `unit`-sized
/// block of the base domain, row-major over the block grid. The sum over
/// all units equals `h.workload()`.
pub fn unit_workloads<const D: usize>(h: &GridHierarchy<D>, unit: i64) -> Vec<u64> {
    assert!(unit >= 1);
    let domain = h.base_domain;
    let e = domain.extent();
    let dims: [i64; D] = std::array::from_fn(|i| (e[i] + unit - 1) / unit);
    let index_box = AABox::<D>::from_extent_array(dims);
    let mut weights = vec![0u64; index_box.cells() as usize];
    for (l, level) in h.levels.iter().enumerate() {
        let scale = h.ratio.pow(l as u32);
        let w = (h.ratio as u64).pow(l as u32);
        for patch in &level.patches {
            let base_fp = patch.rect.coarsen(scale);
            let u_lo = (base_fp.lo() - domain.lo()).div_floor(unit);
            let u_hi = (base_fp.hi() - domain.lo()).div_floor(unit);
            let u_hi = Point::<D>::from_fn(|i| u_hi[i].min(dims[i] - 1));
            let Some(span) = AABox::try_new(u_lo, u_hi) else {
                continue;
            };
            for u in span.iter_cells() {
                let lo = Point::<D>::from_fn(|i| domain.lo()[i] + u[i] * unit);
                let unit_box = AABox::new(
                    lo,
                    Point::from_fn(|i| (lo[i] + unit - 1).min(domain.hi()[i])),
                );
                let overlap = patch.rect.overlap_cells(&unit_box.refine(scale));
                weights[index_box.linear_index(u)] += overlap * w;
            }
        }
    }
    weights
}

/// Gini coefficient of a non-negative weight distribution, in `[0, 1)`:
/// 0 = perfectly uniform, →1 = all mass in one unit. The model uses it as
/// the ab-initio *imbalance potential* of the workload distribution.
pub fn gini(weights: &[u64]) -> f64 {
    let n = weights.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = weights.to_vec();
    sorted.sort_unstable();
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n  with 1-based i over sorted x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    use samr_geom::Rect2;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn unit_workloads_sum_to_workload() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(8, 8, 23, 23)], vec![r(24, 24, 39, 39)]],
        );
        for unit in [1, 2, 4] {
            let w = unit_workloads(&h, unit);
            assert_eq!(w.iter().sum::<u64>(), h.workload(), "unit {unit}");
        }
    }

    #[test]
    fn uniform_grid_zero_gini() {
        let h = GridHierarchy::base_only(Rect2::from_extents(16, 16), 2);
        let w = unit_workloads(&h, 2);
        assert!(gini(&w) < 1e-12);
    }

    #[test]
    fn localized_refinement_raises_gini() {
        let flat = GridHierarchy::base_only(Rect2::from_extents(32, 32), 2);
        let localized = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[vec![], vec![r(0, 0, 15, 15)], vec![r(0, 0, 15, 15)]],
        );
        let g_flat = gini(&unit_workloads(&flat, 2));
        let g_loc = gini(&unit_workloads(&localized, 2));
        assert!(g_loc > g_flat + 0.2, "{g_flat} vs {g_loc}");
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]) < 1e-12);
        // All mass in one of many units approaches 1.
        let mut w = vec![0u64; 100];
        w[7] = 1000;
        assert!(gini(&w) > 0.95);
    }
}
