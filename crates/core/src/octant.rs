//! The legacy octant approach and the ArMADA-style relative classifier
//! (§3) — the baselines the paper critiques.
//!
//! The octant approach classifies application/system state along three
//! discrete axes — (I) scattered ↔ localized refinement, (II) computation-
//! ↔ communication-dominated, (III) low ↔ high activity dynamics — and
//! maps the resulting octant onto a partitioning technique. The paper
//! shows the space is inadequate (the time-domination axis cannot be
//! determined without assuming a partitioning — the "circle" — and high
//! activity dynamics does not automatically demand a cheap partitioner).
//! ArMADA implements a relative version using simple box operations; even
//! that reduced execution times, which is the proof of concept the
//! meta-partitioner builds on.

use samr_grid::stats::ActivityDynamics;
use samr_grid::{GridHierarchy, HierarchyStats};
use serde::{Deserialize, Serialize};

/// One axis of the octant cube.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Axis1 {
    /// Refinement concentrated in few compact regions.
    Localized,
    /// Refinement spread over the domain.
    Scattered,
}

/// Time-domination axis (the problematic one, §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Axis2 {
    /// Run time dominated by computation.
    ComputationDominated,
    /// Run time dominated by communication.
    CommunicationDominated,
}

/// Activity-dynamics axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Axis3 {
    /// The solution changes slowly.
    LowDynamics,
    /// The solution changes quickly.
    HighDynamics,
}

/// A discrete octant classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Octant {
    /// Refinement-pattern axis.
    pub pattern: Axis1,
    /// Time-domination axis.
    pub domination: Axis2,
    /// Activity-dynamics axis.
    pub dynamics: Axis3,
}

impl Octant {
    /// Octant index 0..8 (pattern bit 0, domination bit 1, dynamics
    /// bit 2).
    pub fn index(&self) -> u8 {
        u8::from(self.pattern == Axis1::Scattered)
            | (u8::from(self.domination == Axis2::CommunicationDominated) << 1)
            | (u8::from(self.dynamics == Axis3::HighDynamics) << 2)
    }

    /// The partitioner family the published mapping would select for this
    /// octant (Steensland et al.'s characterization: domain-based for
    /// localized/computation-dominated states, patch-based for
    /// communication-dominated scattered states, hybrid otherwise).
    pub fn suggested_family(&self) -> &'static str {
        match (self.pattern, self.domination, self.dynamics) {
            (Axis1::Localized, Axis2::ComputationDominated, _) => "domain-based",
            (Axis1::Scattered, Axis2::CommunicationDominated, _) => "patch-based",
            (_, _, Axis3::HighDynamics) => "hybrid",
            _ => "domain-based",
        }
    }
}

/// ArMADA-style classifier: *relative* to the previous state, using only
/// simple box operations on the hierarchy (volume-to-surface ratios,
/// occupancy, step-to-step change). It deliberately disregards the system
/// component, exactly as ArMADA did.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ArmadaClassifier {
    prev: Option<ArmadaSample>,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct ArmadaSample {
    localization: f64,
    surface_to_volume: f64,
    points: u64,
}

impl ArmadaClassifier {
    /// Start unclassified.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify the next snapshot. The first call uses absolute
    /// thresholds; later calls move axes relative to the previous sample
    /// (the paper: "the classification is relative to the previous
    /// state").
    pub fn classify<const D: usize>(
        &mut self,
        prev_h: Option<&GridHierarchy<D>>,
        h: &GridHierarchy<D>,
    ) -> Octant {
        let stats = HierarchyStats::compute(h);
        let s2v = (1..stats.depth())
            .map(|l| stats.surface_to_volume(l))
            .fold(0.0f64, f64::max);
        let sample = ArmadaSample {
            localization: stats.localization,
            surface_to_volume: s2v,
            points: stats.total_points,
        };
        let dynamics = match prev_h {
            Some(p) => {
                let d = ActivityDynamics::between(p, h);
                if d.size_change > 0.1 || d.structure_change > 0.25 {
                    Axis3::HighDynamics
                } else {
                    Axis3::LowDynamics
                }
            }
            None => Axis3::LowDynamics,
        };
        let pattern = match self.prev {
            Some(ref q) => {
                if sample.localization >= q.localization {
                    Axis1::Localized
                } else {
                    Axis1::Scattered
                }
            }
            None => {
                if sample.localization > 0.5 {
                    Axis1::Localized
                } else {
                    Axis1::Scattered
                }
            }
        };
        // The (flawed) time-domination axis: ArMADA proxied it with the
        // volume-to-surface ratio of the refined levels.
        let domination = if sample.surface_to_volume > 0.5 {
            Axis2::CommunicationDominated
        } else {
            Axis2::ComputationDominated
        };
        self.prev = Some(sample);
        Octant {
            pattern,
            domination,
            dynamics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h(levels: &[Vec<Rect2>]) -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, levels)
    }

    #[test]
    fn octant_index_covers_all_eight() {
        let mut seen = std::collections::HashSet::new();
        for pattern in [Axis1::Localized, Axis1::Scattered] {
            for domination in [Axis2::ComputationDominated, Axis2::CommunicationDominated] {
                for dynamics in [Axis3::LowDynamics, Axis3::HighDynamics] {
                    seen.insert(
                        Octant {
                            pattern,
                            domination,
                            dynamics,
                        }
                        .index(),
                    );
                }
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn mapping_follows_published_rules() {
        let o = Octant {
            pattern: Axis1::Localized,
            domination: Axis2::ComputationDominated,
            dynamics: Axis3::LowDynamics,
        };
        assert_eq!(o.suggested_family(), "domain-based");
        let o = Octant {
            pattern: Axis1::Scattered,
            domination: Axis2::CommunicationDominated,
            dynamics: Axis3::LowDynamics,
        };
        assert_eq!(o.suggested_family(), "patch-based");
        let o = Octant {
            pattern: Axis1::Localized,
            domination: Axis2::CommunicationDominated,
            dynamics: Axis3::HighDynamics,
        };
        assert_eq!(o.suggested_family(), "hybrid");
    }

    #[test]
    fn armada_detects_dynamics() {
        let a = h(&[vec![], vec![r(4, 4, 19, 19)]]);
        let b = h(&[vec![], vec![r(40, 40, 55, 55)]]);
        let mut c = ArmadaClassifier::new();
        let first = c.classify(None, &a);
        assert_eq!(first.dynamics, Axis3::LowDynamics);
        let second = c.classify(Some(&a), &b);
        assert_eq!(second.dynamics, Axis3::HighDynamics);
    }

    #[test]
    fn armada_pattern_is_relative() {
        // A compact blob first, then scattered tiles: the classifier must
        // flip the pattern axis.
        let compact = h(&[vec![], vec![r(20, 20, 43, 43)]]);
        let scattered = h(&[
            vec![],
            vec![
                r(0, 0, 7, 7),
                r(56, 0, 63, 7),
                r(0, 56, 7, 63),
                r(56, 56, 63, 63),
            ],
        ]);
        let mut c = ArmadaClassifier::new();
        c.classify(None, &compact);
        let o = c.classify(Some(&compact), &scattered);
        assert_eq!(o.pattern, Axis1::Scattered);
    }

    #[test]
    fn thin_patches_read_communication_dominated() {
        let thin = h(&[vec![], vec![r(0, 0, 63, 1)]]);
        let mut c = ArmadaClassifier::new();
        let o = c.classify(None, &thin);
        assert_eq!(o.domination, Axis2::CommunicationDominated);
    }
}
