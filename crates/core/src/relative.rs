//! Grid-relative metrics (§4.1).
//!
//! > "Data migration between time-steps t−1 and t should be normalized
//! > with respect to grid size, i.e. the number of grid points, in the
//! > grid hierarchy at time-step t−1. Consequently, a 100-percent data
//! > migration translates to that all points in the grid are moved.
//! > Communication should be normalized with respect to work load. A
//! > 100-percent communication at a coarse time-step would translate to
//! > all points in the grid being involved in communications at all local
//! > time steps involved in the particular coarse time-step."
//!
//! These normalizations make migration and communication comparable
//! *across applications* (like the de-facto-standard percent load
//! imbalance) and are what the model's penalties are validated against.
//!
//! **Empty-input semantics.** A degenerate denominator does not produce
//! a finite-but-meaningless ratio: an empty previous hierarchy defines
//! relative migration as 0 (nothing existed that could move — the same
//! convention as β_m at the first step), an empty current hierarchy
//! defines relative communication as 0 (no workload, so no point can be
//! involved in communication), and an empty (or all-idle) processor set
//! defines the load-imbalance ratio as 1 (vacuously perfect balance).

use samr_grid::GridHierarchy;

/// Grid-relative data migration: `moved / |H_{t-1}|`. 1.0 = every point
/// of the previous grid moved. An empty previous hierarchy
/// (`|H_{t-1}| = 0`) defines the ratio as 0.0: there was nothing to
/// move, matching β_m's "no previous hierarchy" convention.
pub fn relative_migration<const D: usize>(moved_points: u64, prev: &GridHierarchy<D>) -> f64 {
    let denom = prev.total_points();
    if denom == 0 {
        return 0.0;
    }
    moved_points as f64 / denom as f64
}

/// Grid-relative communication: `comm / W_t` where
/// `W_t = Σ_l N_l·ratio^l`. 1.0 = every point communicates at every local
/// step of the coarse step. An empty hierarchy (`W_t = 0`) defines the
/// ratio as 0.0: with no workload there is nothing to communicate for.
pub fn relative_communication<const D: usize>(comm_points: u64, h: &GridHierarchy<D>) -> f64 {
    let denom = h.workload();
    if denom == 0 {
        return 0.0;
    }
    comm_points as f64 / denom as f64
}

/// The de-facto-standard load-imbalance percentage: heaviest processor
/// load over average load, as a ratio (>= 1). An empty processor set,
/// or one whose loads are all zero, is defined as 1.0 — vacuously
/// perfect balance (there is no overloaded processor to penalize).
pub fn load_imbalance_ratio(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = *loads.iter().max().unwrap();
    let sum: u64 = loads.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    max as f64 / (sum as f64 / loads.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    #[test]
    fn migration_normalizes_by_previous_size() {
        let prev = GridHierarchy::base_only(Rect2::from_extents(10, 10), 2);
        assert_eq!(relative_migration(50, &prev), 0.5);
        assert_eq!(relative_migration(100, &prev), 1.0);
        assert_eq!(relative_migration(0, &prev), 0.0);
    }

    #[test]
    fn communication_normalizes_by_workload() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(10, 10),
            2,
            &[vec![], vec![Rect2::from_coords(0, 0, 9, 9)]],
        );
        // W = 100 + 100*2 = 300.
        assert_eq!(relative_communication(150, &h), 0.5);
    }

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(load_imbalance_ratio(&[]), 1.0);
        assert_eq!(load_imbalance_ratio(&[0, 0]), 1.0);
        assert_eq!(load_imbalance_ratio(&[10, 10]), 1.0);
        assert_eq!(load_imbalance_ratio(&[30, 10]), 1.5);
    }

    /// A hierarchy with no levels at all: `total_points() == 0` and
    /// `workload() == 0`.
    fn empty_hierarchy() -> GridHierarchy<2> {
        GridHierarchy {
            base_domain: Rect2::from_extents(4, 4),
            ratio: 2,
            levels: vec![],
        }
    }

    #[test]
    fn empty_previous_hierarchy_defines_migration_as_zero() {
        let prev = empty_hierarchy();
        assert_eq!(prev.total_points(), 0);
        // Nothing existed to move: 0.0 whatever the numerator claims,
        // never `moved / 1`.
        assert_eq!(relative_migration(0, &prev), 0.0);
        assert_eq!(relative_migration(100, &prev), 0.0);
    }

    #[test]
    fn empty_hierarchy_defines_communication_as_zero() {
        let h = empty_hierarchy();
        assert_eq!(h.workload(), 0);
        assert_eq!(relative_communication(0, &h), 0.0);
        assert_eq!(relative_communication(100, &h), 0.0);
    }

    #[test]
    fn single_point_denominators_still_divide() {
        // The old `.max(1)` guard must not have changed genuine
        // one-point denominators.
        let prev = GridHierarchy::base_only(Rect2::from_extents(1, 1), 2);
        assert_eq!(prev.total_points(), 1);
        assert_eq!(relative_migration(1, &prev), 1.0);
        assert_eq!(relative_communication(2, &prev), 2.0);
    }
}
