//! Grid-relative metrics (§4.1).
//!
//! > "Data migration between time-steps t−1 and t should be normalized
//! > with respect to grid size, i.e. the number of grid points, in the
//! > grid hierarchy at time-step t−1. Consequently, a 100-percent data
//! > migration translates to that all points in the grid are moved.
//! > Communication should be normalized with respect to work load. A
//! > 100-percent communication at a coarse time-step would translate to
//! > all points in the grid being involved in communications at all local
//! > time steps involved in the particular coarse time-step."
//!
//! These normalizations make migration and communication comparable
//! *across applications* (like the de-facto-standard percent load
//! imbalance) and are what the model's penalties are validated against.

use samr_grid::GridHierarchy;

/// Grid-relative data migration: `moved / |H_{t-1}|`. 1.0 = every point
/// of the previous grid moved.
pub fn relative_migration<const D: usize>(moved_points: u64, prev: &GridHierarchy<D>) -> f64 {
    moved_points as f64 / prev.total_points().max(1) as f64
}

/// Grid-relative communication: `comm / W_t` where
/// `W_t = Σ_l N_l·ratio^l`. 1.0 = every point communicates at every local
/// step of the coarse step.
pub fn relative_communication<const D: usize>(comm_points: u64, h: &GridHierarchy<D>) -> f64 {
    comm_points as f64 / h.workload().max(1) as f64
}

/// The de-facto-standard load-imbalance percentage: heaviest processor
/// load over average load, as a ratio (>= 1).
pub fn load_imbalance_ratio(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = *loads.iter().max().unwrap();
    let sum: u64 = loads.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    max as f64 / (sum as f64 / loads.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    #[test]
    fn migration_normalizes_by_previous_size() {
        let prev = GridHierarchy::base_only(Rect2::from_extents(10, 10), 2);
        assert_eq!(relative_migration(50, &prev), 0.5);
        assert_eq!(relative_migration(100, &prev), 1.0);
        assert_eq!(relative_migration(0, &prev), 0.0);
    }

    #[test]
    fn communication_normalizes_by_workload() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(10, 10),
            2,
            &[vec![], vec![Rect2::from_coords(0, 0, 9, 9)]],
        );
        // W = 100 + 100*2 = 300.
        assert_eq!(relative_communication(150, &h), 0.5);
    }

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(load_imbalance_ratio(&[]), 1.0);
        assert_eq!(load_imbalance_ratio(&[0, 0]), 1.0);
        assert_eq!(load_imbalance_ratio(&[10, 10]), 1.0);
        assert_eq!(load_imbalance_ratio(&[30, 10]), 1.5);
    }
}
