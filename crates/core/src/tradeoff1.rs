//! Trade-off 1: load balance vs. communication (reconstructed from
//! Part I).
//!
//! Part II references two penalties from Part I — `β_L` (load imbalance)
//! and `β_C` (communication) — and uses `β_c` in its validation ("the new
//! metric", Figures 4–7 left panels). Part I's text is not available, so
//! the penalties are reconstructed here from everything Part II says
//! about them (documented in DESIGN.md §2):
//!
//! - **β_c is ab initio and aggressive**: "β_C reflects a worst-case
//!   scenario" and "jumps at potentially communication-heavy grids"
//!   (§5.2), and it is comparable to the §4.1 grid-relative communication
//!   metric (normalized by the workload). Two surfaces bound the
//!   ghost-exchange volume of level `l` per local step: the patch
//!   boundary (`boundary_l` cells — patch seams are always potential
//!   processor seams), and the *unavoidable cut surface* of distributing
//!   `N_l` cells over `P` processors — `≈ 4·√(N_l·P)` cells for
//!   near-square chunks (this is why relative communication rises when
//!   the grid shrinks at fixed `P`). `P` is a system parameter, which the
//!   model explicitly takes as input ("system parameters (such as CPU
//!   speed and communication bandwidth)", §1).
//!   `β_c = min(1, Σ_l (boundary_l + 4√(N_l·P))·r^l / W)`.
//! - **β_l is ab initio** and must capture the imbalance *potential* of
//!   the hierarchy. §3.1 names the failure mode precisely: "a small
//!   base-grid, many processors, and many levels of refinement cause
//!   domain-based techniques to generate intractable amounts of load
//!   imbalance". The quantitative form: domain-based cuts assign whole
//!   atomic columns of the composite workload, so once the heaviest
//!   column `w_max` approaches the ideal per-processor share `W/P`, no
//!   domain cut can balance — the imbalance floor is `w_max·P/W`. We set
//!   `β_l = min(1, w_max·P / (2W))`: 0.5 exactly when one column fills a
//!   whole processor, saturating at 1 when it fills two.
//!
//! The dimension-1 coordinate of the classification space is then the
//! relative weight of the two penalties: `d1 = β_l / (β_l + β_c)`
//! (0 → optimize communication, 1 → optimize load balance).

use crate::sampling::unit_workloads;
use samr_grid::GridHierarchy;

/// Worst-case ab-initio communication penalty `β_c ∈ [0, 1]` for a run on
/// `p_ref` processors.
///
/// Ghost width is fixed at 1 (the paper's kernels are all
/// nearest-neighbour stencils); boundary rings wider than the patch count
/// every cell.
pub fn beta_c<const D: usize>(h: &GridHierarchy<D>, p_ref: usize) -> f64 {
    let workload = h.workload().max(1) as f64;
    let mut worst = 0.0f64;
    for (l, level) in h.levels.iter().enumerate() {
        let cells = level.cells();
        if cells == 0 {
            continue;
        }
        let mult = (h.ratio as u64).pow(l as u32) as f64;
        let boundary = level.boundary_cells() as f64;
        // Unavoidable cut surface of distributing `cells` over `p_ref`
        // near-cubic chunks: `2D * N^((D-1)/D) * P^(1/D)` — `4 * sqrt(N*P)`
        // in 2-D (kept as the original expression so 2-D results stay
        // bit-identical), `6 * cbrt(N^2 * P)` in 3-D.
        let n = cells as f64;
        let p = p_ref as f64;
        let cut_surface = match D {
            2 => 4.0 * (n * p).sqrt(),
            3 => 6.0 * (n * n * p).cbrt(),
            _ => 2.0 * D as f64 * n.powf((D as f64 - 1.0) / D as f64) * p.powf(1.0 / D as f64),
        };
        // Neither bound can exceed the level itself.
        worst += (boundary + cut_surface).min(cells as f64) * mult;
    }
    (worst / workload).clamp(0.0, 1.0)
}

/// Ab-initio load-imbalance penalty `β_l ∈ [0, 1]` for a run on `p_ref`
/// processors: how close the heaviest `unit`-sized workload column comes
/// to (twice) the ideal per-processor share.
pub fn beta_l<const D: usize>(h: &GridHierarchy<D>, unit: i64, p_ref: usize) -> f64 {
    let weights = unit_workloads(h, unit);
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let w_max = *weights.iter().max().unwrap() as f64;
    let ideal = total as f64 / p_ref as f64;
    (w_max / (2.0 * ideal)).clamp(0.0, 1.0)
}

/// Dimension-1 coordinate: 0 → all pressure on communication, 1 → all
/// pressure on load balance, 0.5 → neither dominates.
pub fn dimension1(beta_l: f64, beta_c: f64) -> f64 {
    let s = beta_l + beta_c;
    if s <= 0.0 {
        0.5
    } else {
        (beta_l / s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn beta_c_unrefined_grid_matches_closed_form() {
        // 64x64 base: boundary 252, cut surface 4·√(4096·16) = 1024.
        let h = GridHierarchy::base_only(Rect2::from_extents(64, 64), 2);
        let v = beta_c(&h, 16);
        let expected = (252.0 + 4.0 * (4096.0f64 * 16.0).sqrt()) / 4096.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn beta_c_rises_when_grid_shrinks_at_fixed_p() {
        // The √(N·P)/N cut-surface scaling: smaller grids cost relatively
        // more communication on the same processor count.
        let big = GridHierarchy::base_only(Rect2::from_extents(128, 128), 2);
        let small = GridHierarchy::base_only(Rect2::from_extents(32, 32), 2);
        assert!(beta_c(&small, 16) > beta_c(&big, 16) + 0.05);
    }

    #[test]
    fn beta_c_grows_with_processor_count() {
        let h = GridHierarchy::base_only(Rect2::from_extents(64, 64), 2);
        assert!(beta_c(&h, 64) > beta_c(&h, 16));
        assert!(beta_c(&h, 16) > beta_c(&h, 4));
    }

    #[test]
    fn beta_c_jumps_for_fragmented_refinement() {
        // Many small patches => high surface/volume => aggressive β_c.
        let compact = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[vec![], vec![r(0, 0, 31, 31)]],
        );
        let mut tiles = Vec::new();
        for ty in 0..8 {
            for tx in 0..8 {
                if (tx + ty) % 2 == 0 {
                    tiles.push(r(tx * 8, ty * 8, tx * 8 + 3, ty * 8 + 3));
                }
            }
        }
        let fragmented =
            GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &[vec![], tiles]);
        assert!(beta_c(&fragmented, 16) > beta_c(&compact, 16) + 0.1);
    }

    #[test]
    fn beta_c_thin_patches_saturate_their_level() {
        // 2-wide patches are all boundary: the level contributes its whole
        // workload (the min(., cells) clamp).
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[vec![], vec![r(0, 0, 63, 1)]],
        );
        let w = h.workload() as f64;
        // Base 32x32: boundary 124 + cut 4·√(1024·16) = 512, capped at
        // 1024? 124+512=636 < 1024. Level 1: 128 cells, all boundary,
        // clamped at 128, twice per coarse step.
        let expected = ((636 + 128 * 2) as f64 / w).min(1.0);
        assert!((beta_c(&h, 16) - expected).abs() < 1e-9);
    }

    #[test]
    fn beta_l_flat_grid_is_small() {
        // Uniform 32x32 base over 16 procs: one 2x2 unit carries 4 of
        // 1024 cells; ideal share is 64 => β_l = 4/(2·64) = 1/32.
        let flat = GridHierarchy::base_only(Rect2::from_extents(32, 32), 2);
        let v = beta_l(&flat, 2, 16);
        assert!((v - 4.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn beta_l_detects_intractable_deep_pyramids() {
        // §3.1: small base grid + many processors + deep localized
        // refinement. The heaviest 2x2 column carries the whole pyramid.
        let pyramid = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[
                vec![],
                vec![r(0, 0, 7, 7)],
                vec![r(0, 0, 15, 15)],
                vec![r(0, 0, 31, 31)],
            ],
        );
        let v = beta_l(&pyramid, 2, 32);
        assert!(v > 0.5, "deep pyramid on 32 procs: β_l = {v}");
        // The same hierarchy on 2 processors is unproblematic.
        let easy = beta_l(&pyramid, 2, 2);
        assert!(easy < v / 4.0, "2 procs: β_l = {easy}");
    }

    #[test]
    fn beta_l_grows_with_processor_count() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[vec![], vec![r(0, 0, 15, 15)], vec![r(0, 0, 15, 15)]],
        );
        assert!(beta_l(&h, 2, 64) > beta_l(&h, 2, 16));
        assert!(beta_l(&h, 2, 16) > beta_l(&h, 2, 4));
    }

    #[test]
    fn dimension1_weighs_the_pair() {
        assert_eq!(dimension1(0.0, 0.0), 0.5);
        assert!(dimension1(0.8, 0.1) > 0.8);
        assert!(dimension1(0.1, 0.8) < 0.2);
        assert!((dimension1(0.3, 0.3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn penalties_stay_in_range_for_deep_hierarchies() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[
                vec![],
                vec![r(0, 0, 31, 31)],
                vec![r(0, 0, 63, 63)],
                vec![r(0, 0, 127, 127)],
                vec![r(0, 0, 255, 255)],
            ],
        );
        let c = beta_c(&h, 16);
        let l = beta_l(&h, 2, 16);
        assert!((0.0..=1.0).contains(&c));
        assert!((0.0..=1.0).contains(&l));
    }
}
