//! Ablation experiments for the design choices DESIGN.md §6 calls out.
//!
//! Each bench measures the ablated pipeline and prints (once) the
//! quality deltas that justify the paper's choices:
//!
//! - **ABL1** — β_m denominator `|H_t|` vs `|H_{t-1}|` (§4.4): correlation
//!   against measured migration under each choice;
//! - **ABL2** — the §4.2 absolute-importance grid-size weighting of
//!   Trade-off 2 on/off: how much the request signal tracks grid-size
//!   peaks;
//! - **ablation_sfc** — fully vs partially ordered SFC in the hybrid: the
//!   migration inflation the paper suspects ("perhaps due to the
//!   partially ordered space-filling curve", §5.2);
//! - **ablation_cluster_eff** — Berger–Rigoutsos efficiency threshold:
//!   patch count and β_c aggressiveness.

use criterion::{criterion_group, criterion_main, Criterion};
use samr::apps::{generate_trace, AppKind};
use samr::model::model::{BetaMDenominatorConfig, ModelConfig};
use samr::model::ModelPipeline;
use samr::sim::metrics::pearson;
use samr::sim::{simulate_trace, SimConfig};
use samr_bench::{bench_config, bench_trace};
use samr_grid::ClusterOptions;
use samr_partition::{HybridParams, HybridPartitioner};
use std::sync::Once;

/// ABL1: the β_m denominator.
fn ablation_bm_denominator(c: &mut Criterion) {
    let trace = bench_trace(AppKind::Sc2d);
    let sim = simulate_trace(&trace, &HybridPartitioner::default(), &SimConfig::default());
    let measured: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_migration).collect();
    let once = Once::new();
    c.bench_function("ablation_bm_denominator", |b| {
        b.iter(|| {
            let paper = ModelPipeline::new().run(&trace);
            let ablated = ModelPipeline::with_config(ModelConfig {
                denominator: BetaMDenominatorConfig::Previous,
                ..ModelConfig::default()
            })
            .run(&trace);
            let bm_cur: Vec<f64> = paper.iter().skip(1).map(|s| s.beta_m).collect();
            let bm_prev: Vec<f64> = ablated.iter().skip(1).map(|s| s.beta_m).collect();
            let (r_cur, r_prev) = (pearson(&bm_cur, &measured), pearson(&bm_prev, &measured));
            once.call_once(|| {
                println!(
                    "\nABL1 (SC2D): β_m vs measured migration — |H_t| denominator r={r_cur:.3}, |H_t-1| denominator r={r_prev:.3}"
                )
            });
            std::hint::black_box(r_cur - r_prev)
        })
    });
}

/// ABL2: the absolute-importance grid-size weighting.
fn ablation_importance(c: &mut Criterion) {
    let trace = bench_trace(AppKind::Sc2d);
    let once = Once::new();
    c.bench_function("ablation_importance", |b| {
        b.iter(|| {
            let weighted = ModelPipeline::new().run(&trace);
            let unweighted = ModelPipeline::with_config(ModelConfig {
                weight_by_grid_size: false,
                ..ModelConfig::default()
            })
            .run(&trace);
            // The weighted request must track grid size; the unweighted
            // one must not.
            let points: Vec<f64> = trace
                .snapshots
                .iter()
                .map(|s| s.hierarchy.total_points() as f64)
                .collect();
            let req_w: Vec<f64> = weighted.iter().map(|s| s.tradeoff2.request).collect();
            let req_u: Vec<f64> = unweighted.iter().map(|s| s.tradeoff2.request).collect();
            let (rw, ru) = (pearson(&req_w, &points), pearson(&req_u, &points));
            once.call_once(|| {
                println!(
                    "\nABL2 (SC2D): Trade-off 2 request vs grid size — weighted r={rw:.3}, unweighted r={ru:.3}"
                )
            });
            std::hint::black_box(rw - ru)
        })
    });
}

/// Fully vs partially ordered SFC in the hybrid partitioner.
fn ablation_sfc(c: &mut Criterion) {
    let trace = bench_trace(AppKind::Bl2d);
    let once = Once::new();
    c.bench_function("ablation_sfc", |b| {
        b.iter(|| {
            let partial = simulate_trace(
                &trace,
                &HybridPartitioner::default(), // partial ordering default
                &SimConfig::default(),
            );
            let full = simulate_trace(
                &trace,
                &HybridPartitioner::new(HybridParams {
                    full_order: true,
                    ..HybridParams::default()
                }),
                &SimConfig::default(),
            );
            let mig = |r: &samr::sim::SimResult| {
                r.steps.iter().map(|s| s.rel_migration).sum::<f64>() / r.steps.len() as f64
            };
            let (mp, mf) = (mig(&partial), mig(&full));
            once.call_once(|| {
                println!(
                    "\nablation_sfc (BL2D): mean relative migration — partial order {mp:.3}, full order {mf:.3}"
                )
            });
            std::hint::black_box(mp - mf)
        })
    });
}

/// Berger–Rigoutsos efficiency threshold.
fn ablation_cluster_eff(c: &mut Criterion) {
    let once = Once::new();
    let mut cfg_lo = bench_config();
    cfg_lo.cluster = ClusterOptions {
        min_efficiency: 0.5,
        ..ClusterOptions::paper_defaults()
    };
    cfg_lo.steps = 12;
    let mut cfg_hi = cfg_lo.clone();
    cfg_hi.cluster.min_efficiency = 0.9;
    c.bench_function("ablation_cluster_eff", |b| {
        b.iter(|| {
            let lo = generate_trace(AppKind::Sc2d, &cfg_lo);
            let hi = generate_trace(AppKind::Sc2d, &cfg_hi);
            let stats = |t: &samr::trace::HierarchyTrace<2>| {
                let patches: usize = t
                    .snapshots
                    .iter()
                    .map(|s| {
                        s.hierarchy
                            .levels
                            .iter()
                            .map(|l| l.patch_count())
                            .sum::<usize>()
                    })
                    .sum();
                let bc: f64 = t
                    .snapshots
                    .iter()
                    .map(|s| samr::model::tradeoff1::beta_c(&s.hierarchy, 16))
                    .sum::<f64>()
                    / t.len() as f64;
                (patches, bc)
            };
            let (p_lo, bc_lo) = stats(&lo);
            let (p_hi, bc_hi) = stats(&hi);
            once.call_once(|| {
                println!(
                    "\nablation_cluster_eff (SC2D, 12 steps): eff 0.5 -> {p_lo} patches, mean β_c {bc_lo:.3}; eff 0.9 -> {p_hi} patches, mean β_c {bc_hi:.3}"
                )
            });
            std::hint::black_box(p_lo + p_hi)
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = ablations;
    config = configure();
    targets = ablation_bm_denominator, ablation_importance, ablation_sfc, ablation_cluster_eff
}
criterion_main!(ablations);
