//! Micro-benchmarks of the computational kernels everything else is
//! built from: box algebra, space-filling curves, clustering, the model
//! penalties and the solvers' trace generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use samr::model::tradeoff3::{beta_m, hierarchy_overlap};
use samr_apps::{generate_trace, AppKind, TraceGenConfig};
use samr_bench::{bench_trace, representative_hierarchy};
use samr_geom::sfc::{hilbert_key, morton_key};
use samr_geom::{boxops, Point2, Rect2, Region};
use samr_grid::{cluster_flags, ClusterOptions, FlagField};

fn random_rects(n: usize, seed: u64) -> Vec<Rect2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0i64..200);
            let y = rng.random_range(0i64..200);
            let w = rng.random_range(1i64..30);
            let h = rng.random_range(1i64..30);
            Rect2::new(Point2::new(x, y), Point2::new(x + w, y + h))
        })
        .collect()
}

fn box_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("box_algebra");
    let rects = random_rects(256, 7);
    g.throughput(Throughput::Elements(256 * 256));
    g.bench_function("pairwise_overlap_256x256", |b| {
        b.iter(|| boxops::pairwise_overlap_cells(&rects, &rects))
    });
    let small = random_rects(64, 9);
    g.bench_function("disjointify_64", |b| b.iter(|| boxops::disjointify(&small)));
    g.bench_function("region_union_2x64", |b| {
        let a = Region::from_boxes(&small);
        let other = Region::from_boxes(&random_rects(64, 11));
        b.iter(|| a.union(&other).cells())
    });
    g.finish();
}

fn sfc_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("sfc_keys");
    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("morton_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for y in 0..256u64 {
                for x in 0..256u64 {
                    acc = acc.wrapping_add(morton_key(x, y));
                }
            }
            acc
        })
    });
    g.bench_function("hilbert_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for y in 0..256u64 {
                for x in 0..256u64 {
                    acc = acc.wrapping_add(hilbert_key(8, x, y));
                }
            }
            acc
        })
    });
    g.finish();
}

fn clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("berger_rigoutsos");
    // A wavefront-like ring of flags on a 256^2 grid: the real workload
    // shape of the grid generator.
    let flags = FlagField::from_fn(Rect2::from_extents(256, 256), |p| {
        let dx = p.x as f64 - 127.5;
        let dy = p.y as f64 - 127.5;
        let r = (dx * dx + dy * dy).sqrt();
        (80.0..=92.0).contains(&r)
    });
    g.bench_function("ring_256", |b| {
        b.iter(|| cluster_flags(&flags, &ClusterOptions::paper_defaults()))
    });
    let scattered = FlagField::from_fn(Rect2::from_extents(256, 256), |p| {
        (p.x * 7 + p.y * 13) % 29 == 0
    });
    g.bench_function("scattered_256", |b| {
        b.iter(|| cluster_flags(&scattered, &ClusterOptions::paper_defaults()))
    });
    g.finish();
}

fn model_penalties(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_penalties");
    let trace = bench_trace(AppKind::Sc2d);
    let mid = trace.len() / 2;
    let (a, b2) = (trace.hierarchy(mid), trace.hierarchy(mid + 1));
    g.bench_function("beta_m_pair", |b| b.iter(|| beta_m(a, b2)));
    g.bench_function("hierarchy_overlap_pair", |b| {
        b.iter(|| hierarchy_overlap(a, b2))
    });
    let h = representative_hierarchy(AppKind::Sc2d);
    g.bench_function("beta_c", |b| {
        b.iter(|| samr::model::tradeoff1::beta_c(&h, 16))
    });
    g.bench_function("beta_l", |b| {
        b.iter(|| samr::model::tradeoff1::beta_l(&h, 2, 16))
    });
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    let cfg = TraceGenConfig::smoke();
    for kind in AppKind::ALL {
        g.bench_function(format!("smoke_{}", kind.name()), |b| {
            b.iter_batched(
                || cfg.clone(),
                |cfg| generate_trace(kind, &cfg),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    box_algebra,
    sfc_keys,
    clustering,
    model_penalties,
    trace_generation
);
criterion_main!(kernels);
