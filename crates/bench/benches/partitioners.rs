//! Partitioner benchmarks: the three families on the hardest hierarchy
//! of each application trace, across processor counts — the paper's §4.3
//! argument that partitioning *speed* is a tradable quantity needs actual
//! speed numbers per family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samr_apps::AppKind;
use samr_bench::representative_hierarchy;
use samr_partition::{DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner};
use std::sync::Once;

fn partitioner_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    let once = Once::new();
    for kind in [AppKind::Sc2d, AppKind::Rm2d] {
        let h = representative_hierarchy(kind);
        once.call_once(|| {
            println!(
                "\nrepresentative {}: {} levels, {} patches, {} points",
                kind.name(),
                h.depth(),
                h.levels.iter().map(|l| l.patch_count()).sum::<usize>(),
                h.total_points()
            )
        });
        for nprocs in [16usize, 64] {
            g.bench_with_input(
                BenchmarkId::new(format!("domain_sfc_{}", kind.name()), nprocs),
                &nprocs,
                |b, &n| {
                    let p = DomainSfcPartitioner::default();
                    b.iter(|| p.partition(&h, n))
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("patch_{}", kind.name()), nprocs),
                &nprocs,
                |b, &n| {
                    let p = PatchPartitioner::default();
                    b.iter(|| p.partition(&h, n))
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("hybrid_{}", kind.name()), nprocs),
                &nprocs,
                |b, &n| {
                    let p = HybridPartitioner::default();
                    b.iter(|| p.partition(&h, n))
                },
            );
        }
    }
    g.finish();
}

fn simulation_step(c: &mut Criterion) {
    use samr_sim::{simulate_trace, SimConfig};
    let mut g = c.benchmark_group("simulate_trace");
    g.sample_size(10);
    let trace = samr_bench::bench_trace(AppKind::Bl2d);
    for (name, p) in [
        (
            "hybrid",
            Box::new(HybridPartitioner::default()) as Box<dyn Partitioner<2> + Sync>,
        ),
        ("domain_sfc", Box::new(DomainSfcPartitioner::default())),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| simulate_trace(&trace, p.as_ref(), &SimConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(partitioners, partitioner_families, simulation_step);
criterion_main!(partitioners);
