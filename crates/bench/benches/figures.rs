//! Figure-regeneration benches: one group per data figure of the paper.
//!
//! Each bench runs the figure's full analysis pipeline (model, partition,
//! execution simulation) through `samr-engine` over the shared cached
//! trace and prints the resulting series summary once, so `cargo bench`
//! both regenerates the paper's rows and measures the cost of producing
//! them. The `campaign_sweep` bench measures the engine's rayon-parallel
//! sweep itself. Trace generation is excluded from the measured regions
//! (it is the substrate, not the contribution) and is benchmarked
//! separately in `kernels`.

use criterion::{criterion_group, criterion_main, Criterion};
use samr::apps::AppKind;
use samr::engine::{configs, Campaign, CampaignSpec, PartitionerSpec, ValidationRun};
use samr::meta::compare_on_trace;
use samr::model::ModelPipeline;
use samr::sim::SimConfig;
use samr_bench::{bench_config, bench_trace};
use std::sync::Once;

fn validation_figure(c: &mut Criterion, id: &str, kind: AppKind) {
    let trace = bench_trace(kind);
    let sim_cfg = configs::sim();
    let once = Once::new();
    c.bench_function(id, |b| {
        b.iter(|| {
            let run = ValidationRun::from_trace(kind, &trace, &sim_cfg);
            once.call_once(|| println!("\n{}\n", run.summary()));
            std::hint::black_box(run.migration_shape.correlation)
        })
    });
}

/// Figure 1: BL2D load imbalance and communication under a static P.
fn fig1_bl2d_dynamics(c: &mut Criterion) {
    let trace = bench_trace(AppKind::Bl2d);
    let sim_cfg = configs::sim();
    let once = Once::new();
    c.bench_function("fig1_bl2d_dynamics", |b| {
        b.iter(|| {
            let run = ValidationRun::from_trace(AppKind::Bl2d, &trace, &sim_cfg);
            let imb: Vec<f64> = run.sim.steps.iter().map(|s| s.load_imbalance).collect();
            let comm: Vec<f64> = run.sim.steps.iter().map(|s| s.rel_comm).collect();
            once.call_once(|| {
                println!(
                    "\nFigure 1 (BL2D, static P): imbalance mean {:.3} range [{:.3},{:.3}]; rel comm mean {:.3}\n",
                    imb.iter().sum::<f64>() / imb.len() as f64,
                    imb.iter().cloned().fold(f64::INFINITY, f64::min),
                    imb.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    comm.iter().sum::<f64>() / comm.len() as f64,
                );
            });
            std::hint::black_box(imb.len() + comm.len())
        })
    });
}

/// Figure 3 (right): the continuous classification-space locus.
fn fig3_state_locus(c: &mut Criterion) {
    let once = Once::new();
    c.bench_function("fig3_state_locus", |b| {
        b.iter(|| {
            let mut total_arc = 0.0;
            for kind in AppKind::ALL {
                let trace = bench_trace(kind);
                let curve = ModelPipeline::new().state_curve(&trace);
                once.call_once(|| {
                    println!(
                        "\nFigure 3R: {} locus arc length {:.3}, {} octant transitions",
                        kind.name(),
                        curve.arc_length(),
                        curve.octant_transitions()
                    );
                });
                total_arc += curve.arc_length();
            }
            std::hint::black_box(total_arc)
        })
    });
}

fn fig4_rm2d(c: &mut Criterion) {
    validation_figure(c, "fig4_rm2d", AppKind::Rm2d);
}

fn fig5_bl2d(c: &mut Criterion) {
    validation_figure(c, "fig5_bl2d", AppKind::Bl2d);
}

fn fig6_sc2d(c: &mut Criterion) {
    validation_figure(c, "fig6_sc2d", AppKind::Sc2d);
}

fn fig7_tp2d(c: &mut Criterion) {
    validation_figure(c, "fig7_tp2d", AppKind::Tp2d);
}

/// QUAL1: the shape statistics across all four applications at once.
fn qual_shape_stats(c: &mut Criterion) {
    let sim_cfg = configs::sim();
    let once = Once::new();
    c.bench_function("qual_shape_stats", |b| {
        b.iter(|| {
            let mut worst_mig_r = f64::INFINITY;
            for kind in AppKind::ALL {
                let trace = bench_trace(kind);
                let run = ValidationRun::from_trace(kind, &trace, &sim_cfg);
                worst_mig_r = worst_mig_r.min(run.migration_shape.correlation);
                once.call_once(|| println!("\nQUAL1 worst-case checks run over 4 apps"));
            }
            std::hint::black_box(worst_mig_r)
        })
    });
}

/// META1: static vs dynamic selection.
fn meta_vs_static(c: &mut Criterion) {
    let once = Once::new();
    c.bench_function("meta_vs_static", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for kind in AppKind::ALL {
                let trace = bench_trace(kind);
                let res = compare_on_trace(&trace, &SimConfig::default());
                once.call_once(|| {
                    println!(
                        "\nMETA1 ({} shown once): meta/best {:.3}, meta/worst {:.3}",
                        kind.name(),
                        res.meta_vs_best(),
                        res.meta_vs_worst()
                    );
                });
                sum += res.meta_vs_best();
            }
            std::hint::black_box(sum)
        })
    });
}

/// The engine's sweep itself: a 4-app × 2-partitioner campaign over the
/// warm trace store, rayon-parallel over scenarios.
fn campaign_sweep(c: &mut Criterion) {
    // Warm the shared store so only partition + simulate is measured.
    for kind in AppKind::ALL {
        bench_trace(kind);
    }
    let spec = CampaignSpec::new(bench_config()).partitioners([
        PartitionerSpec::parse("hybrid").expect("registry name"),
        PartitionerSpec::parse("domain-sfc").expect("registry name"),
    ]);
    let once = Once::new();
    c.bench_function("campaign_sweep_4x2", |b| {
        b.iter(|| {
            let outcomes = Campaign::run(&spec);
            once.call_once(|| println!("\ncampaign: {} scenarios per iteration\n", outcomes.len()));
            std::hint::black_box(outcomes.len())
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = configure();
    targets = fig1_bl2d_dynamics, fig3_state_locus, fig4_rm2d, fig5_bl2d,
              fig6_sc2d, fig7_tp2d, qual_shape_stats, meta_vs_static,
              campaign_sweep
}
criterion_main!(figures);
