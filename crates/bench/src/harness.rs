//! Wall-clock benchmark harness with machine-readable JSON reports.
//!
//! The vendored criterion stub prints human-oriented text; this harness
//! is the *measured* perf surface of the repo: each suite produces a
//! [`BenchReport`] — schema `samr-bench/1` — that `samr bench` writes to
//! `BENCH_<suite>.json` at the repo root, and `samr bench --check`
//! compares a fresh run against a checked-in baseline, failing on
//! regressions beyond a tolerance. Timing is plain wall clock: a
//! calibration pass sizes the iteration count to a fixed measurement
//! budget, a warmup run precedes it, and `std::hint::black_box` keeps
//! the optimizer from deleting the measured work.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The report schema identifier; bump when the JSON shape changes.
pub const SCHEMA: &str = "samr-bench/1";

/// One benchmark measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark name, unique within its suite.
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_op: f64,
    /// Units of work per second (`None` when the bench has no natural
    /// element count).
    pub throughput: Option<f64>,
    /// What `throughput` counts (e.g. `"keys/s"`, `"cells/s"`).
    pub throughput_units: Option<String>,
}

/// A whole suite's measurements plus provenance.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Suite name (`kernels`, `partition`, `campaign`).
    pub suite: String,
    /// The measurement budget the suite ran under ([`BenchBudget::name`]:
    /// `full`, `quick` or `custom`). Numbers from different budgets are
    /// not comparable — `--check` refuses a budget mismatch unless
    /// explicitly overridden.
    pub budget: String,
    /// `git describe --always --dirty` of the measured tree, or
    /// `"unknown"` outside a git checkout.
    pub git_describe: String,
    /// Rayon pool width during the run.
    pub threads: usize,
    /// The measurements, in suite order.
    pub benches: Vec<BenchRecord>,
}

// Hand-written (the derive errors on missing fields): baselines pinned
// before the budget was recorded deserialize as `full` — exactly what
// they were, since only full-budget numbers were ever checked in.
impl serde::Deserialize for BenchReport {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            schema: serde::field(v, "schema")?,
            suite: serde::field(v, "suite")?,
            budget: match v.get("budget") {
                Some(b) => serde::Deserialize::deserialize(b)
                    .map_err(|e| serde::Error(format!("field `budget`: {e}")))?,
                None => "full".to_string(),
            },
            git_describe: serde::field(v, "git_describe")?,
            threads: serde::field(v, "threads")?,
            benches: serde::field(v, "benches")?,
        })
    }
}

impl BenchReport {
    /// An empty report for `suite` under `budget`, stamped with the
    /// current provenance.
    pub fn new(suite: &str, budget: BenchBudget) -> Self {
        Self {
            schema: SCHEMA.to_string(),
            suite: suite.to_string(),
            budget: budget.name().to_string(),
            git_describe: git_describe(),
            threads: rayon::current_num_threads(),
            benches: Vec::new(),
        }
    }

    /// Look up a measurement by name.
    pub fn get(&self, name: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.name == name)
    }
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable (reports must never fail on provenance).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measurement budget: how long the timed loop should run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchBudget {
    /// Target wall-clock nanoseconds for the timed loop.
    pub target_ns: u64,
    /// Iteration-count ceiling (cheap kernels would otherwise spin for
    /// millions of iterations without improving the estimate).
    pub max_iters: u64,
}

impl BenchBudget {
    /// The default budget: ~200 ms per bench.
    pub fn default_budget() -> Self {
        Self {
            target_ns: 200_000_000,
            max_iters: 1_000_000,
        }
    }

    /// The `--quick` budget: ~20 ms per bench — CI smoke, not numbers
    /// worth pinning.
    pub fn quick() -> Self {
        Self {
            target_ns: 20_000_000,
            max_iters: 100_000,
        }
    }

    /// The budget's report name: `full` and `quick` for the two
    /// standard budgets, `custom` for anything else. Reports record
    /// this so a check can refuse to compare numbers measured under
    /// different budgets.
    pub fn name(&self) -> &'static str {
        if *self == Self::default_budget() {
            "full"
        } else if *self == Self::quick() {
            "quick"
        } else {
            "custom"
        }
    }
}

/// The optimized-over-baseline speedup `base / current`, or `None` when
/// either timing is non-positive or non-finite — a degenerate
/// measurement must not print as a `inf x` or `NaN x` speedup.
pub fn speedup(base: &BenchRecord, current: &BenchRecord) -> Option<f64> {
    let (b, c) = (base.ns_per_op, current.ns_per_op);
    (b.is_finite() && c.is_finite() && b > 0.0 && c > 0.0).then(|| b / c)
}

/// Time `f` under `budget` and record it as `name`.
///
/// One calibration call sizes the iteration count so the timed loop
/// lands near the budget; a warmup of `iters/10 + 1` runs precedes the
/// measurement. `f`'s return value is fed through
/// [`std::hint::black_box`] so computing it cannot be optimized away —
/// return the kernel's result (an accumulator, a length), not `()`.
/// `elements` is the work per iteration for throughput accounting,
/// e.g. `Some((65536.0, "keys/s"))`.
pub fn bench_fn<R>(
    name: &str,
    budget: BenchBudget,
    elements: Option<(f64, &str)>,
    mut f: impl FnMut() -> R,
) -> BenchRecord {
    // Calibrate: one run, floor the estimate at 1ns to bound the count.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let iters = (budget.target_ns / once_ns).clamp(1, budget.max_iters);
    for _ in 0..iters / 10 + 1 {
        std::hint::black_box(f());
    }
    let t1 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = t1.elapsed().as_nanos() as f64;
    let ns_per_op = elapsed / iters as f64;
    let (throughput, throughput_units) = match elements {
        Some((n, units)) => (Some(n * 1e9 / ns_per_op), Some(units.to_string())),
        None => (None, None),
    };
    BenchRecord {
        name: name.to_string(),
        iters,
        ns_per_op,
        throughput,
        throughput_units,
    }
}

/// One baseline-versus-current discrepancy found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub enum Regression {
    /// The bench got slower than the baseline by more than the
    /// tolerance.
    Slower {
        /// Benchmark name.
        name: String,
        /// Baseline ns/op.
        baseline_ns: f64,
        /// Current ns/op.
        current_ns: f64,
        /// `current / baseline`.
        ratio: f64,
    },
    /// The baseline has a bench the current run lacks — a silently
    /// dropped measurement must fail the check too.
    Missing {
        /// Benchmark name present only in the baseline.
        name: String,
    },
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regression::Slower {
                name,
                baseline_ns,
                current_ns,
                ratio,
            } => write!(
                f,
                "{name}: {current_ns:.0} ns/op vs baseline {baseline_ns:.0} ns/op ({ratio:.2}x)"
            ),
            Regression::Missing { name } => {
                write!(f, "{name}: present in baseline but not measured")
            }
        }
    }
}

/// Compare `current` against `baseline`: every baseline bench must be
/// present and no more than `tolerance_pct` percent slower. Returns the
/// violations (empty = check passed). Benches only in `current` are new
/// and pass by construction.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let allowed = 1.0 + tolerance_pct / 100.0;
    for base in &baseline.benches {
        match current.get(&base.name) {
            None => out.push(Regression::Missing {
                name: base.name.clone(),
            }),
            Some(cur) if cur.ns_per_op > base.ns_per_op * allowed => {
                out.push(Regression::Slower {
                    name: base.name.clone(),
                    baseline_ns: base.ns_per_op,
                    current_ns: cur.ns_per_op,
                    ratio: cur.ns_per_op / base.ns_per_op,
                });
            }
            Some(_) => {}
        }
    }
    out
}

/// Structural validation of a parsed report: the schema tag, suite
/// name, and per-record sanity (used by `--check` before comparing, so
/// a clobbered baseline file fails loudly instead of vacuously
/// passing).
pub fn validate(report: &BenchReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema '{}' is not the supported '{SCHEMA}'",
            report.schema
        ));
    }
    if report.suite.is_empty() {
        return Err("empty suite name".into());
    }
    if report.budget.is_empty() {
        return Err(format!("suite '{}' has an empty budget tag", report.suite));
    }
    if report.benches.is_empty() {
        return Err(format!("suite '{}' has no benches", report.suite));
    }
    for b in &report.benches {
        if b.name.is_empty() {
            return Err(format!("suite '{}' has an unnamed bench", report.suite));
        }
        if b.iters == 0 || !b.ns_per_op.is_finite() || b.ns_per_op <= 0.0 {
            return Err(format!("bench '{}' has degenerate timing", b.name));
        }
        if b.throughput.is_some() != b.throughput_units.is_some() {
            return Err(format!(
                "bench '{}' has throughput without units (or vice versa)",
                b.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            iters: 100,
            ns_per_op: ns,
            throughput: None,
            throughput_units: None,
        }
    }

    fn report(benches: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.into(),
            suite: "kernels".into(),
            budget: "full".into(),
            git_describe: "test".into(),
            threads: 1,
            benches,
        }
    }

    #[test]
    fn bench_fn_measures_and_reports_throughput() {
        let r = bench_fn(
            "sum_1k",
            BenchBudget::quick(),
            Some((1000.0, "adds/s")),
            || (0..1000u64).sum::<u64>(),
        );
        assert_eq!(r.name, "sum_1k");
        assert!(r.iters >= 1);
        assert!(r.ns_per_op > 0.0);
        assert!(r.throughput.unwrap() > 0.0);
        assert_eq!(r.throughput_units.as_deref(), Some("adds/s"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut rep = report(vec![record("a", 10.0)]);
        rep.benches[0].throughput = Some(1e9);
        rep.benches[0].throughput_units = Some("keys/s".into());
        let json = serde_json::to_string_pretty(&rep).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        assert!(validate(&back).is_ok());
    }

    #[test]
    fn compare_flags_slowdowns_and_missing_benches() {
        let base = report(vec![
            record("a", 100.0),
            record("b", 100.0),
            record("c", 100.0),
        ]);
        let cur = report(vec![record("a", 105.0), record("b", 200.0)]);
        let regs = compare(&cur, &base, 10.0);
        assert_eq!(regs.len(), 2);
        assert!(matches!(&regs[0], Regression::Slower { name, ratio, .. }
            if name == "b" && (*ratio - 2.0).abs() < 1e-9));
        assert!(matches!(&regs[1], Regression::Missing { name } if name == "c"));
        // Within tolerance, and benches new in `cur`, pass.
        let cur2 = report(vec![
            record("a", 109.0),
            record("b", 100.0),
            record("c", 90.0),
            record("d", 1.0),
        ]);
        assert!(compare(&cur2, &base, 10.0).is_empty());
    }

    #[test]
    fn budget_names_tag_reports_and_default_on_legacy_baselines() {
        assert_eq!(BenchBudget::default_budget().name(), "full");
        assert_eq!(BenchBudget::quick().name(), "quick");
        let odd = BenchBudget {
            target_ns: 1,
            max_iters: 1,
        };
        assert_eq!(odd.name(), "custom");
        assert_eq!(
            BenchReport::new("kernels", BenchBudget::quick()).budget,
            "quick"
        );
        // A baseline pinned before the budget field existed parses as
        // full budget — which is what every checked-in baseline was.
        let legacy = format!(
            "{{\"schema\": \"{SCHEMA}\", \"suite\": \"kernels\", \
             \"git_describe\": \"test\", \"threads\": 1, \"benches\": []}}"
        );
        let back: BenchReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.budget, "full");
        // And a recorded budget roundtrips.
        let mut rep = report(vec![record("a", 10.0)]);
        rep.budget = "quick".into();
        let json = serde_json::to_string(&rep).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn speedup_guards_degenerate_timings() {
        let base = record("a", 100.0);
        let fast = record("a", 25.0);
        assert_eq!(speedup(&base, &fast), Some(4.0));
        let zero = record("a", 0.0);
        assert_eq!(speedup(&base, &zero), None);
        assert_eq!(speedup(&zero, &fast), None);
        let nan = record("a", f64::NAN);
        assert_eq!(speedup(&base, &nan), None);
        assert_eq!(speedup(&nan, &base), None);
    }

    #[test]
    fn validate_rejects_malformed_reports() {
        assert!(validate(&report(vec![record("a", 1.0)])).is_ok());
        let mut bad = report(vec![record("a", 1.0)]);
        bad.schema = "other/9".into();
        assert!(validate(&bad).is_err());
        let mut no_budget = report(vec![record("a", 1.0)]);
        no_budget.budget = String::new();
        assert!(validate(&no_budget).is_err());
        assert!(validate(&report(vec![])).is_err());
        let mut nan = report(vec![record("a", f64::NAN)]);
        nan.benches[0].ns_per_op = f64::NAN;
        assert!(validate(&nan).is_err());
        let mut units = report(vec![record("a", 1.0)]);
        units.benches[0].throughput = Some(1.0);
        assert!(validate(&units).is_err());
    }
}
