//! # samr-bench — benchmark harness support
//!
//! The actual benchmarks live in `benches/`:
//!
//! - `figures`: one group per data figure of the paper (Figures 1, 3
//!   right, 4–7) — each bench runs the `samr-engine` regeneration
//!   pipeline on the shared cached trace and prints the series summary
//!   once, plus a whole-campaign sweep bench;
//! - `kernels`: micro-benchmarks of the hot computational kernels (box
//!   intersection, region algebra, SFC keys, Berger–Rigoutsos, β_m);
//! - `partitioners`: the three partitioner families on representative
//!   hierarchies at several processor counts;
//! - `ablations`: the design-choice experiments from DESIGN.md §6 (β_m
//!   denominator, grid-size weighting, SFC ordering, cluster efficiency).
//!
//! This crate body only hosts shared helpers.

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::cached_trace;
use samr_grid::GridHierarchy;
use samr_trace::HierarchyTrace;
use std::sync::Arc;

/// The benchmark trace configuration: the reduced experiment config (the
/// full paper config is run by the examples; benches favour wall-clock).
pub fn bench_config() -> TraceGenConfig {
    samr_engine::configs::reduced()
}

/// Cached trace for benchmarking.
pub fn bench_trace(kind: AppKind) -> Arc<HierarchyTrace> {
    cached_trace(kind, &bench_config())
}

/// A representative mid-run hierarchy (deep, many patches) of an
/// application — the unit input for partitioner and model benches.
pub fn representative_hierarchy(kind: AppKind) -> GridHierarchy {
    let trace = bench_trace(kind);
    // Pick the snapshot with the most patches: the hardest instance.
    trace
        .snapshots
        .iter()
        .max_by_key(|s| {
            s.hierarchy
                .levels
                .iter()
                .map(|l| l.patch_count())
                .sum::<usize>()
        })
        .expect("non-empty trace")
        .hierarchy
        .clone()
}
