//! # samr-bench — benchmark harness support
//!
//! Two benchmark surfaces live here:
//!
//! - **The JSON harness** ([`harness`] + [`suites`], driven by
//!   `samr bench`): fixed wall-clock suites that emit machine-readable
//!   `BENCH_<suite>.json` reports and support baseline regression
//!   checks. **This is the source of truth for performance numbers** —
//!   the vendored criterion stub prints human-oriented text only and
//!   its output is neither pinned nor compared. Until a real crate
//!   registry is reachable (the container builds offline), the
//!   criterion benches below stay as exploratory tooling.
//! - The criterion benches in `benches/`:
//!   - `figures`: one group per data figure of the paper (Figures 1, 3
//!     right, 4–7) — each bench runs the `samr-engine` regeneration
//!     pipeline on the shared cached trace and prints the series summary
//!     once, plus a whole-campaign sweep bench;
//!   - `kernels`: micro-benchmarks of the hot computational kernels (box
//!     intersection, region algebra, SFC keys, Berger–Rigoutsos, β_m);
//!   - `partitioners`: the three partitioner families on representative
//!     hierarchies at several processor counts;
//!   - `ablations`: the design-choice experiments from DESIGN.md §6 (β_m
//!     denominator, grid-size weighting, SFC ordering, cluster
//!     efficiency).
//!
//! The rest of the crate body hosts helpers shared by both surfaces.

#![warn(missing_docs)]

pub mod harness;
pub mod suites;

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::cached_trace;
use samr_grid::GridHierarchy;
use samr_trace::HierarchyTrace;
use std::sync::Arc;

/// The benchmark trace configuration: the reduced experiment config (the
/// full paper config is run by the examples; benches favour wall-clock).
pub fn bench_config() -> TraceGenConfig {
    samr_engine::configs::reduced()
}

/// Cached 2-D trace for benchmarking (the paper's kernels). The 2-D view
/// is extracted from the engine store once per application and then
/// shared — bench setup must not clone whole traces per invocation.
pub fn bench_trace(kind: AppKind) -> Arc<HierarchyTrace<2>> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<&'static str, Arc<HierarchyTrace<2>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(t) = cache.lock().unwrap().get(kind.name()) {
        return Arc::clone(t);
    }
    let trace = cached_trace(kind, &bench_config());
    let t2 = Arc::new(
        trace
            .as_2d()
            .expect("bench kernels are the paper's 2-D applications")
            .clone(),
    );
    Arc::clone(cache.lock().unwrap().entry(kind.name()).or_insert(t2))
}

/// A representative mid-run hierarchy (deep, many patches) of an
/// application — the unit input for partitioner and model benches.
pub fn representative_hierarchy(kind: AppKind) -> GridHierarchy<2> {
    let trace = bench_trace(kind);
    // Pick the snapshot with the most patches: the hardest instance.
    trace
        .snapshots
        .iter()
        .max_by_key(|s| {
            s.hierarchy
                .levels
                .iter()
                .map(|l| l.patch_count())
                .sum::<usize>()
        })
        .expect("non-empty trace")
        .hierarchy
        .clone()
}
