//! The fixed benchmark suites behind `samr bench`.
//!
//! Six suites, one report each:
//!
//! - **kernels** — SFC key generation (2-D/3-D Morton and Hilbert,
//!   encode and decode, optimized public path *and* the retained scalar
//!   references so the speedup is measurable from one binary),
//!   Berger–Rigoutsos clustering on representative flag shapes, and the
//!   flag-field scans (signature, count, bounding box);
//! - **partition** — the partitioner families on the hardest snapshot of
//!   representative application traces;
//! - **sim** — the indexed communication/migration accounting against the
//!   retained all-pairs `_naive` oracles, plus the scratch-reusing
//!   partition path against the fresh-allocation one;
//! - **campaign** — one end-to-end reduced campaign through the engine;
//! - **regrid** — the trace-generation hot path: an end-to-end smoke
//!   trace, row-major flag marking vs the per-cell `set` loop, the
//!   arena-backed clusterer vs fresh allocation, and the tiered batch
//!   SFC kernels (detected tier plus a forced-AVX2 run where the CPU
//!   has it) vs their scalar references;
//! - **adaptive** — the repartitioning-policy layer on the PC2D
//!   phase-change workload: the static partitioner baselines, the
//!   adaptive presets, and a never-switching policy whose gap to the
//!   presets isolates the cost of actually switching. The suite
//!   asserts the quality contract before timing anything: the adaptive
//!   policy's simulated execution time must beat the best static
//!   assignment on this workload.
//!
//! Bench names are stable identifiers: the checked-in `BENCH_*.json`
//! baselines and the CI regression check key on them.

use crate::harness::{bench_fn, BenchBudget, BenchReport};
use crate::{bench_trace, representative_hierarchy};
use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::{Campaign, CampaignSpec};
use samr_geom::sfc::SfcCurve;
use samr_geom::sfc::{self, scalar};
use samr_geom::{Axis, Rect2};
use samr_grid::{cluster_flags, cluster_flags_with, ClusterOptions, ClusterScratch, FlagField};
use samr_partition::{DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner};

/// 2-D SFC working set: a 256×256 tile, 64 Ki keys per iteration.
const SIDE_2D: u64 = 256;
const KEYS_2D: f64 = (SIDE_2D * SIDE_2D) as f64;
/// 3-D SFC working set: a 32×32×32 tile, 32 Ki keys per iteration.
const SIDE_3D: u64 = 32;
const KEYS_3D: f64 = (SIDE_3D * SIDE_3D * SIDE_3D) as f64;

/// The wavefront-like flag ring on a 256² grid — the real workload shape
/// of the grid generator.
fn ring_flags() -> FlagField<2> {
    FlagField::from_fn(Rect2::from_extents(256, 256), |p| {
        let dx = p.x as f64 - 127.5;
        let dy = p.y as f64 - 127.5;
        let r = (dx * dx + dy * dy).sqrt();
        (80.0..=92.0).contains(&r)
    })
}

/// Scattered noise flags: the clusterer's worst case (deep recursion).
fn scattered_flags() -> FlagField<2> {
    FlagField::from_fn(Rect2::from_extents(256, 256), |p| {
        (p.x * 7 + p.y * 13) % 29 == 0
    })
}

/// The `kernels` suite.
pub fn kernels_report(budget: BenchBudget) -> BenchReport {
    use std::hint::black_box;
    let mut rep = BenchReport::new("kernels", budget);
    let keys2 = Some((KEYS_2D, "keys/s"));
    let keys3 = Some((KEYS_3D, "keys/s"));

    // SFC inputs live in memory and pass through `black_box` at every
    // call, so neither path can be const-folded against the loop bounds
    // or hoisted out of the timed loop. The `_scalar` twins run the
    // exact pre-PR pattern — one inlined scalar-reference call per
    // element of the same slice — so one run measures the optimized
    // batch kernels against the pre-PR path on the machine it ran on.
    let coords2: Vec<[u64; 2]> = (0..SIDE_2D)
        .flat_map(|y| (0..SIDE_2D).map(move |x| [x, y]))
        .collect();
    let coords3: Vec<[u64; 3]> = (0..SIDE_3D)
        .flat_map(|z| (0..SIDE_3D).flat_map(move |y| (0..SIDE_3D).map(move |x| [x, y, z])))
        .collect();
    // Morton keys of a row-major tile are a permutation of 0..n — a
    // full-coverage, data-dependent decode input.
    let mut keys2d = Vec::new();
    sfc::morton_keys(&coords2, &mut keys2d);
    let mut keys3d = Vec::new();
    sfc::morton_keys_3d(&coords3, &mut keys3d);

    let mut out_keys: Vec<u64> = Vec::new();
    let mut out2: Vec<[u64; 2]> = Vec::new();
    let mut out3: Vec<[u64; 3]> = Vec::new();

    rep.benches
        .push(bench_fn("morton2_encode_64k", budget, keys2, || {
            sfc::morton_keys(black_box(&coords2), &mut out_keys);
            out_keys.last().copied()
        }));
    rep.benches
        .push(bench_fn("morton2_encode_64k_scalar", budget, keys2, || {
            let mut acc = 0u64;
            for c in black_box(&coords2[..]) {
                acc = acc.wrapping_add(scalar::morton_key(c[0], c[1]));
            }
            acc
        }));
    rep.benches
        .push(bench_fn("morton2_decode_64k", budget, keys2, || {
            sfc::morton_decodes(black_box(&keys2d), &mut out2);
            out2.last().copied()
        }));
    rep.benches
        .push(bench_fn("morton2_decode_64k_scalar", budget, keys2, || {
            let mut acc = 0u64;
            for &d in black_box(&keys2d[..]) {
                let (x, y) = scalar::morton_decode(d);
                acc = acc.wrapping_add(x ^ y);
            }
            acc
        }));
    rep.benches
        .push(bench_fn("hilbert2_encode_64k", budget, keys2, || {
            let mut acc = 0u64;
            for c in black_box(&coords2[..]) {
                acc = acc.wrapping_add(sfc::hilbert_key(8, c[0], c[1]));
            }
            acc
        }));
    rep.benches.push(bench_fn(
        "hilbert2_encode_64k_scalar",
        budget,
        keys2,
        || {
            let mut acc = 0u64;
            for c in black_box(&coords2[..]) {
                acc = acc.wrapping_add(scalar::hilbert_key(8, c[0], c[1]));
            }
            acc
        },
    ));
    rep.benches
        .push(bench_fn("hilbert2_decode_64k", budget, keys2, || {
            let mut acc = 0u64;
            for &d in black_box(&keys2d[..]) {
                let (x, y) = sfc::hilbert_decode(8, d);
                acc = acc.wrapping_add(x ^ y);
            }
            acc
        }));
    rep.benches.push(bench_fn(
        "hilbert2_decode_64k_scalar",
        budget,
        keys2,
        || {
            let mut acc = 0u64;
            for &d in black_box(&keys2d[..]) {
                let (x, y) = scalar::hilbert_decode(8, d);
                acc = acc.wrapping_add(x ^ y);
            }
            acc
        },
    ));
    rep.benches
        .push(bench_fn("morton3_encode_32k", budget, keys3, || {
            sfc::morton_keys_3d(black_box(&coords3), &mut out_keys);
            out_keys.last().copied()
        }));
    rep.benches
        .push(bench_fn("morton3_encode_32k_scalar", budget, keys3, || {
            let mut acc = 0u64;
            for c in black_box(&coords3[..]) {
                acc = acc.wrapping_add(scalar::morton_key_3d(c[0], c[1], c[2]));
            }
            acc
        }));
    rep.benches
        .push(bench_fn("morton3_decode_32k", budget, keys3, || {
            sfc::morton_decodes_3d(black_box(&keys3d), &mut out3);
            out3.last().copied()
        }));
    rep.benches
        .push(bench_fn("morton3_decode_32k_scalar", budget, keys3, || {
            let mut acc = 0u64;
            for &d in black_box(&keys3d[..]) {
                let (x, y, z) = scalar::morton_decode_3d(d);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            acc
        }));
    rep.benches
        .push(bench_fn("hilbert3_encode_32k", budget, keys3, || {
            sfc::sfc_keys_nd::<3>(SfcCurve::Hilbert, 5, black_box(&coords3), &mut out_keys);
            out_keys.last().copied()
        }));
    rep.benches.push(bench_fn(
        "hilbert3_encode_32k_scalar",
        budget,
        keys3,
        || {
            let mut acc = 0u64;
            for c in black_box(&coords3[..]) {
                acc = acc.wrapping_add(scalar::hilbert_key_3d(5, c[0], c[1], c[2]));
            }
            acc
        },
    ));
    rep.benches
        .push(bench_fn("hilbert3_decode_32k", budget, keys3, || {
            let mut acc = 0u64;
            for &d in black_box(&keys3d[..]) {
                let (x, y, z) = sfc::hilbert_decode_3d(5, d);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            acc
        }));
    rep.benches.push(bench_fn(
        "hilbert3_decode_32k_scalar",
        budget,
        keys3,
        || {
            let mut acc = 0u64;
            for &d in black_box(&keys3d[..]) {
                let (x, y, z) = scalar::hilbert_decode_3d(5, d);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            acc
        },
    ));

    // Berger–Rigoutsos clustering, fresh-allocation and scratch-reuse.
    let ring = ring_flags();
    let scattered = scattered_flags();
    let opts = ClusterOptions::paper_defaults();
    rep.benches
        .push(bench_fn("cluster_ring_256", budget, None, || {
            cluster_flags(&ring, &opts).len()
        }));
    let mut scratch = ClusterScratch::default();
    rep.benches
        .push(bench_fn("cluster_ring_256_scratch", budget, None, || {
            cluster_flags_with(&ring, &opts, &mut scratch).len()
        }));
    rep.benches
        .push(bench_fn("cluster_scattered_256", budget, None, || {
            cluster_flags(&scattered, &opts).len()
        }));

    // Flag-field scans over the ring (the grid generator's hot queries).
    let cells = Some((KEYS_2D, "cells/s"));
    let dom = ring.domain();
    rep.benches
        .push(bench_fn("signature_x_256", budget, cells, || {
            ring.signature(Axis::X, &dom).len()
        }));
    rep.benches
        .push(bench_fn("signature_y_256", budget, cells, || {
            ring.signature(Axis::Y, &dom).len()
        }));
    rep.benches
        .push(bench_fn("count_in_256", budget, cells, || {
            ring.count_in(&dom)
        }));
    rep.benches
        .push(bench_fn("bounding_box_256", budget, cells, || {
            ring.bounding_box()
        }));
    rep
}

/// The `partition` suite: every family on the hardest snapshot of two
/// representative applications at 16 processors.
pub fn partition_report(budget: BenchBudget) -> BenchReport {
    let mut rep = BenchReport::new("partition", budget);
    const NPROCS: usize = 16;
    for kind in [AppKind::Sc2d, AppKind::Rm2d] {
        let h = representative_hierarchy(kind);
        let cells = Some((h.total_points() as f64, "points/s"));
        let families: [(&str, Box<dyn Partitioner<2> + Sync>); 3] = [
            ("domain_sfc", Box::new(DomainSfcPartitioner::default())),
            ("patch", Box::new(PatchPartitioner::default())),
            ("hybrid", Box::new(HybridPartitioner::default())),
        ];
        for (name, p) in families {
            rep.benches.push(bench_fn(
                &format!("{}_{}_p{}", name, kind.name().to_ascii_lowercase(), NPROCS),
                budget,
                cells,
                || p.partition(&h, NPROCS).levels.len(),
            ));
        }
    }
    rep
}

/// The `sim` suite: the per-step metric accounting the simulator pays on
/// every snapshot, indexed production path vs the retained all-pairs
/// `_naive` oracles, on patch-partitioned representative snapshots (the
/// fragment-heavy worst case), plus the allocation-free partition path.
pub fn sim_report(budget: BenchBudget) -> BenchReport {
    use samr_partition::PartitionScratch;
    use samr_sim::comm::{
        comm_accounting, naive_involved_comm_points, naive_per_proc_comm, naive_total_comm,
    };
    use samr_sim::migration::{
        migration_accounting, naive_migration_cells, naive_per_proc_migration,
    };
    use samr_sim::MetricScratch;
    use std::hint::black_box;

    let mut rep = BenchReport::new("sim", budget);
    const NPROCS: usize = 16;
    const GHOST: i64 = 1;
    let p = PatchPartitioner::default();

    // Communication accounting per snapshot: the indexed one-pass walk
    // vs the three all-pairs walks the pre-PR step metrics performed.
    for kind in [AppKind::Sc2d, AppKind::Rm2d] {
        let h = representative_hierarchy(kind);
        let part = p.partition(&h, NPROCS);
        let points = Some((h.total_points() as f64, "points/s"));
        let kname = kind.name().to_ascii_lowercase();
        let mut scratch = MetricScratch::default();
        rep.benches
            .push(bench_fn(&format!("comm_{kname}"), budget, points, || {
                let acc = comm_accounting(black_box(&h), black_box(&part), GHOST, &mut scratch);
                acc.transfer_volume() + acc.involved_points()
            }));
        rep.benches.push(bench_fn(
            &format!("comm_{kname}_naive"),
            budget,
            points,
            || {
                naive_total_comm(black_box(&h), black_box(&part), GHOST)
                    + naive_involved_comm_points(black_box(&h), black_box(&part), GHOST)
                    + naive_per_proc_comm(black_box(&h), black_box(&part), GHOST)
                        .iter()
                        .sum::<u64>()
            },
        ));
    }

    // Migration accounting between adjacent snapshots around the hardest
    // rm2d instance (a regrid-heavy application).
    let trace = bench_trace(AppKind::Rm2d);
    let hardest = trace
        .snapshots
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| {
            s.hierarchy
                .levels
                .iter()
                .map(|l| l.patch_count())
                .sum::<usize>()
        })
        .expect("non-empty trace")
        .0;
    let (pi, ci) = if hardest == 0 {
        (0, (trace.snapshots.len() - 1).min(1))
    } else {
        (hardest - 1, hardest)
    };
    let prev_h = &trace.snapshots[pi].hierarchy;
    let cur_h = &trace.snapshots[ci].hierarchy;
    let prev_part = p.partition(prev_h, NPROCS);
    let cur_part = p.partition(cur_h, NPROCS);
    let points = Some((cur_h.total_points() as f64, "points/s"));
    let mut mscratch = MetricScratch::default();
    rep.benches
        .push(bench_fn("migration_rm2d", budget, points, || {
            migration_accounting(
                black_box(prev_h),
                black_box(&prev_part),
                black_box(cur_h),
                black_box(&cur_part),
                NPROCS,
                &mut mscratch,
            )
        }));
    rep.benches
        .push(bench_fn("migration_rm2d_naive", budget, points, || {
            naive_migration_cells(
                black_box(prev_h),
                black_box(&prev_part),
                black_box(cur_h),
                black_box(&cur_part),
            ) + naive_per_proc_migration(
                black_box(prev_h),
                black_box(&prev_part),
                black_box(cur_h),
                black_box(&cur_part),
                NPROCS,
            )
            .iter()
            .sum::<u64>()
        }));

    // The scratch-reusing partition path vs the fresh-allocation one
    // (identical output, PartitionScratch reuse contract).
    let h_rm = representative_hierarchy(AppKind::Rm2d);
    let points = Some((h_rm.total_points() as f64, "points/s"));
    let hybrid = HybridPartitioner::default();
    let mut pscratch = PartitionScratch::default();
    rep.benches
        .push(bench_fn("partition_scratch_rm2d", budget, points, || {
            hybrid
                .partition_with(black_box(&h_rm), NPROCS, &mut pscratch)
                .fragment_count()
        }));
    rep.benches.push(bench_fn(
        "partition_scratch_rm2d_naive",
        budget,
        points,
        || hybrid.partition(black_box(&h_rm), NPROCS).fragment_count(),
    ));
    rep
}

/// The `regrid` suite: the trace-generation hot path that PR-level work
/// vectorized — flag marking, clustering, batch SFC keys — each against
/// the pattern it replaced, plus one end-to-end smoke trace so the
/// composite pipeline is tracked as a single number.
pub fn regrid_report(budget: BenchBudget) -> BenchReport {
    use samr_apps::generate_trace;
    use samr_geom::sfc::BatchIsa;
    use std::hint::black_box;

    let mut rep = BenchReport::new("regrid", budget);

    // End-to-end trace generation at the smoke configuration: indicator
    // evaluation, row-major flag marking, buffering, clustering and
    // nesting for every regrid of a 10-step run.
    let smoke_cfg = TraceGenConfig::smoke();
    rep.benches
        .push(bench_fn("tracegen_smoke_tp2d", budget, None, || {
            generate_trace(AppKind::Tp2d, black_box(&smoke_cfg))
                .snapshots
                .len()
        }));

    // Flag marking over a 256² domain with the tracegen indicator shape
    // (unit-coordinate ring). The optimized path is the row-major
    // `mark_rows` single pass; the `_naive` twin is the historical
    // per-cell `set` loop — identical indicator work, so the pair
    // isolates the marking mechanics.
    let dom = Rect2::from_extents(SIDE_2D as i64, SIDE_2D as i64);
    let extent = dom.extent();
    let indicator = |u: [f64; 2]| {
        let dx = u[0] - 0.5;
        let dy = u[1] - 0.5;
        1.0 - ((dx * dx + dy * dy).sqrt() - 0.33).abs()
    };
    let thr = 0.98;
    let cells = Some((KEYS_2D, "cells/s"));
    rep.benches
        .push(bench_fn("flag_mark_ring_256", budget, cells, || {
            let mut flags = FlagField::new(dom);
            flags.mark_rows(&dom, |row, run| {
                let mut u = [0.0f64; 2];
                u[1] = (row.y as f64 + 0.5) / extent.y as f64;
                for (k, cell) in run.iter_mut().enumerate() {
                    u[0] = ((row.x + k as i64) as f64 + 0.5) / extent.x as f64;
                    if indicator(u) > thr {
                        *cell = true;
                    }
                }
            });
            flags.count()
        }));
    rep.benches
        .push(bench_fn("flag_mark_ring_256_naive", budget, cells, || {
            let mut flags = FlagField::new(dom);
            for p in dom.iter_cells() {
                let u = [
                    (p.x as f64 + 0.5) / extent.x as f64,
                    (p.y as f64 + 0.5) / extent.y as f64,
                ];
                if indicator(u) > thr {
                    flags.set(p);
                }
            }
            flags.count()
        }));

    // Berger–Rigoutsos through the scratch arena vs fresh allocation —
    // the regrid loop threads one `ClusterScratch` through every level
    // of every regrid, so the arena delta is paid (or saved) per level.
    let ring = ring_flags();
    let scattered = scattered_flags();
    let opts = ClusterOptions::paper_defaults();
    let mut scratch = ClusterScratch::default();
    rep.benches
        .push(bench_fn("cluster_ring_arena", budget, None, || {
            cluster_flags_with(black_box(&ring), &opts, &mut scratch).len()
        }));
    rep.benches
        .push(bench_fn("cluster_ring_arena_naive", budget, None, || {
            cluster_flags(black_box(&ring), &opts).len()
        }));
    rep.benches
        .push(bench_fn("cluster_scattered_arena", budget, None, || {
            cluster_flags_with(black_box(&scattered), &opts, &mut scratch).len()
        }));
    rep.benches.push(bench_fn(
        "cluster_scattered_arena_naive",
        budget,
        None,
        || cluster_flags(black_box(&scattered), &opts).len(),
    ));

    // Batch SFC encode — the partitioner's unit-ordering pass — through
    // the best detected tier and, where the CPU has it, the forced AVX2
    // tier, each against the per-key scalar-reference loop it replaced.
    let keys2 = Some((KEYS_2D, "keys/s"));
    let keys3 = Some((KEYS_3D, "keys/s"));
    let coords2: Vec<[u64; 2]> = (0..SIDE_2D)
        .flat_map(|y| (0..SIDE_2D).map(move |x| [x, y]))
        .collect();
    let coords3: Vec<[u64; 3]> = (0..SIDE_3D)
        .flat_map(|z| (0..SIDE_3D).flat_map(move |y| (0..SIDE_3D).map(move |x| [x, y, z])))
        .collect();
    let mut out_keys: Vec<u64> = Vec::new();
    rep.benches
        .push(bench_fn("sfc_batch_morton2_64k", budget, keys2, || {
            sfc::morton_keys(black_box(&coords2), &mut out_keys);
            out_keys.last().copied()
        }));
    rep.benches.push(bench_fn(
        "sfc_batch_morton2_64k_scalar",
        budget,
        keys2,
        || {
            let mut acc = 0u64;
            for c in black_box(&coords2[..]) {
                acc = acc.wrapping_add(scalar::morton_key(c[0], c[1]));
            }
            acc
        },
    ));
    rep.benches
        .push(bench_fn("sfc_batch_morton3_32k", budget, keys3, || {
            sfc::morton_keys_3d(black_box(&coords3), &mut out_keys);
            out_keys.last().copied()
        }));
    rep.benches.push(bench_fn(
        "sfc_batch_morton3_32k_scalar",
        budget,
        keys3,
        || {
            let mut acc = 0u64;
            for c in black_box(&coords3[..]) {
                acc = acc.wrapping_add(scalar::morton_key_3d(c[0], c[1], c[2]));
            }
            acc
        },
    ));
    if BatchIsa::Avx2.is_available() {
        rep.benches
            .push(bench_fn("sfc_avx2_morton2_64k", budget, keys2, || {
                sfc::morton_keys_with(BatchIsa::Avx2, black_box(&coords2), &mut out_keys);
                out_keys.last().copied()
            }));
        rep.benches.push(bench_fn(
            "sfc_avx2_morton2_64k_scalar",
            budget,
            keys2,
            || {
                let mut acc = 0u64;
                for c in black_box(&coords2[..]) {
                    acc = acc.wrapping_add(scalar::morton_key(c[0], c[1]));
                }
                acc
            },
        ));
        rep.benches
            .push(bench_fn("sfc_avx2_morton3_32k", budget, keys3, || {
                sfc::morton_keys_3d_with(BatchIsa::Avx2, black_box(&coords3), &mut out_keys);
                out_keys.last().copied()
            }));
        rep.benches.push(bench_fn(
            "sfc_avx2_morton3_32k_scalar",
            budget,
            keys3,
            || {
                let mut acc = 0u64;
                for c in black_box(&coords3[..]) {
                    acc = acc.wrapping_add(scalar::morton_key_3d(c[0], c[1], c[2]));
                }
                acc
            },
        ));
    }
    rep
}

/// The `campaign` suite: one reduced end-to-end campaign (trace
/// generation from the engine cache, windowed simulation, metric fold)
/// — the path `samr campaign` users actually pay for.
pub fn campaign_report(budget: BenchBudget) -> BenchReport {
    let mut rep = BenchReport::new("campaign", budget);
    let spec = CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Bl2d])
        .nprocs([16]);
    // Prime the engine trace cache so the bench times the campaign
    // machinery, not first-touch trace generation.
    let outcomes = Campaign::run(&spec);
    assert_eq!(outcomes.len(), spec.len());
    rep.benches
        .push(bench_fn("campaign_smoke_2apps", budget, None, || {
            Campaign::run(&spec).len()
        }));
    rep.benches.push(bench_fn(
        "bench_trace_partition_sweep",
        budget,
        None,
        || {
            let trace = bench_trace(AppKind::Bl2d);
            let p = HybridPartitioner::default();
            let mut acc = 0usize;
            for s in trace.snapshots.iter().step_by(8) {
                acc += p.partition(&s.hierarchy, 16).levels.len();
            }
            acc
        },
    ));
    rep
}

/// The PC2D phase-change configuration the `adaptive` suite runs on: a
/// 32² base with four levels regridding every step, so the mid-run flip
/// from spread refinement to a corner point singularity lands in the
/// trace immediately. Small enough to simulate in milliseconds, deep
/// enough that a domain cut cannot balance the singular regime.
pub fn phase_change_config() -> TraceGenConfig {
    TraceGenConfig {
        steps: 24,
        base_cells: 32,
        max_levels: 4,
        ratio: 2,
        regrid_interval: 1,
        min_block: 2,
        flag_buffer: 1,
        nesting_buffer: 1,
        cluster: ClusterOptions::paper_defaults(),
        ref_resolution: 64,
        seed: 2004,
    }
}

/// The machine the `adaptive` suite simulates: computation-dominated
/// (`slow-cpu`), where load imbalance — not communication — decides the
/// execution time, so the singular regime punishes domain cuts.
fn phase_change_sim() -> samr_sim::SimConfig {
    samr_sim::SimConfig {
        nprocs: 16,
        machine: samr_sim::MachineModel::slow_cpu(),
        ..samr_sim::SimConfig::default()
    }
}

/// The `adaptive` suite.
pub fn adaptive_report(budget: BenchBudget) -> BenchReport {
    use samr_engine::{PartitionerSpec, PolicySpec};
    use samr_trace::MemorySource;

    let mut rep = BenchReport::new("adaptive", budget);
    let cfg = phase_change_config();
    let sim = phase_change_sim();
    // One generation up front: every measured pass replays the in-memory
    // trace, so the benches time the policy driver, not trace generation.
    let trace = samr_apps::generate_trace(AppKind::Pc2d, &cfg);

    let part = |name: &str| PartitionerSpec::parse(name).expect("registry name");
    let policy = |name: &str| PolicySpec::parse(name).expect("policy name");
    let run = |partitioner: &PartitionerSpec, pol: &PolicySpec| {
        let mut source = MemorySource::new(&trace);
        let (res, stats) = pol
            .simulate_source::<2>(partitioner, &mut source, &sim)
            .expect("in-memory sources never fail");
        (res.total_time, stats.switches())
    };

    // Quality gate (the reason this suite exists): on the phase-change
    // workload the adaptive policy must beat the *best* static
    // assignment. A regression here means the policy layer stopped
    // switching, or stopped paying off.
    let statics = ["domain-sfc", "patch", "hybrid"];
    let best_static = statics
        .iter()
        .map(|n| run(&part(n), &PolicySpec::Static).0)
        .fold(f64::INFINITY, f64::min);
    let (adaptive_time, switches) = run(&part("domain-sfc"), &policy("adaptive:balance"));
    assert!(switches >= 1, "adaptive policy never switched on PC2D");
    assert!(
        adaptive_time < best_static,
        "adaptive ({adaptive_time:.0}) no longer beats the best static ({best_static:.0})"
    );

    let steps = trace.len() as f64;
    for name in statics {
        let p = part(name);
        rep.benches.push(bench_fn(
            &format!("adaptive_static_{}", name.replace('-', "_")),
            budget,
            Some((steps, "steps/s")),
            || run(&p, &PolicySpec::Static),
        ));
    }
    for preset in ["balance", "eager", "patient"] {
        let p = part("domain-sfc");
        let pol = policy(&format!("adaptive:{preset}"));
        rep.benches.push(bench_fn(
            &format!("adaptive_policy_{preset}"),
            budget,
            Some((steps, "steps/s")),
            || run(&p, &pol),
        ));
    }
    // The switching-cost twin: a never-switching adaptive policy runs
    // the exact same sequential window-1 policy driver as the presets
    // (the static benches above use the windowed batch driver, so they
    // are not directly comparable), so its gap to
    // `adaptive_policy_balance` isolates what the mid-run switch and the
    // repartitioned regime actually cost.
    {
        let p = part("domain-sfc");
        let pol = PolicySpec::Adaptive(samr_meta::AdaptiveConfig::never());
        rep.benches.push(bench_fn(
            "adaptive_policy_never",
            budget,
            Some((steps, "steps/s")),
            || run(&p, &pol),
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::validate;

    #[test]
    fn kernels_suite_is_valid_and_has_scalar_references() {
        let rep = kernels_report(BenchBudget {
            target_ns: 1_000_000,
            max_iters: 4,
        });
        validate(&rep).expect("valid kernels report");
        // Every optimized SFC bench has its scalar twin for the
        // speedup comparison.
        for name in [
            "morton2_encode_64k",
            "morton2_decode_64k",
            "hilbert2_encode_64k",
            "hilbert2_decode_64k",
            "morton3_encode_32k",
            "morton3_decode_32k",
            "hilbert3_encode_32k",
            "hilbert3_decode_32k",
        ] {
            assert!(rep.get(name).is_some(), "missing {name}");
            assert!(
                rep.get(&format!("{name}_scalar")).is_some(),
                "missing scalar twin of {name}"
            );
        }
    }

    #[test]
    fn sim_suite_pairs_every_bench_with_its_naive_twin() {
        let rep = sim_report(BenchBudget {
            target_ns: 1_000_000,
            max_iters: 2,
        });
        validate(&rep).expect("valid sim report");
        for name in [
            "comm_sc2d",
            "comm_rm2d",
            "migration_rm2d",
            "partition_scratch_rm2d",
        ] {
            assert!(rep.get(name).is_some(), "missing {name}");
            assert!(
                rep.get(&format!("{name}_naive")).is_some(),
                "missing naive twin of {name}"
            );
        }
    }

    #[test]
    fn regrid_suite_pairs_every_optimized_bench_with_a_twin() {
        let rep = regrid_report(BenchBudget {
            target_ns: 1_000_000,
            max_iters: 2,
        });
        validate(&rep).expect("valid regrid report");
        assert!(rep.get("tracegen_smoke_tp2d").is_some());
        for (name, suffix) in [
            ("flag_mark_ring_256", "_naive"),
            ("cluster_ring_arena", "_naive"),
            ("cluster_scattered_arena", "_naive"),
            ("sfc_batch_morton2_64k", "_scalar"),
            ("sfc_batch_morton3_32k", "_scalar"),
        ] {
            assert!(rep.get(name).is_some(), "missing {name}");
            assert!(
                rep.get(&format!("{name}{suffix}")).is_some(),
                "missing twin of {name}"
            );
        }
        // The forced-AVX2 tier benches travel in pairs too (present only
        // where the CPU executes the tier).
        assert_eq!(
            rep.get("sfc_avx2_morton2_64k").is_some(),
            rep.get("sfc_avx2_morton2_64k_scalar").is_some()
        );
    }

    #[test]
    fn adaptive_suite_is_valid_and_pairs_policies_with_statics() {
        let rep = adaptive_report(BenchBudget {
            target_ns: 1_000_000,
            max_iters: 2,
        });
        validate(&rep).expect("valid adaptive report");
        for name in [
            "adaptive_static_domain_sfc",
            "adaptive_static_patch",
            "adaptive_static_hybrid",
            "adaptive_policy_balance",
            "adaptive_policy_eager",
            "adaptive_policy_patient",
            "adaptive_policy_never",
        ] {
            assert!(rep.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn partition_suite_covers_all_families() {
        let rep = partition_report(BenchBudget {
            target_ns: 1_000_000,
            max_iters: 2,
        });
        validate(&rep).expect("valid partition report");
        for fam in ["domain_sfc", "patch", "hybrid"] {
            assert!(
                rep.benches.iter().any(|b| b.name.starts_with(fam)),
                "no {fam} bench"
            );
        }
    }
}
