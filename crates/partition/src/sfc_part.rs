//! Domain-based SFC partitioner (Parashar–Browne composite style),
//! generic over the dimension.

use crate::types::{Fragment, Partition, PartitionScratch, Partitioner, ProcId};
use crate::weights::{composite_unit_weights_in, sfc_order_with, split_contiguous_into};
use rayon::prelude::*;
use samr_geom::sfc::SfcCurve;
use samr_geom::{boxops, AABox};
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize};

/// Configuration of the domain-based SFC partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainSfcParams {
    /// Atomic-unit side length in base cells.
    pub atomic_unit: i64,
    /// Which space-filling curve linearizes the domain.
    pub curve: SfcCurve,
    /// `true` for the fully ordered curve, `false` for the cheaper
    /// partially ordered variant (the Nature+Fable default the paper
    /// suspects of inflating migration, §5.2).
    pub full_order: bool,
}

impl Default for DomainSfcParams {
    fn default() -> Self {
        Self {
            atomic_unit: 2,
            curve: SfcCurve::Hilbert,
            full_order: true,
        }
    }
}

/// Strictly domain-based partitioner: the base domain is diced into atomic
/// units, weighted by the composite workload, linearized along an SFC and
/// cut into contiguous chunks; every level is cut by the same processor
/// regions, so parent and child cells are always co-located (no
/// inter-level communication) at the price of tractable-only load balance.
#[derive(Clone, Copy, Debug, Default)]
pub struct DomainSfcPartitioner {
    /// Tuning parameters.
    pub params: DomainSfcParams,
}

impl DomainSfcPartitioner {
    /// Create with explicit parameters.
    pub fn new(params: DomainSfcParams) -> Self {
        Self { params }
    }

    /// The processor-region decomposition of the base domain (owner-tagged
    /// base-space boxes, coalesced per processor).
    pub fn proc_regions<const D: usize>(
        &self,
        h: &GridHierarchy<D>,
        nprocs: usize,
    ) -> Vec<Vec<AABox<D>>> {
        let mut scratch = PartitionScratch::default();
        self.proc_regions_with(h, nprocs, &mut scratch);
        std::mem::take(&mut scratch.regions)
    }

    /// [`Self::proc_regions`] into `scratch.regions`, reusing the
    /// scratch's weight, key and order buffers across snapshots.
    pub(crate) fn proc_regions_with<const D: usize>(
        &self,
        h: &GridHierarchy<D>,
        nprocs: usize,
        scratch: &mut PartitionScratch<D>,
    ) {
        let buf = std::mem::take(&mut scratch.weights);
        let grid = composite_unit_weights_in(h, self.params.atomic_unit, buf);
        sfc_order_with(&grid, self.params.curve, self.params.full_order, scratch);
        split_contiguous_into(&grid, &scratch.order, nprocs, &mut scratch.owners);
        PartitionScratch::reset_buckets(&mut scratch.regions, nprocs);
        for (i, &u) in scratch.order.iter().enumerate() {
            scratch.regions[scratch.owners[i] as usize].push(grid.unit_rect(&h.base_domain, u));
        }
        for r in &mut scratch.regions {
            boxops::coalesce_in_place(r);
        }
        // Hand the weight buffer back for the next snapshot.
        scratch.weights = grid.weights;
    }
}

/// Build one level's fragment list from the processor regions, bucketing
/// pieces by owner in a single pass (`buckets` is the reusable
/// per-processor arena) and coalescing each bucket — the same output, in
/// the same order, as the historical push-all-then-filter-per-proc loop.
fn build_level<const D: usize>(
    h: &GridHierarchy<D>,
    l: usize,
    regions: &[Vec<AABox<D>>],
    buckets: &mut Vec<Vec<AABox<D>>>,
) -> Vec<Fragment<D>> {
    let nprocs = regions.len();
    PartitionScratch::reset_buckets(buckets, nprocs);
    let level = &h.levels[l];
    let scale = h.ratio.pow(l as u32);
    for (proc, region) in regions.iter().enumerate() {
        for unit_box in region {
            let fine = unit_box.refine(scale);
            for patch in &level.patches {
                if let Some(piece) = patch.rect.intersect(&fine) {
                    buckets[proc].push(piece);
                }
            }
        }
    }
    let mut frags = Vec::new();
    for (proc, bucket) in buckets.iter_mut().enumerate() {
        boxops::coalesce_in_place(bucket);
        for &rect in bucket.iter() {
            frags.push(Fragment {
                rect,
                owner: proc as ProcId,
            });
        }
    }
    frags
}

impl<const D: usize> Partitioner<D> for DomainSfcPartitioner {
    fn name(&self) -> String {
        format!(
            "domain-sfc({:?},{},u{})",
            self.params.curve,
            if self.params.full_order {
                "full"
            } else {
                "partial"
            },
            self.params.atomic_unit
        )
    }

    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        self.partition_with(h, nprocs, &mut PartitionScratch::default())
    }

    fn partition_with(
        &self,
        h: &GridHierarchy<D>,
        nprocs: usize,
        scratch: &mut PartitionScratch<D>,
    ) -> Partition<D> {
        assert!(nprocs >= 1);
        self.proc_regions_with(h, nprocs, scratch);
        let mut part = Partition::new(nprocs, h.levels.len());
        // Levels are independent given the processor regions. On the
        // outer thread pool, build them rayon-parallel; inside a worker
        // (e.g. under the streaming window's snapshot parallelism)
        // `current_num_threads()` reports 1 and the sequential
        // scratch-arena path runs instead — no oversubscription, and
        // byte-identical output either way.
        if rayon::current_num_threads() > 1 && h.levels.len() > 1 {
            let regions = &scratch.regions;
            let built: Vec<Vec<Fragment<D>>> = (0..h.levels.len())
                .into_par_iter()
                .map(|l| build_level(h, l, regions, &mut Vec::new()))
                .collect();
            for (lp, frags) in part.levels.iter_mut().zip(built) {
                lp.fragments = frags;
            }
        } else {
            for l in 0..h.levels.len() {
                part.levels[l].fragments =
                    build_level(h, l, &scratch.regions, &mut scratch.owner_rects);
            }
        }
        part
    }

    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        // Unit weighting + sort: cheap, linear-ish in units and patches.
        let units = (h.base_domain.cells() / (self.params.atomic_unit as u64).pow(D as u32)) as f64;
        let patches: usize = h.levels.iter().map(|l| l.patch_count()).sum();
        0.5 * units.max(1.0).log2() * units / 1000.0
            + patches as f64 / 10.0
            + if self.params.full_order {
                0.0
            } else {
                -0.2 * units / 1000.0
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::validate_partition;
    use samr_geom::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn hierarchy() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[
                vec![],
                vec![r(16, 16, 31, 31), r(40, 8, 47, 15)],
                vec![r(40, 40, 55, 55)],
            ],
        )
    }

    fn hierarchy_3d() -> GridHierarchy<3> {
        GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[
                vec![],
                vec![Box3::from_coords(8, 8, 8, 15, 15, 15)],
                vec![Box3::from_coords(20, 20, 20, 27, 27, 27)],
            ],
        )
    }

    #[test]
    fn produces_valid_partitions() {
        let h = hierarchy();
        for nprocs in [1, 2, 4, 7, 16] {
            for full in [true, false] {
                for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
                    let p = DomainSfcPartitioner::new(DomainSfcParams {
                        atomic_unit: 2,
                        curve,
                        full_order: full,
                    });
                    let part = p.partition(&h, nprocs);
                    assert_eq!(
                        validate_partition(&h, &part),
                        Ok(()),
                        "nprocs={nprocs} full={full} curve={curve:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn produces_valid_partitions_3d() {
        let h = hierarchy_3d();
        for nprocs in [1, 3, 8] {
            for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
                let p = DomainSfcPartitioner::new(DomainSfcParams {
                    atomic_unit: 2,
                    curve,
                    full_order: true,
                });
                let part = p.partition(&h, nprocs);
                assert_eq!(
                    validate_partition(&h, &part),
                    Ok(()),
                    "nprocs={nprocs} curve={curve:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh() {
        // The PartitionScratch contract: partition_with through one
        // reused scratch returns exactly what partition returns, for
        // every snapshot in a sequence and across dirty scratch state.
        let p = DomainSfcPartitioner::default();
        let mut scratch = PartitionScratch::default();
        let hierarchies = [
            hierarchy(),
            GridHierarchy::base_only(Rect2::from_extents(64, 64), 2),
            hierarchy(),
        ];
        for h in &hierarchies {
            for nprocs in [1, 3, 16, 5] {
                let fresh = p.partition(h, nprocs);
                let reused = p.partition_with(h, nprocs, &mut scratch);
                assert_eq!(fresh, reused, "nprocs={nprocs}");
            }
        }
        // 3-D too.
        let h3 = hierarchy_3d();
        let mut s3 = PartitionScratch::<3>::default();
        for nprocs in [2, 8, 3] {
            assert_eq!(
                p.partition(&h3, nprocs),
                p.partition_with(&h3, nprocs, &mut s3)
            );
        }
    }

    #[test]
    fn single_proc_gets_everything() {
        let h = hierarchy();
        let part = DomainSfcPartitioner::default().partition(&h, 1);
        assert!((part.load_imbalance(2) - 1.0).abs() < 1e-12);
        assert!(part
            .levels
            .iter()
            .all(|l| l.fragments.iter().all(|f| f.owner == 0)));
    }

    #[test]
    fn balance_is_reasonable_for_uniform_grid() {
        let h = GridHierarchy::base_only(Rect2::from_extents(64, 64), 2);
        let part = DomainSfcPartitioner::default().partition(&h, 8);
        assert!(part.load_imbalance(2) < 1.1, "{}", part.load_imbalance(2));
    }

    #[test]
    fn balance_is_reasonable_for_uniform_grid_3d() {
        let h = GridHierarchy::base_only(Box3::from_extents(16, 16, 16), 2);
        let part = DomainSfcPartitioner::default().partition(&h, 8);
        assert!(part.load_imbalance(2) < 1.1, "{}", part.load_imbalance(2));
    }

    #[test]
    fn domain_based_colocation_no_interlevel_split() {
        // The defining property: a fine cell's owner equals the owner of
        // the base cell underneath it.
        let h = hierarchy();
        let p = DomainSfcPartitioner::default();
        let part = p.partition(&h, 4);
        let regions = p.proc_regions(&h, 4);
        for (l, lp) in part.levels.iter().enumerate() {
            let scale = h.ratio.pow(l as u32);
            for f in &lp.fragments {
                // The fragment's base footprint must lie entirely in its
                // owner's region.
                let fp = f.rect.coarsen(scale);
                assert!(
                    boxops::covers(&fp, &regions[f.owner as usize]),
                    "level {l} fragment {:?} leaks out of proc {} region",
                    f.rect,
                    f.owner
                );
            }
        }
    }

    #[test]
    fn deep_localized_hierarchy_has_intractable_imbalance() {
        // The paper's §3.1 observation: small base grid + many procs +
        // deep localized refinement => domain-based imbalance blows up.
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[
                vec![],
                vec![r(12, 12, 19, 19)],
                vec![r(26, 26, 37, 37)],
                vec![r(56, 56, 71, 71)],
            ],
        );
        let part = DomainSfcPartitioner::default().partition(&h, 16);
        assert!(part.load_imbalance(2) > 1.5, "{}", part.load_imbalance(2));
    }

    #[test]
    fn partial_order_differs_from_full() {
        // Needs more than 2^4 units per side for the partial bucketing to
        // bite: 128x128 base at unit 2 = 64x64 units (order 6).
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(128, 128),
            2,
            &[vec![], vec![r(40, 40, 87, 87)]],
        );
        let full = DomainSfcPartitioner::new(DomainSfcParams {
            full_order: true,
            atomic_unit: 2,
            curve: SfcCurve::Hilbert,
        });
        let partial = DomainSfcPartitioner::new(DomainSfcParams {
            full_order: false,
            atomic_unit: 2,
            curve: SfcCurve::Hilbert,
        });
        // Different orderings generally yield different partitions.
        let a = full.partition(&h, 5);
        let b = partial.partition(&h, 5);
        assert_ne!(a, b);
        assert_eq!(validate_partition(&h, &a), Ok(()));
        assert_eq!(validate_partition(&h, &b), Ok(()));
    }
}
