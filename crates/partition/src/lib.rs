//! # samr-partition — SAMR grid-hierarchy partitioners
//!
//! The paper classifies SAMR partitioners as *patch-based*, *domain-based*
//! or *hybrid* (§2.2) and validates its model against hierarchies
//! partitioned by the hybrid Nature+Fable tool in a static "neutral"
//! configuration (§5.1.2). This crate implements all three families from
//! scratch:
//!
//! - [`DomainSfcPartitioner`]: Parashar–Browne-style composite
//!   partitioning — the base domain is linearized with a space-filling
//!   curve (Morton or Hilbert, fully or *partially* ordered), weighted
//!   with the composite workload of all overlaid levels, and cut into
//!   contiguous processor chunks. All levels are cut identically, which
//!   eliminates inter-level communication at the cost of load imbalance
//!   for deep hierarchies;
//! - [`PatchPartitioner`]: SAMRAI-style per-level distribution — each
//!   level's patches are bin-packed (LPT) independently, splitting
//!   oversized patches; good load balance, but parent and child cells land
//!   on different processors (inter-level communication);
//! - [`HybridPartitioner`]: the Nature+Fable scheme — homogeneous
//!   unrefined *Hues* are separated from complex refined *Cores* in a
//!   strictly domain-based fashion; Cores are assigned to processor
//!   groups, clustered into *bi-levels*, and each bi-level is partitioned
//!   within its group; Hues are expert-blocked and distributed to top up
//!   processor loads.
//!
//! All partitioners implement the [`Partitioner`] trait and emit a
//! [`Partition`]: per level, a set of disjoint owner-tagged fragments that
//! tile the level's patches exactly (checked by
//! [`validate_partition`]).

#![warn(missing_docs)]

pub mod choice;
pub mod hybrid;
pub mod patch_part;
pub mod sfc_part;
pub mod types;
pub mod weights;

pub use choice::PartitionerChoice;
pub use hybrid::{HybridParams, HybridPartitioner};
pub use patch_part::{PatchAssign, PatchParams, PatchPartitioner};
pub use samr_geom::sfc::SfcCurve;
pub use sfc_part::{DomainSfcParams, DomainSfcPartitioner};
pub use types::{
    validate_partition, Fragment, LevelPartition, Partition, PartitionScratch, Partitioner, ProcId,
};
