//! A fully configured, serializable partitioner choice.
//!
//! Every configured partitioner family in one enum — the single registry
//! the meta-partitioner's selector, the campaign engine, the benches and
//! the CLI all share (previously each kept its own ad-hoc match block).
//! The enum is `serde`-serializable so a choice can ride inside a
//! campaign scenario description and round-trip through JSON artifacts.
//! The parameters are dimension-free; the same choice partitions 2-D and
//! 3-D hierarchies (the generic methods pick the instantiation).

use crate::hybrid::{HybridParams, HybridPartitioner};
use crate::patch_part::{PatchParams, PatchPartitioner};
use crate::sfc_part::{DomainSfcParams, DomainSfcPartitioner};
use crate::types::{Partition, Partitioner};
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize};

/// A fully configured partitioner choice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PartitionerChoice {
    /// Domain-based SFC partitioning with the given parameters.
    DomainSfc(DomainSfcParams),
    /// Patch-based LPT partitioning with the given parameters.
    Patch(PatchParams),
    /// Hybrid Hue/Core bi-level partitioning with the given parameters.
    Hybrid(HybridParams),
}

impl PartitionerChoice {
    /// Default-configured choices of the three families, in the paper's
    /// presentation order.
    pub const FAMILIES: [&'static str; 3] = ["domain-based", "patch-based", "hybrid"];

    /// Short family name.
    pub fn family(&self) -> &'static str {
        match self {
            Self::DomainSfc(_) => "domain-based",
            Self::Patch(_) => "patch-based",
            Self::Hybrid(_) => "hybrid",
        }
    }

    /// Full configured name.
    pub fn name(&self) -> String {
        // The name is dimension-independent; instantiate at 2-D.
        Partitioner::<2>::name(&*self.boxed::<2>())
    }

    /// Partition a hierarchy with this choice.
    pub fn partition<const D: usize>(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        self.boxed::<D>().partition(h, nprocs)
    }

    /// Invocation cost estimate of this choice.
    pub fn cost_estimate<const D: usize>(&self, h: &GridHierarchy<D>) -> f64 {
        self.boxed::<D>().cost_estimate(h)
    }

    /// Materialize the configured partitioner behind a trait object.
    pub fn boxed<const D: usize>(&self) -> Box<dyn Partitioner<D> + Send + Sync> {
        match self {
            Self::DomainSfc(p) => Box::new(DomainSfcPartitioner::new(*p)),
            Self::Patch(p) => Box::new(PatchPartitioner::new(*p)),
            Self::Hybrid(p) => Box::new(HybridPartitioner::new(*p)),
        }
    }

    /// The default-configured domain-based choice.
    pub fn domain_sfc() -> Self {
        Self::DomainSfc(DomainSfcParams::default())
    }

    /// The default-configured patch-based choice.
    pub fn patch() -> Self {
        Self::Patch(PatchParams::default())
    }

    /// The default-configured hybrid choice (the paper's static neutral
    /// set-up).
    pub fn hybrid() -> Self {
        Self::Hybrid(HybridParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    #[test]
    fn families_are_distinct_and_named() {
        let choices = [
            PartitionerChoice::domain_sfc(),
            PartitionerChoice::patch(),
            PartitionerChoice::hybrid(),
        ];
        for (c, family) in choices.iter().zip(PartitionerChoice::FAMILIES) {
            assert_eq!(c.family(), family);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn choice_partitions_like_the_underlying_partitioner() {
        let h = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[vec![], vec![Rect2::from_coords(8, 8, 23, 23)]],
        );
        let choice = PartitionerChoice::hybrid();
        let direct = HybridPartitioner::default().partition(&h, 4);
        assert_eq!(choice.partition(&h, 4), direct);
        assert_eq!(
            choice.cost_estimate(&h),
            Partitioner::<2>::cost_estimate(&HybridPartitioner::default(), &h)
        );
    }

    #[test]
    fn same_choice_partitions_both_dimensions() {
        let h3 = GridHierarchy::from_level_rects(
            Box3::from_extents(12, 12, 12),
            2,
            &[vec![], vec![Box3::from_coords(4, 4, 4, 11, 11, 11)]],
        );
        for choice in [
            PartitionerChoice::domain_sfc(),
            PartitionerChoice::patch(),
            PartitionerChoice::hybrid(),
        ] {
            let part = choice.partition(&h3, 4);
            assert_eq!(crate::types::validate_partition(&h3, &part), Ok(()));
        }
    }
}
