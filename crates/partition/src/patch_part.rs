//! Patch-based partitioner (SAMRAI-style per-level distribution), generic
//! over the dimension.

use crate::types::{Fragment, LevelPartition, Partition, Partitioner, ProcId};
use samr_geom::sfc::{sfc_key_nd, SfcCurve};
use samr_geom::AABox;
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize};

/// How pieces are assigned to processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchAssign {
    /// Longest-processing-time greedy: best instantaneous balance, but
    /// assignments are unstable across regrids (high migration).
    Lpt,
    /// Morton-ordered contiguous chunking: pieces sorted along a
    /// space-filling curve and cut into near-equal-weight chunks —
    /// spatially coherent and stable across regrids (the behaviour of
    /// SAMRAI-style spatial bin packing).
    SfcChunk,
}

/// Configuration of the patch-based partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatchParams {
    /// Split patches whose weight exceeds `split_factor x` the ideal
    /// per-processor load at their level.
    pub split_factor: f64,
    /// Never split below this extent (granularity).
    pub min_block: i64,
    /// Piece-to-processor assignment policy.
    pub assign: PatchAssign,
}

impl Default for PatchParams {
    fn default() -> Self {
        Self {
            split_factor: 1.0,
            min_block: 2,
            assign: PatchAssign::SfcChunk,
        }
    }
}

/// Patch-based partitioner: distribution decisions are made per *patch*,
/// level by level, with no regard for where parent/child cells live — the
/// SAMRAI model the paper describes in §2.2. Oversized patches are
/// recursively bisected; the resulting pieces are assigned by the
/// longest-processing-time (LPT) greedy rule.
///
/// Advantages (per the paper): manageable load imbalance per level.
/// Shortcomings: inter-level communication (parent-child cells on
/// different processors) and serialization bottlenecks.
#[derive(Clone, Copy, Debug, Default)]
pub struct PatchPartitioner {
    /// Tuning parameters.
    pub params: PatchParams,
}

impl PatchPartitioner {
    /// Create with explicit parameters.
    pub fn new(params: PatchParams) -> Self {
        Self { params }
    }

    /// Recursively split `rect` until each piece weighs at most
    /// `max_cells` or can no longer be split without violating the
    /// granularity.
    fn split_to_size<const D: usize>(
        &self,
        rect: AABox<D>,
        max_cells: u64,
        out: &mut Vec<AABox<D>>,
    ) {
        if rect.cells() <= max_cells {
            out.push(rect);
            return;
        }
        let axis = rect.longest_axis();
        if rect.len(axis) < 2 * self.params.min_block {
            out.push(rect); // cannot split further
            return;
        }
        let (a, b) = rect.bisect().expect("longest axis splittable");
        self.split_to_size(a, max_cells, out);
        self.split_to_size(b, max_cells, out);
    }
}

impl<const D: usize> Partitioner<D> for PatchPartitioner {
    fn name(&self) -> String {
        let mode = match self.params.assign {
            PatchAssign::Lpt => "lpt",
            PatchAssign::SfcChunk => "sfc",
        };
        format!("patch-{mode}(split{:.1})", self.params.split_factor)
    }

    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        assert!(nprocs >= 1);
        let mut part = Partition::new(nprocs, h.levels.len());
        for (l, level) in h.levels.iter().enumerate() {
            let level_cells = level.cells();
            if level_cells == 0 {
                continue;
            }
            let ideal = (level_cells as f64 / nprocs as f64).max(1.0);
            let max_cells = (ideal * self.params.split_factor).ceil() as u64;

            // Split oversized patches.
            let mut pieces: Vec<AABox<D>> = Vec::with_capacity(level.patch_count());
            for p in &level.patches {
                self.split_to_size(p.rect, max_cells.max(1), &mut pieces);
            }
            let frags = &mut part.levels[l].fragments;
            match self.params.assign {
                PatchAssign::Lpt => {
                    // LPT greedy: biggest piece to least-loaded processor.
                    // Sort is stable with a deterministic geometry
                    // tie-break (the historical `(cells desc, lo.y, lo.x)`
                    // key, generalized).
                    pieces.sort_by(|a, b| b.cells().cmp(&a.cells()).then_with(|| a.cmp_spatial(b)));
                    let mut loads = vec![0u64; nprocs];
                    for rect in pieces {
                        let owner = loads
                            .iter()
                            .enumerate()
                            .min_by_key(|&(i, &w)| (w, i))
                            .map(|(i, _)| i as ProcId)
                            .unwrap();
                        loads[owner as usize] += rect.cells();
                        frags.push(Fragment { rect, owner });
                    }
                }
                PatchAssign::SfcChunk => {
                    // Morton order of piece lower corners, then contiguous
                    // near-equal-weight chunks.
                    pieces.sort_by_key(|r| {
                        // Level index spaces are non-negative in this
                        // code base; clamp defensively for the key only.
                        let c: [u64; D] = std::array::from_fn(|i| r.lo()[i].max(0) as u64);
                        sfc_key_nd::<D>(SfcCurve::Morton, 0, c)
                    });
                    let total: u64 = pieces.iter().map(AABox::cells).sum();
                    let mut acc = 0.0f64;
                    let mut proc = 0u32;
                    for rect in pieces {
                        let w = rect.cells() as f64;
                        while proc + 1 < nprocs as u32
                            && acc + 0.5 * w > total as f64 * (proc + 1) as f64 / nprocs as f64
                        {
                            proc += 1;
                        }
                        acc += w;
                        frags.push(Fragment { rect, owner: proc });
                    }
                }
            }
        }
        part
    }

    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        // Sorting patches per level: very cheap.
        let patches: usize = h.levels.iter().map(|l| l.patch_count()).sum();
        (patches.max(1) as f64) * (patches.max(2) as f64).log2() / 50.0
    }
}

/// Per-level load imbalance of a partition (max/avg within one level) —
/// the quantity the patch-based scheme optimizes.
pub fn level_imbalance<const D: usize>(part: &Partition<D>, level: usize) -> f64 {
    let lp: &LevelPartition<D> = &part.levels[level];
    let mut loads = vec![0u64; part.nprocs];
    for f in &lp.fragments {
        loads[f.owner as usize] += f.rect.cells();
    }
    let max = *loads.iter().max().unwrap_or(&0);
    let sum: u64 = loads.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    max as f64 / (sum as f64 / part.nprocs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::validate_partition;
    use samr_geom::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn hierarchy() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[
                vec![],
                vec![r(8, 8, 39, 39), r(48, 0, 55, 7)],
                vec![r(24, 24, 55, 55)],
            ],
        )
    }

    #[test]
    fn produces_valid_partitions() {
        let h = hierarchy();
        for nprocs in [1, 3, 8, 16] {
            let part = PatchPartitioner::default().partition(&h, nprocs);
            assert_eq!(validate_partition(&h, &part), Ok(()), "nprocs={nprocs}");
        }
    }

    #[test]
    fn produces_valid_partitions_3d() {
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[
                vec![],
                vec![Box3::from_coords(2, 2, 2, 13, 13, 13)],
                vec![Box3::from_coords(8, 8, 8, 23, 23, 23)],
            ],
        );
        for nprocs in [1, 4, 9] {
            for assign in [PatchAssign::Lpt, PatchAssign::SfcChunk] {
                let p = PatchPartitioner::new(PatchParams {
                    assign,
                    ..PatchParams::default()
                });
                let part = p.partition(&h, nprocs);
                assert_eq!(
                    validate_partition(&h, &part),
                    Ok(()),
                    "nprocs={nprocs} assign={assign:?}"
                );
            }
        }
    }

    #[test]
    fn per_level_balance_is_good() {
        // Patch-based optimizes per-level balance; with splitting allowed
        // down to the ideal size the imbalance per level should be small.
        let h = hierarchy();
        let part = PatchPartitioner::default().partition(&h, 8);
        for l in 0..part.levels.len() {
            // Bisection splits by powers of two, so pieces quantize at
            // ideal/2 .. ideal: 1.5x is the guaranteed bound.
            let imb = level_imbalance(&part, l);
            assert!(imb < 1.5, "level {l} imbalance {imb}");
        }
    }

    #[test]
    fn splitting_respects_granularity() {
        let h = hierarchy();
        let part = PatchPartitioner::default().partition(&h, 16);
        for lp in &part.levels {
            for f in &lp.fragments {
                assert!(f.rect.extent().x >= 2 || f.rect.extent().y >= 2);
            }
        }
    }

    #[test]
    fn no_split_factor_large_keeps_patches_whole() {
        let h = hierarchy();
        let p = PatchPartitioner::new(PatchParams {
            split_factor: 1e9,
            ..PatchParams::default()
        });
        let part = p.partition(&h, 4);
        // Fragment count equals patch count: nothing was split.
        assert_eq!(part.fragment_count(), 4);
        assert_eq!(validate_partition(&h, &part), Ok(()));
    }

    #[test]
    fn lpt_assignment_is_valid_and_balanced() {
        let h = hierarchy();
        let p = PatchPartitioner::new(PatchParams {
            assign: PatchAssign::Lpt,
            ..PatchParams::default()
        });
        let part = p.partition(&h, 8);
        assert_eq!(validate_partition(&h, &part), Ok(()));
        for l in 0..part.levels.len() {
            assert!(level_imbalance(&part, l) < 1.5);
        }
    }

    #[test]
    fn sfc_chunking_is_more_stable_than_lpt() {
        // Between steps the size *ranking* of the patches inverts (A
        // shrinks, B grows). LPT assigns by size rank, so the inversion
        // reshuffles owners wholesale; the spatially coherent chunking
        // keeps owners where the data is.
        let h0 = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[
                vec![],
                vec![r(0, 0, 15, 7), r(20, 0, 31, 7), r(36, 0, 43, 7)],
            ],
        );
        let h1 = GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[
                vec![],
                vec![r(0, 0, 13, 7), r(18, 0, 33, 7), r(36, 0, 43, 7)],
            ],
        );
        let moved = |params: PatchParams| -> u64 {
            let p = PatchPartitioner::new(PatchParams {
                split_factor: 1e9, // keep patches whole to isolate ranking
                ..params
            });
            let a = p.partition(&h0, 2);
            let b = p.partition(&h1, 2);
            let mut m = 0;
            for l in 0..a.levels.len().min(b.levels.len()) {
                for fa in &a.levels[l].fragments {
                    for fb in &b.levels[l].fragments {
                        if fa.owner != fb.owner {
                            m += fa.rect.overlap_cells(&fb.rect);
                        }
                    }
                }
            }
            m
        };
        let sfc = moved(PatchParams::default());
        let lpt = moved(PatchParams {
            assign: PatchAssign::Lpt,
            ..PatchParams::default()
        });
        assert!(sfc < lpt, "sfc moved {sfc}, lpt moved {lpt}");
    }

    #[test]
    fn interlevel_separation_happens() {
        // The known patch-based shortcoming: children do not follow their
        // parents. With patches assigned per level by LPT, at least one
        // level-2 fragment must sit on a different processor than the
        // base-region fragment underneath it.
        let h = hierarchy();
        let part = PatchPartitioner::default().partition(&h, 4);
        let base_owner_of = |cell: samr_geom::Point2| -> ProcId {
            part.levels[0]
                .fragments
                .iter()
                .find(|f| f.rect.contains_point(cell))
                .map(|f| f.owner)
                .unwrap()
        };
        let mut split_seen = false;
        for f in &part.levels[2].fragments {
            let base_cell = f.rect.lo().div_floor(4);
            if base_owner_of(base_cell) != f.owner {
                split_seen = true;
            }
        }
        assert!(split_seen, "suspiciously perfect parent-child colocation");
    }

    #[test]
    fn empty_levels_are_skipped() {
        let h = GridHierarchy::base_only(Rect2::from_extents(8, 8), 2);
        let part = PatchPartitioner::default().partition(&h, 3);
        assert_eq!(part.levels.len(), 1);
        assert_eq!(validate_partition(&h, &part), Ok(()));
    }
}
