//! Partition representation and the partitioner interface, generic over
//! the dimension.

use samr_geom::{boxops, AABox};
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize, Value};

/// Processor rank.
pub type ProcId = u32;

/// One owner-tagged piece of a level: `rect` (in the level's index space)
/// is assigned to processor `owner`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fragment<const D: usize> {
    /// The cells of the fragment.
    pub rect: AABox<D>,
    /// Owning processor.
    pub owner: ProcId,
}

impl<const D: usize> Serialize for Fragment<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("rect".to_string(), self.rect.serialize()),
            ("owner".to_string(), self.owner.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for Fragment<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            rect: serde::field(v, "rect")?,
            owner: serde::field(v, "owner")?,
        })
    }
}

/// The fragments of one refinement level.
#[derive(Clone, PartialEq, Debug)]
pub struct LevelPartition<const D: usize> {
    /// Disjoint fragments tiling the level's patches.
    pub fragments: Vec<Fragment<D>>,
}

impl<const D: usize> Default for LevelPartition<D> {
    fn default() -> Self {
        Self {
            fragments: Vec::new(),
        }
    }
}

impl<const D: usize> LevelPartition<D> {
    /// Total cells assigned at this level.
    pub fn cells(&self) -> u64 {
        self.fragments.iter().map(|f| f.rect.cells()).sum()
    }

    /// Fragments owned by `p`.
    pub fn owned_by(&self, p: ProcId) -> impl Iterator<Item = &Fragment<D>> + '_ {
        self.fragments.iter().filter(move |f| f.owner == p)
    }

    /// The boxes owned by `p` at this level.
    pub fn rects_of(&self, p: ProcId) -> Vec<AABox<D>> {
        self.owned_by(p).map(|f| f.rect).collect()
    }
}

impl<const D: usize> Serialize for LevelPartition<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![("fragments".to_string(), self.fragments.serialize())])
    }
}

impl<const D: usize> Deserialize for LevelPartition<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            fragments: serde::field(v, "fragments")?,
        })
    }
}

/// A complete distribution of a hierarchy over `nprocs` processors.
#[derive(Clone, PartialEq, Debug)]
pub struct Partition<const D: usize> {
    /// Number of processors partitioned over.
    pub nprocs: usize,
    /// One entry per hierarchy level.
    pub levels: Vec<LevelPartition<D>>,
}

impl<const D: usize> Serialize for Partition<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("nprocs".to_string(), self.nprocs.serialize()),
            ("levels".to_string(), self.levels.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for Partition<D> {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            nprocs: serde::field(v, "nprocs")?,
            levels: serde::field(v, "levels")?,
        })
    }
}

impl<const D: usize> Partition<D> {
    /// An empty partition skeleton.
    pub fn new(nprocs: usize, nlevels: usize) -> Self {
        Self {
            nprocs,
            levels: vec![LevelPartition::default(); nlevels],
        }
    }

    /// Computational load per processor: cells weighted by the per-level
    /// local-step multiplicity `ratio^l` (the same weighting as the
    /// hierarchy workload, so `loads.sum() == h.workload()`).
    pub fn loads(&self, ratio: i64) -> Vec<u64> {
        let mut loads = vec![0u64; self.nprocs];
        for (l, level) in self.levels.iter().enumerate() {
            let w = (ratio as u64).pow(l as u32);
            for f in &level.fragments {
                loads[f.owner as usize] += f.rect.cells() * w;
            }
        }
        loads
    }

    /// Load imbalance as the paper's de-facto standard (§4.1): load of the
    /// heaviest processor divided by the average load. 1.0 is perfect.
    pub fn load_imbalance(&self, ratio: i64) -> f64 {
        let loads = self.loads(ratio);
        let max = loads.iter().copied().max().unwrap_or(0);
        let sum: u64 = loads.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let avg = sum as f64 / self.nprocs as f64;
        max as f64 / avg
    }

    /// Total number of fragments (partitioning fragmentation overhead
    /// metric).
    pub fn fragment_count(&self) -> usize {
        self.levels.iter().map(|l| l.fragments.len()).sum()
    }
}

/// Reusable working memory for the partitioner hot path.
///
/// A snapshot stream invokes a partitioner once per regrid; without a
/// scratch every invocation re-allocates the same region buckets, unit
/// arenas and SFC key buffers. Callers that partition many snapshots
/// hold one `PartitionScratch` and pass it to
/// [`Partitioner::partition_with`]; the buffers grow to the
/// high-water mark of the stream and are reused from then on.
///
/// The reuse contract: `partition_with(h, n, scratch)` returns exactly
/// the same `Partition` as `partition(h, n)` for every implementor —
/// the scratch only changes *where* intermediates live, never what is
/// computed. The contents of the scratch between calls are
/// unspecified; any invocation may clobber them.
pub struct PartitionScratch<const D: usize> {
    /// Per-processor rect buckets (region lists, coalesce inputs).
    pub(crate) owner_rects: Vec<Vec<AABox<D>>>,
    /// Per-processor base-domain region boxes (domain-SFC).
    pub(crate) regions: Vec<Vec<AABox<D>>>,
    /// Composite unit weights (handed into `UnitGrid` and back).
    pub(crate) weights: Vec<u64>,
    /// Unit coordinates for batch SFC key generation.
    pub(crate) coords: Vec<[u64; D]>,
    /// Batch SFC key output.
    pub(crate) keys: Vec<u64>,
    /// `(effective key, unit)` pairs awaiting the order sort.
    pub(crate) keyed: Vec<(u64, [i64; D])>,
    /// The SFC-ordered unit sequence.
    pub(crate) order: Vec<[i64; D]>,
    /// Owner of each SFC-ordered unit.
    pub(crate) owners: Vec<ProcId>,
    /// Flat piece arena for the hybrid bi-level units.
    pub(crate) pieces: Vec<AABox<D>>,
    /// Hybrid units as `(key, piece start, piece count, weight)` over
    /// the piece arena.
    pub(crate) units: Vec<(u64, u32, u32, u64)>,
}

impl<const D: usize> Default for PartitionScratch<D> {
    fn default() -> Self {
        Self {
            owner_rects: Vec::new(),
            regions: Vec::new(),
            weights: Vec::new(),
            coords: Vec::new(),
            keys: Vec::new(),
            keyed: Vec::new(),
            order: Vec::new(),
            owners: Vec::new(),
            pieces: Vec::new(),
            units: Vec::new(),
        }
    }
}

impl<const D: usize> PartitionScratch<D> {
    /// Clear `buckets` down to `n` empty per-processor lists, keeping
    /// the allocated capacity of each retained list.
    pub(crate) fn reset_buckets(buckets: &mut Vec<Vec<AABox<D>>>, n: usize) {
        buckets.truncate(n);
        for b in buckets.iter_mut() {
            b.clear();
        }
        while buckets.len() < n {
            buckets.push(Vec::new());
        }
    }
}

/// A partitioning algorithm: hierarchy in, owner-tagged fragments out.
pub trait Partitioner<const D: usize> {
    /// Human-readable name (includes configuration).
    fn name(&self) -> String;

    /// Partition `h` over `nprocs` processors.
    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D>;

    /// Partition `h` over `nprocs` processors, reusing `scratch` for
    /// intermediate allocations. Must return exactly what
    /// [`Partitioner::partition`] returns; the default implementation
    /// simply ignores the scratch, so implementors without a hot path
    /// need not change.
    fn partition_with(
        &self,
        h: &GridHierarchy<D>,
        nprocs: usize,
        scratch: &mut PartitionScratch<D>,
    ) -> Partition<D> {
        let _ = scratch;
        self.partition(h, nprocs)
    }

    /// Relative cost of one invocation in abstract time units (used by the
    /// meta-partitioner's speed-vs-quality trade-off). The default charges
    /// one unit per patch plus one per thousand cells.
    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        let patches: usize = h.levels.iter().map(|l| l.patch_count()).sum();
        patches as f64 + h.total_points() as f64 / 1000.0
    }
}

/// Check that `part` is a valid distribution of `h`:
/// every level's fragments are pairwise disjoint, lie inside the level's
/// patches, cover them exactly, and carry owners `< nprocs`.
pub fn validate_partition<const D: usize>(
    h: &GridHierarchy<D>,
    part: &Partition<D>,
) -> Result<(), String> {
    if part.levels.len() != h.levels.len() {
        return Err(format!(
            "partition has {} levels, hierarchy has {}",
            part.levels.len(),
            h.levels.len()
        ));
    }
    for (l, (lp, level)) in part.levels.iter().zip(&h.levels).enumerate() {
        let frags: Vec<AABox<D>> = lp.fragments.iter().map(|f| f.rect).collect();
        for (i, f) in lp.fragments.iter().enumerate() {
            if (f.owner as usize) >= part.nprocs {
                return Err(format!(
                    "level {l}: fragment owner {} out of range",
                    f.owner
                ));
            }
            for g in &lp.fragments[i + 1..] {
                if f.rect.intersects(&g.rect) {
                    return Err(format!(
                        "level {l}: fragments {:?} and {:?} overlap",
                        f.rect, g.rect
                    ));
                }
            }
        }
        let patch_rects = level.rects();
        // Same cell count and mutual coverage => identical cell sets.
        let frag_cells = boxops::total_cells(&frags);
        let patch_cells = boxops::total_cells(&patch_rects);
        if frag_cells != patch_cells {
            return Err(format!(
                "level {l}: fragments cover {frag_cells} cells, patches {patch_cells}"
            ));
        }
        for p in &patch_rects {
            if !boxops::covers(p, &frags) {
                return Err(format!("level {l}: patch {p:?} not covered by fragments"));
            }
        }
        for f in &frags {
            if !boxops::covers(f, &patch_rects) {
                return Err(format!("level {l}: fragment {f:?} escapes the patches"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn two_level_hierarchy() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(8, 8),
            2,
            &[vec![], vec![r(4, 4, 11, 11)]],
        )
    }

    fn valid_partition() -> Partition<2> {
        Partition {
            nprocs: 2,
            levels: vec![
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(0, 0, 3, 7),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(4, 0, 7, 7),
                            owner: 1,
                        },
                    ],
                },
                LevelPartition {
                    fragments: vec![
                        Fragment {
                            rect: r(4, 4, 7, 11),
                            owner: 0,
                        },
                        Fragment {
                            rect: r(8, 4, 11, 11),
                            owner: 1,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn loads_weight_levels_by_time_refinement() {
        let p = valid_partition();
        let loads = p.loads(2);
        // Each proc: 32 base cells + 32 level-1 cells * 2.
        assert_eq!(loads, vec![32 + 64, 32 + 64]);
        assert_eq!(loads.iter().sum::<u64>(), two_level_hierarchy().workload());
        assert!((p.load_imbalance(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut p = valid_partition();
        for f in &mut p.levels[1].fragments {
            f.owner = 0;
        }
        // Proc 0: 32 + 128 = 160, proc 1: 32; average 96.
        let imb = p.load_imbalance(2);
        assert!((imb - (160.0 / 96.0)).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_exact_tiling() {
        assert_eq!(
            validate_partition(&two_level_hierarchy(), &valid_partition()),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut p = valid_partition();
        p.levels[0].fragments[1].rect = r(3, 0, 7, 7);
        assert!(validate_partition(&two_level_hierarchy(), &p)
            .unwrap_err()
            .contains("overlap"));
    }

    #[test]
    fn validate_rejects_uncovered_cells() {
        let mut p = valid_partition();
        p.levels[1].fragments.pop();
        assert!(validate_partition(&two_level_hierarchy(), &p)
            .unwrap_err()
            .contains("cells"));
    }

    #[test]
    fn validate_rejects_escaping_fragment() {
        let mut p = valid_partition();
        // Same cell count, but outside the patch.
        p.levels[1].fragments[1].rect = r(20, 20, 23, 27);
        assert!(validate_partition(&two_level_hierarchy(), &p).is_err());
    }

    #[test]
    fn validate_rejects_bad_owner() {
        let mut p = valid_partition();
        p.levels[0].fragments[0].owner = 7;
        assert!(validate_partition(&two_level_hierarchy(), &p)
            .unwrap_err()
            .contains("owner"));
    }

    #[test]
    fn validate_rejects_level_count_mismatch() {
        let mut p = valid_partition();
        p.levels.pop();
        assert!(validate_partition(&two_level_hierarchy(), &p).is_err());
    }

    #[test]
    fn fragment_count_sums_levels() {
        assert_eq!(valid_partition().fragment_count(), 4);
    }
}
