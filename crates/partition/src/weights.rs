//! Composite workload weighting of the base domain, generic over the
//! dimension.
//!
//! Domain-based SAMR partitioners cut the *base domain* and take all
//! overlaid refined cells along with the cut. The unit of currency is an
//! *atomic unit*: a small cubic block of base cells (Nature+Fable exposes
//! the atomic-unit size as a tuning parameter). Each unit's weight is the
//! full composite workload of the column of cells above it:
//! `Σ_l |level_l ∩ refine(unit)| · ratio^l`.

use crate::types::PartitionScratch;
use samr_geom::sfc::{order_for, sfc_keys_nd, SfcCurve};
use samr_geom::{AABox, Point};
use samr_grid::GridHierarchy;

/// The base domain diced into atomic units with composite weights.
#[derive(Clone, Debug)]
pub struct UnitGrid<const D: usize> {
    /// Base cells per unit side.
    pub unit: i64,
    /// Units along each axis.
    pub dims: [i64; D],
    /// Base-domain origin (unit `(0, …, 0)` starts here).
    pub origin: Point<D>,
    /// Row-major composite workload per unit (axis 0 fastest).
    pub weights: Vec<u64>,
}

impl<const D: usize> UnitGrid<D> {
    /// The box of the unit index space (`[0, dims-1]` per axis).
    pub fn index_box(&self) -> AABox<D> {
        AABox::from_extent_array(self.dims)
    }

    /// The base-space box of unit `u` (clipped to the domain for edge
    /// units when the domain is not a multiple of the unit size).
    pub fn unit_rect(&self, domain: &AABox<D>, u: [i64; D]) -> AABox<D> {
        let lo = Point::from_fn(|i| self.origin[i] + u[i] * self.unit);
        let hi = Point::from_fn(|i| lo[i] + self.unit - 1);
        AABox::new(lo, hi)
            .intersect(domain)
            .expect("unit inside domain")
    }

    /// Total weight over all units (equals the hierarchy workload).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Weight of unit `u`.
    pub fn weight(&self, u: [i64; D]) -> u64 {
        self.weights[self.index_box().linear_index(Point::from_array(u))]
    }
}

/// Dice the base domain of `h` into `unit`-sized atomic units and compute
/// the composite workload of each.
pub fn composite_unit_weights<const D: usize>(h: &GridHierarchy<D>, unit: i64) -> UnitGrid<D> {
    composite_unit_weights_in(h, unit, Vec::new())
}

/// [`composite_unit_weights`] building the weight table into `weights`
/// (cleared, resized, and moved into the returned grid). Callers on the
/// hot path hand the buffer back out of `UnitGrid::weights` afterwards
/// to keep the allocation alive across snapshots.
pub fn composite_unit_weights_in<const D: usize>(
    h: &GridHierarchy<D>,
    unit: i64,
    mut weights: Vec<u64>,
) -> UnitGrid<D> {
    assert!(unit >= 1);
    let domain = h.base_domain;
    let e = domain.extent();
    let dims: [i64; D] = std::array::from_fn(|i| (e[i] + unit - 1) / unit);
    let index_box = AABox::<D>::from_extent_array(dims);
    weights.clear();
    weights.resize(index_box.cells() as usize, 0u64);
    for (l, level) in h.levels.iter().enumerate() {
        let scale = h.ratio.pow(l as u32);
        let w = (h.ratio as u64).pow(l as u32);
        for patch in &level.patches {
            // Footprint of the patch on the base grid, then on units.
            let base_fp = patch.rect.coarsen(scale);
            let u_lo = (base_fp.lo() - domain.lo()).div_floor(unit);
            let u_hi = (base_fp.hi() - domain.lo()).div_floor(unit);
            let u_hi = Point::<D>::from_fn(|i| u_hi[i].min(dims[i] - 1));
            let Some(span) = AABox::try_new(u_lo, u_hi) else {
                continue;
            };
            for u in span.iter_cells() {
                let lo = Point::<D>::from_fn(|i| domain.lo()[i] + u[i] * unit);
                let unit_box = AABox::new(lo, Point::from_fn(|i| lo[i] + unit - 1));
                let fine_unit = unit_box.refine(scale);
                let overlap = patch.rect.overlap_cells(&fine_unit);
                weights[index_box.linear_index(u)] += overlap * w;
            }
        }
    }
    UnitGrid {
        unit,
        dims,
        origin: domain.lo(),
        weights,
    }
}

/// Linearize the units of `grid` along a space-filling curve.
///
/// With `full_order = true` the exact curve ordering is used. With
/// `full_order = false` the *partially ordered* variant the paper
/// attributes to Nature+Fable is used: units are bucketed by the top bits
/// of their SFC key (buckets of `2^(D·partial_level)` curve positions) and
/// kept in row-major order inside each bucket — cheaper to compute
/// incrementally, at some locality cost.
pub fn sfc_order<const D: usize>(
    grid: &UnitGrid<D>,
    curve: SfcCurve,
    full_order: bool,
) -> Vec<[i64; D]> {
    let mut scratch = PartitionScratch::default();
    sfc_order_with(grid, curve, full_order, &mut scratch);
    std::mem::take(&mut scratch.order)
}

/// [`sfc_order`] into `scratch.order`, reusing the scratch's coordinate,
/// key and sort buffers across snapshots. Output is identical to
/// [`sfc_order`] for the same inputs.
pub fn sfc_order_with<const D: usize>(
    grid: &UnitGrid<D>,
    curve: SfcCurve,
    full_order: bool,
    scratch: &mut PartitionScratch<D>,
) {
    let order = order_for(grid.dims.iter().copied().max().unwrap_or(1) as u64);
    scratch.coords.clear();
    scratch
        .coords
        .extend(grid.index_box().iter_cells().map(|u| {
            let c = u.coords();
            std::array::from_fn::<u64, D, _>(|i| c[i] as u64)
        }));
    // Batch-encode the whole unit grid (one SFC kernel dispatch per
    // snapshot instead of one per cell).
    sfc_keys_nd::<D>(curve, order, &scratch.coords, &mut scratch.keys);
    scratch.keyed.clear();
    scratch
        .keyed
        .extend(scratch.keys.iter().zip(&scratch.coords).map(|(&key, c)| {
            // Partial ordering: keep only the top 4 levels of the curve
            // (buckets of 2^(D*(order-4)) positions); ties resolved by
            // the row-major push order (sort is stable).
            let eff_key = if full_order || order <= 4 {
                key
            } else {
                key >> (D as u32 * (order - 4))
            };
            (eff_key, std::array::from_fn::<i64, D, _>(|i| c[i] as i64))
        }));
    scratch.keyed.sort_by_key(|&(k, _)| k);
    scratch.order.clear();
    scratch.order.extend(scratch.keyed.iter().map(|&(_, u)| u));
}

/// Split an SFC-ordered unit sequence into `nprocs` contiguous chunks of
/// near-equal weight (greedy prefix walk against the ideal running
/// quota). Returns the owner of every unit in sequence order.
pub fn split_contiguous<const D: usize>(
    grid: &UnitGrid<D>,
    order: &[[i64; D]],
    nprocs: usize,
) -> Vec<u32> {
    let mut owners = Vec::with_capacity(order.len());
    split_contiguous_into(grid, order, nprocs, &mut owners);
    owners
}

/// [`split_contiguous`] into a reusable `owners` buffer (cleared first).
pub fn split_contiguous_into<const D: usize>(
    grid: &UnitGrid<D>,
    order: &[[i64; D]],
    nprocs: usize,
    owners: &mut Vec<u32>,
) {
    assert!(nprocs >= 1);
    let total = grid.total_weight() as f64;
    owners.clear();
    owners.reserve(order.len());
    let mut acc = 0.0f64;
    let mut proc = 0u32;
    for &u in order {
        let w = grid.weight(u) as f64;
        // Advance to the next processor when the running total has passed
        // this processor's quota boundary (midpoint rule so a big unit
        // lands on whichever side it overlaps more).
        while proc + 1 < nprocs as u32 && acc + 0.5 * w > total * (proc + 1) as f64 / nprocs as f64
        {
            proc += 1;
        }
        owners.push(proc);
        acc += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn hierarchy() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(8, 8, 15, 15)], vec![r(20, 20, 27, 27)]],
        )
    }

    #[test]
    fn weights_sum_to_workload() {
        let h = hierarchy();
        for unit in [1, 2, 4, 8] {
            let g = composite_unit_weights(&h, unit);
            assert_eq!(g.total_weight(), h.workload(), "unit={unit}");
        }
    }

    #[test]
    fn refined_units_are_heavier() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 2);
        // Unit at base cells [4..5]^2 sits under the level-1 patch
        // ([8..15]^2 fine = [4..7]^2 base).
        let heavy = g.weight([2, 2]);
        let light = g.weight([0, 0]);
        assert_eq!(light, 4); // bare base cells
        assert!(heavy > light);
        // Unit under both level 1 and level 2: base cells [5..5]... level 2
        // box [20..27]^2 coarsens to base [5..6]^2.
        let heaviest = g.weight([2, 2]).max(g.weight([3, 3]));
        assert!(heaviest >= 4 + 2 * 16);
    }

    #[test]
    fn unit_rect_clips_at_domain_edge() {
        let h = GridHierarchy::base_only(Rect2::from_extents(10, 10), 2);
        let g = composite_unit_weights(&h, 4);
        assert_eq!(g.dims, [3, 3]);
        assert_eq!(g.unit_rect(&h.base_domain, [2, 2]), r(8, 8, 9, 9));
        assert_eq!(g.total_weight(), 100);
    }

    #[test]
    fn sfc_order_is_a_permutation() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 2);
        for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
            for full in [false, true] {
                let ord = sfc_order(&g, curve, full);
                assert_eq!(ord.len(), g.weights.len());
                let mut seen = std::collections::HashSet::new();
                for &u in &ord {
                    assert!(seen.insert(u));
                    assert!(u[0] < g.dims[0] && u[1] < g.dims[1]);
                }
            }
        }
    }

    #[test]
    fn full_hilbert_order_has_unit_steps() {
        let h = GridHierarchy::base_only(Rect2::from_extents(16, 16), 2);
        let g = composite_unit_weights(&h, 2); // 8x8 units
        let ord = sfc_order(&g, SfcCurve::Hilbert, true);
        for w in ord.windows(2) {
            let d = (w[1][0] - w[0][0]).abs() + (w[1][1] - w[0][1]).abs();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn split_balances_uniform_weights() {
        let h = GridHierarchy::base_only(Rect2::from_extents(16, 16), 2);
        let g = composite_unit_weights(&h, 2);
        let ord = sfc_order(&g, SfcCurve::Morton, true);
        let owners = split_contiguous(&g, &ord, 4);
        let mut loads = [0u64; 4];
        for (i, &u) in ord.iter().enumerate() {
            loads[owners[i] as usize] += g.weight(u);
        }
        let max = *loads.iter().max().unwrap() as f64;
        let avg = loads.iter().sum::<u64>() as f64 / 4.0;
        assert!(max / avg < 1.05, "{loads:?}");
        // Owners are monotone along the curve (contiguous chunks).
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_single_proc_owns_all() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 4);
        let ord = sfc_order(&g, SfcCurve::Hilbert, false);
        let owners = split_contiguous(&g, &ord, 1);
        assert!(owners.iter().all(|&o| o == 0));
    }

    #[test]
    fn three_d_weights_sum_and_hilbert_steps() {
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[vec![], vec![Box3::from_coords(8, 8, 8, 23, 23, 23)]],
        );
        for unit in [1, 2, 4] {
            let g = composite_unit_weights(&h, unit);
            assert_eq!(g.total_weight(), h.workload(), "unit={unit}");
        }
        let g = composite_unit_weights(&h, 2); // 8x8x8 units
        let ord = sfc_order(&g, SfcCurve::Hilbert, true);
        assert_eq!(ord.len(), 512);
        for w in ord.windows(2) {
            let d = (0..3).map(|i| (w[1][i] - w[0][i]).abs()).sum::<i64>();
            assert_eq!(d, 1, "3-D Hilbert order must step to face neighbours");
        }
        let owners = split_contiguous(&g, &ord, 5);
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }
}
