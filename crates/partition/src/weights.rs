//! Composite workload weighting of the base domain.
//!
//! Domain-based SAMR partitioners cut the *base domain* and take all
//! overlaid refined cells along with the cut. The unit of currency is an
//! *atomic unit*: a small square block of base cells (Nature+Fable exposes
//! the atomic-unit size as a tuning parameter). Each unit's weight is the
//! full composite workload of the column of cells above it:
//! `Σ_l |level_l ∩ refine(unit)| · ratio^l`.

use samr_geom::sfc::{order_for, sfc_key, SfcCurve};
use samr_geom::{Point2, Rect2};
use samr_grid::GridHierarchy;

/// The base domain diced into atomic units with composite weights.
#[derive(Clone, Debug)]
pub struct UnitGrid {
    /// Base cells per unit side.
    pub unit: i64,
    /// Units along x and y.
    pub dims: (i64, i64),
    /// Base-domain origin (unit (0,0) starts here).
    pub origin: Point2,
    /// Row-major composite workload per unit.
    pub weights: Vec<u64>,
}

impl UnitGrid {
    /// The base-space box of unit `(ux, uy)` (clipped to the domain for
    /// edge units when the domain is not a multiple of the unit size).
    pub fn unit_rect(&self, domain: &Rect2, ux: i64, uy: i64) -> Rect2 {
        let lo = Point2::new(
            self.origin.x + ux * self.unit,
            self.origin.y + uy * self.unit,
        );
        let hi = Point2::new(lo.x + self.unit - 1, lo.y + self.unit - 1);
        Rect2::new(lo, hi)
            .intersect(domain)
            .expect("unit inside domain")
    }

    /// Total weight over all units (equals the hierarchy workload).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Weight of unit `(ux, uy)`.
    pub fn weight(&self, ux: i64, uy: i64) -> u64 {
        self.weights[(uy * self.dims.0 + ux) as usize]
    }
}

/// Dice the base domain of `h` into `unit`-sized atomic units and compute
/// the composite workload of each.
pub fn composite_unit_weights(h: &GridHierarchy, unit: i64) -> UnitGrid {
    assert!(unit >= 1);
    let domain = h.base_domain;
    let e = domain.extent();
    let dims = ((e.x + unit - 1) / unit, (e.y + unit - 1) / unit);
    let mut weights = vec![0u64; (dims.0 * dims.1) as usize];
    for (l, level) in h.levels.iter().enumerate() {
        let scale = h.ratio.pow(l as u32);
        let w = (h.ratio as u64).pow(l as u32);
        for patch in &level.patches {
            // Footprint of the patch on the base grid, then on units.
            let base_fp = patch.rect.coarsen(scale);
            let u_lo = (base_fp.lo() - domain.lo()).div_floor(unit);
            let u_hi = (base_fp.hi() - domain.lo()).div_floor(unit);
            for uy in u_lo.y..=u_hi.y.min(dims.1 - 1) {
                for ux in u_lo.x..=u_hi.x.min(dims.0 - 1) {
                    let unit_box = Rect2::new(
                        Point2::new(domain.lo().x + ux * unit, domain.lo().y + uy * unit),
                        Point2::new(
                            domain.lo().x + ux * unit + unit - 1,
                            domain.lo().y + uy * unit + unit - 1,
                        ),
                    );
                    let fine_unit = unit_box.refine(scale);
                    let overlap = patch.rect.overlap_cells(&fine_unit);
                    weights[(uy * dims.0 + ux) as usize] += overlap * w;
                }
            }
        }
    }
    UnitGrid {
        unit,
        dims,
        origin: domain.lo(),
        weights,
    }
}

/// Linearize the units of `grid` along a space-filling curve.
///
/// With `full_order = true` the exact curve ordering is used. With
/// `full_order = false` the *partially ordered* variant the paper
/// attributes to Nature+Fable is used: units are bucketed by the top bits
/// of their SFC key (buckets of `2^(2*partial_level)` curve positions) and
/// kept in row-major order inside each bucket — cheaper to compute
/// incrementally, at some locality cost.
pub fn sfc_order(grid: &UnitGrid, curve: SfcCurve, full_order: bool) -> Vec<(i64, i64)> {
    let order = order_for(grid.dims.0.max(grid.dims.1) as u64);
    let mut units: Vec<(u64, i64, i64)> = Vec::with_capacity((grid.dims.0 * grid.dims.1) as usize);
    for uy in 0..grid.dims.1 {
        for ux in 0..grid.dims.0 {
            let key = sfc_key(curve, order, ux as u64, uy as u64);
            // Partial ordering: keep only the top 4 levels of the curve
            // (buckets of 2^(2*(order-4)) positions); ties resolved by the
            // row-major push order (sort is stable).
            let eff_key = if full_order || order <= 4 {
                key
            } else {
                key >> (2 * (order - 4))
            };
            units.push((eff_key, ux, uy));
        }
    }
    units.sort_by_key(|&(k, _, _)| k);
    units.into_iter().map(|(_, ux, uy)| (ux, uy)).collect()
}

/// Split an SFC-ordered unit sequence into `nprocs` contiguous chunks of
/// near-equal weight (greedy prefix walk against the ideal running
/// quota). Returns the owner of every unit in sequence order.
pub fn split_contiguous(grid: &UnitGrid, order: &[(i64, i64)], nprocs: usize) -> Vec<u32> {
    assert!(nprocs >= 1);
    let total = grid.total_weight() as f64;
    let mut owners = Vec::with_capacity(order.len());
    let mut acc = 0.0f64;
    let mut proc = 0u32;
    for &(ux, uy) in order {
        let w = grid.weight(ux, uy) as f64;
        // Advance to the next processor when the running total has passed
        // this processor's quota boundary (midpoint rule so a big unit
        // lands on whichever side it overlaps more).
        while proc + 1 < nprocs as u32 && acc + 0.5 * w > total * (proc + 1) as f64 / nprocs as f64
        {
            proc += 1;
        }
        owners.push(proc);
        acc += w;
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn hierarchy() -> GridHierarchy {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(16, 16),
            2,
            &[vec![], vec![r(8, 8, 15, 15)], vec![r(20, 20, 27, 27)]],
        )
    }

    #[test]
    fn weights_sum_to_workload() {
        let h = hierarchy();
        for unit in [1, 2, 4, 8] {
            let g = composite_unit_weights(&h, unit);
            assert_eq!(g.total_weight(), h.workload(), "unit={unit}");
        }
    }

    #[test]
    fn refined_units_are_heavier() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 2);
        // Unit at base cells [4..5]^2 sits under the level-1 patch
        // ([8..15]^2 fine = [4..7]^2 base).
        let heavy = g.weight(2, 2);
        let light = g.weight(0, 0);
        assert_eq!(light, 4); // bare base cells
        assert!(heavy > light);
        // Unit under both level 1 and level 2: base cells [5..5]... level 2
        // box [20..27]^2 coarsens to base [5..6]^2.
        let heaviest = g.weight(2, 2).max(g.weight(3, 3));
        assert!(heaviest >= 4 + 2 * 16);
    }

    #[test]
    fn unit_rect_clips_at_domain_edge() {
        let h = GridHierarchy::base_only(Rect2::from_extents(10, 10), 2);
        let g = composite_unit_weights(&h, 4);
        assert_eq!(g.dims, (3, 3));
        assert_eq!(g.unit_rect(&h.base_domain, 2, 2), r(8, 8, 9, 9));
        assert_eq!(g.total_weight(), 100);
    }

    #[test]
    fn sfc_order_is_a_permutation() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 2);
        for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
            for full in [false, true] {
                let ord = sfc_order(&g, curve, full);
                assert_eq!(ord.len(), (g.dims.0 * g.dims.1) as usize);
                let mut seen = std::collections::HashSet::new();
                for &(ux, uy) in &ord {
                    assert!(seen.insert((ux, uy)));
                    assert!(ux < g.dims.0 && uy < g.dims.1);
                }
            }
        }
    }

    #[test]
    fn full_hilbert_order_has_unit_steps() {
        let h = GridHierarchy::base_only(Rect2::from_extents(16, 16), 2);
        let g = composite_unit_weights(&h, 2); // 8x8 units
        let ord = sfc_order(&g, SfcCurve::Hilbert, true);
        for w in ord.windows(2) {
            let d = (w[1].0 - w[0].0).abs() + (w[1].1 - w[0].1).abs();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn split_balances_uniform_weights() {
        let h = GridHierarchy::base_only(Rect2::from_extents(16, 16), 2);
        let g = composite_unit_weights(&h, 2);
        let ord = sfc_order(&g, SfcCurve::Morton, true);
        let owners = split_contiguous(&g, &ord, 4);
        let mut loads = [0u64; 4];
        for (i, &(ux, uy)) in ord.iter().enumerate() {
            loads[owners[i] as usize] += g.weight(ux, uy);
        }
        let max = *loads.iter().max().unwrap() as f64;
        let avg = loads.iter().sum::<u64>() as f64 / 4.0;
        assert!(max / avg < 1.05, "{loads:?}");
        // Owners are monotone along the curve (contiguous chunks).
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_single_proc_owns_all() {
        let h = hierarchy();
        let g = composite_unit_weights(&h, 4);
        let ord = sfc_order(&g, SfcCurve::Hilbert, false);
        let owners = split_contiguous(&g, &ord, 1);
        assert!(owners.iter().all(|&o| o == 0));
    }
}
