//! Hybrid partitioner: the Nature+Fable scheme (Hues + Cores +
//! bi-levels), generic over the dimension.
//!
//! Nature+Fable (§2.2 of the paper) "separates homogeneous, unrefined
//! (Hue) and complex, refined (Core) domains of the grid hierarchy and
//! clusters refinement levels into bi-levels". The Cores are separated
//! *strictly domain-based* (each Core owns a portion of the base grid and
//! everything refined above it); expert blocking algorithms distribute the
//! Hues; Cores get a coarse partitioning onto processor *groups* and their
//! bi-levels are then partitioned within each group. This module
//! reimplements that published structure:
//!
//! 1. the refined footprint of level 1 on the base grid is split into
//!    connected components — the **Cores**;
//! 2. the remaining base cells are the **Hue**;
//! 3. each Core is assigned a processor group sized by its share of the
//!    composite workload;
//! 4. within a group, each **bi-level** (levels `{0,1}`, `{2,3}`, `{4}`) is
//!    partitioned domain-based along an SFC over the Core footprint,
//!    weighted by that bi-level's own workload — different bi-levels may
//!    be cut differently (that is the hybrid concession: some inter-level
//!    communication between bi-levels in exchange for per-bi-level
//!    balance);
//! 5. Hue blocks are distributed greedily to top up processor loads.

use crate::types::{Fragment, Partition, PartitionScratch, Partitioner, ProcId};
use rayon::prelude::*;
use samr_geom::sfc::{order_for, sfc_key_nd, SfcCurve};
use samr_geom::{boxops, AABox, Point, Region};
use samr_grid::stats::component_labels;
use samr_grid::GridHierarchy;
use serde::{Deserialize, Serialize};

/// Configuration of the hybrid partitioner (the tunables Nature+Fable
/// exposes to the meta-partitioner).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// Atomic-unit side length in base cells.
    pub atomic_unit: i64,
    /// Space-filling curve for the per-bi-level Core splits.
    pub curve: SfcCurve,
    /// Fully ordered (`true`) or partially ordered (`false`) SFC. The
    /// paper's §5.2 notes the default partially ordered mapping as a
    /// suspected source of extra data migration.
    pub full_order: bool,
    /// Number of refinement levels clustered into one bi-level.
    pub bilevel_size: usize,
    /// Target number of Hue blocks per processor (expert-blocking
    /// granularity).
    pub hue_blocks_per_proc: usize,
    /// *Fractional blocking* (§4, "to focus on load balance in
    /// Nature+Fable we may choose a small atomic unit, select a large Q,
    /// choose fractional blocking and so forth"): when topping up
    /// processor loads with Hue blocks, split a block at the exact cell
    /// count that fills the processor's remaining deficit instead of
    /// assigning it whole. Tightens load balance at the cost of extra
    /// fragments.
    pub fractional_blocking: bool,
}

impl Default for HybridParams {
    fn default() -> Self {
        // The paper's "static neutral default" set-up.
        Self {
            atomic_unit: 2,
            curve: SfcCurve::Morton,
            full_order: false,
            bilevel_size: 2,
            hue_blocks_per_proc: 2,
            fractional_blocking: false,
        }
    }
}

/// The hybrid Hue/Core bi-level partitioner (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct HybridPartitioner {
    /// Tuning parameters.
    pub params: HybridParams,
}

/// One Core: a connected component of the refined base footprint.
struct Core<const D: usize> {
    /// Base-space footprint boxes (disjoint).
    footprint: Vec<AABox<D>>,
    /// Composite workload over the footprint (all levels).
    weight: u64,
    /// Processor group assigned to this core.
    group: Vec<ProcId>,
}

impl HybridPartitioner {
    /// Create with explicit parameters.
    pub fn new(params: HybridParams) -> Self {
        Self { params }
    }

    /// Identify the Cores of a hierarchy: connected components of the
    /// level-1 footprint on the base grid. Returns `(cores, hue_region)`.
    fn find_cores<const D: usize>(&self, h: &GridHierarchy<D>) -> (Vec<Core<D>>, Region<D>) {
        if h.levels.len() < 2 {
            return (Vec::new(), Region::from_rect(h.base_domain));
        }
        let footprint: Vec<AABox<D>> = boxops::disjointify(
            &h.levels[1]
                .rects()
                .iter()
                .map(|r| r.coarsen(h.ratio))
                .collect::<Vec<_>>(),
        );
        let labels = component_labels(&footprint);
        let ncores = labels.iter().max().map_or(0, |m| m + 1);
        let mut cores: Vec<Core<D>> = (0..ncores)
            .map(|_| Core {
                footprint: Vec::new(),
                weight: 0,
                group: Vec::new(),
            })
            .collect();
        for (b, &lab) in footprint.iter().zip(&labels) {
            cores[lab].footprint.push(*b);
        }
        // Composite weight of each core: base cells of the footprint plus
        // every refined cell above it, with time-refinement weighting.
        for core in &mut cores {
            core.weight = boxops::total_cells(&core.footprint);
            for (l, level) in h.levels.iter().enumerate().skip(1) {
                let scale = h.ratio.pow(l as u32);
                let w = (h.ratio as u64).pow(l as u32);
                for patch in &level.patches {
                    let fp = patch.rect.coarsen(scale);
                    // The patch belongs to this core iff its footprint
                    // intersects it (components are disjoint, nesting makes
                    // the containment total).
                    let inside: u64 = core.footprint.iter().map(|b| fp.overlap_cells(b)).sum();
                    if inside > 0 {
                        core.weight += patch.rect.cells() * w;
                    }
                }
            }
        }
        let hue = Region::from_rect(h.base_domain).subtract_boxes(&footprint);
        (cores, hue)
    }

    /// Allocate processor groups to cores proportionally to their weight.
    fn assign_groups<const D: usize>(cores: &mut [Core<D>], nprocs: usize) {
        if cores.is_empty() {
            return;
        }
        let total: u64 = cores.iter().map(|c| c.weight).sum::<u64>().max(1);
        // Initial proportional share, at least one processor each.
        let mut sizes: Vec<usize> = cores
            .iter()
            .map(|c| ((nprocs as f64 * c.weight as f64 / total as f64).round() as usize).max(1))
            .collect();
        // Trim over-allocation from the smallest cores first.
        let mut sum: usize = sizes.iter().sum();
        while sum > nprocs {
            // Shrink the core with the largest size > 1 (deterministic).
            if let Some(i) = (0..sizes.len())
                .filter(|&i| sizes[i] > 1)
                .max_by_key(|&i| (sizes[i], i))
            {
                sizes[i] -= 1;
                sum -= 1;
            } else {
                break; // more cores than processors: groups will share
            }
        }
        // Distribute leftover processors to the heaviest cores.
        let mut order: Vec<usize> = (0..cores.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse((cores[i].weight, i)));
        let mut idx = 0;
        while sum < nprocs {
            sizes[order[idx % order.len()]] += 1;
            sum += 1;
            idx += 1;
        }
        // Hand out consecutive ranks (wrapping when cores > nprocs).
        let mut next: usize = 0;
        for (i, core) in cores.iter_mut().enumerate() {
            let take = sizes[i];
            core.group = (0..take).map(|k| ((next + k) % nprocs) as ProcId).collect();
            next += take;
        }
    }

    /// Dice a core footprint into SFC-ordered atomic-unit pieces weighted
    /// by the level range `lo..hi`. Fills the flat `pieces` arena and one
    /// `(sfc key, piece start, piece count, weight)` record per occupied
    /// unit into `units` (sorted by key) — no per-unit heap allocation,
    /// and both arenas are reused across bi-levels and snapshots.
    fn bilevel_units_with<const D: usize>(
        &self,
        h: &GridHierarchy<D>,
        footprint: &[AABox<D>],
        (level_lo, level_hi): (usize, usize),
        pieces: &mut Vec<AABox<D>>,
        units: &mut Vec<(u64, u32, u32, u64)>,
    ) {
        pieces.clear();
        units.clear();
        let unit = self.params.atomic_unit;
        let domain = h.base_domain;
        let dims: [i64; D] = std::array::from_fn(|i| (domain.extent()[i] + unit - 1) / unit);
        let order = order_for(dims.iter().copied().max().unwrap_or(1) as u64);
        for u in AABox::<D>::from_extent_array(dims).iter_cells() {
            let lo = Point::<D>::from_fn(|i| domain.lo()[i] + u[i] * unit);
            let hi = Point::<D>::from_fn(|i| (lo[i] + unit - 1).min(domain.hi()[i]));
            let unit_box = AABox::new(lo, hi);
            let start = pieces.len() as u32;
            for b in footprint {
                if let Some(p) = b.intersect(&unit_box) {
                    pieces.push(p);
                }
            }
            let count = pieces.len() as u32 - start;
            if count == 0 {
                continue;
            }
            let mut weight = 0u64;
            for l in level_lo..level_hi.min(h.levels.len()) {
                let scale = h.ratio.pow(l as u32);
                let w = (h.ratio as u64).pow(l as u32);
                for piece in &pieces[start as usize..] {
                    let fine = piece.refine(scale);
                    for patch in &h.levels[l].patches {
                        weight += patch.rect.overlap_cells(&fine) * w;
                    }
                }
            }
            let coords: [u64; D] = std::array::from_fn(|i| u[i] as u64);
            let key = sfc_key_nd::<D>(self.params.curve, order, coords);
            let eff_key = if self.params.full_order || order <= 4 {
                key
            } else {
                key >> (D as u32 * (order - 4))
            };
            units.push((eff_key, start, count, weight));
        }
        units.sort_by_key(|&(k, ..)| k);
    }

    /// Split SFC-ordered units into `group.len()` contiguous chunks by
    /// weight; fills `owners` with the owner of each unit.
    fn split_units(units: &[(u64, u32, u32, u64)], group: &[ProcId], owners: &mut Vec<ProcId>) {
        owners.clear();
        owners.reserve(units.len());
        let total: u64 = units.iter().map(|&(.., w)| w).sum();
        let total = total.max(1) as f64;
        let n = group.len().max(1);
        let mut acc = 0.0;
        let mut g = 0usize;
        for &(.., w) in units {
            let w = w as f64;
            while g + 1 < n && acc + 0.5 * w > total * (g + 1) as f64 / n as f64 {
                g += 1;
            }
            owners.push(group[g]);
            acc += w;
        }
    }

    /// Expert blocking of the Hue: split each Hue box into roughly cubic
    /// blocks targeting `hue_blocks_per_proc x nprocs` blocks overall.
    fn block_hue<const D: usize>(&self, hue: &Region<D>, nprocs: usize) -> Vec<AABox<D>> {
        let cells = hue.cells();
        if cells == 0 {
            return Vec::new();
        }
        let target_blocks = (self.params.hue_blocks_per_proc * nprocs).max(1) as u64;
        let target_cells = (cells / target_blocks).max(1);
        let mut blocks = Vec::new();
        let mut queue: Vec<AABox<D>> = hue.boxes().to_vec();
        while let Some(b) = queue.pop() {
            if b.cells() <= target_cells || b.bisect().is_none() {
                blocks.push(b);
            } else {
                let (l, r) = b.bisect().unwrap();
                queue.push(l);
                queue.push(r);
            }
        }
        blocks.sort_by(|a, b| a.cmp_spatial(b));
        blocks
    }
}

/// Coalesce one level's fragments per owner, bucketing by owner in a
/// single pass over the list (`buckets` is the reusable per-processor
/// arena) — the same output, in the same order, as the historical
/// `nprocs` x filter-scan compaction.
fn compact_level<const D: usize>(
    frags: &[Fragment<D>],
    nprocs: usize,
    buckets: &mut Vec<Vec<AABox<D>>>,
) -> Vec<Fragment<D>> {
    PartitionScratch::reset_buckets(buckets, nprocs);
    for f in frags {
        buckets[f.owner as usize].push(f.rect);
    }
    let mut merged = Vec::with_capacity(frags.len());
    for (proc, bucket) in buckets.iter_mut().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        boxops::coalesce_in_place(bucket);
        for &rect in bucket.iter() {
            merged.push(Fragment {
                rect,
                owner: proc as ProcId,
            });
        }
    }
    merged
}

impl<const D: usize> Partitioner<D> for HybridPartitioner {
    fn name(&self) -> String {
        format!(
            "hybrid-nf({:?},{},u{},bi{})",
            self.params.curve,
            if self.params.full_order {
                "full"
            } else {
                "partial"
            },
            self.params.atomic_unit,
            self.params.bilevel_size
        )
    }

    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        self.partition_with(h, nprocs, &mut PartitionScratch::default())
    }

    fn partition_with(
        &self,
        h: &GridHierarchy<D>,
        nprocs: usize,
        scratch: &mut PartitionScratch<D>,
    ) -> Partition<D> {
        assert!(nprocs >= 1);
        let (mut cores, hue) = self.find_cores(h);
        Self::assign_groups(&mut cores, nprocs);
        let mut part = Partition::new(nprocs, h.levels.len());
        let mut loads = vec![0u64; nprocs];

        // --- Cores: per bi-level domain-based split within the group.
        let bl = self.params.bilevel_size.max(1);
        for core in &cores {
            let mut b = 0usize;
            while b * bl < h.levels.len() {
                let bounds = (b * bl, ((b + 1) * bl).min(h.levels.len()));
                self.bilevel_units_with(
                    h,
                    &core.footprint,
                    bounds,
                    &mut scratch.pieces,
                    &mut scratch.units,
                );
                if scratch.units.is_empty() {
                    b += 1;
                    continue;
                }
                Self::split_units(&scratch.units, &core.group, &mut scratch.owners);
                for l in bounds.0..bounds.1 {
                    let scale = h.ratio.pow(l as u32);
                    let w = (h.ratio as u64).pow(l as u32);
                    for (&(_, start, count, _), owner) in scratch.units.iter().zip(&scratch.owners)
                    {
                        for piece in &scratch.pieces[start as usize..(start + count) as usize] {
                            let fine = piece.refine(scale);
                            for patch in &h.levels[l].patches {
                                if let Some(frag) = patch.rect.intersect(&fine) {
                                    part.levels[l].fragments.push(Fragment {
                                        rect: frag,
                                        owner: *owner,
                                    });
                                    loads[*owner as usize] += frag.cells() * w;
                                }
                            }
                        }
                    }
                }
                b += 1;
            }
        }

        // --- Hue: expert blocking + greedy top-up of processor loads.
        let blocks = self.block_hue(&hue, nprocs);
        let total_work: u64 = loads.iter().sum::<u64>() + hue.cells();
        let ideal = total_work as f64 / nprocs as f64;
        let mut queue: Vec<AABox<D>> = blocks;
        queue.reverse(); // pop from the front of the sorted order
        while let Some(rect) = queue.pop() {
            let owner = loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &w)| (w, i))
                .map(|(i, _)| i as ProcId)
                .unwrap();
            if self.params.fractional_blocking {
                // Split the block at the exact deficit of the least
                // loaded processor, when both halves stay non-trivial.
                let deficit = (ideal - loads[owner as usize] as f64).max(0.0) as u64;
                if deficit > 0 && rect.cells() > deficit {
                    let axis = rect.longest_axis();
                    let want_len = ((deficit as f64 / rect.cells() as f64) * rect.len(axis) as f64)
                        .round() as i64;
                    if want_len >= 1 && want_len < rect.len(axis) {
                        let cut = rect.lo().get(axis) + want_len - 1;
                        let (take, rest) = rect.split_at(axis, cut);
                        loads[owner as usize] += take.cells();
                        part.levels[0]
                            .fragments
                            .push(Fragment { rect: take, owner });
                        queue.push(rest);
                        continue;
                    }
                }
            }
            loads[owner as usize] += rect.cells();
            part.levels[0].fragments.push(Fragment { rect, owner });
        }

        // Compact per-owner fragment lists. Levels are independent here:
        // on the outer pool compact them rayon-parallel (inside a
        // streaming-window worker `current_num_threads()` reports 1, so
        // the sequential scratch-arena path runs — no oversubscription).
        if rayon::current_num_threads() > 1 && part.levels.len() > 1 {
            let compacted: Vec<Vec<Fragment<D>>> = part
                .levels
                .par_iter()
                .map(|lp| compact_level(&lp.fragments, nprocs, &mut Vec::new()))
                .collect();
            for (lp, frags) in part.levels.iter_mut().zip(compacted) {
                lp.fragments = frags;
            }
        } else {
            for lp in &mut part.levels {
                lp.fragments = compact_level(&lp.fragments, nprocs, &mut scratch.owner_rects);
            }
        }
        part
    }

    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        // Two-step scheme: core identification + per-bi-level SFC splits +
        // hue blocking. The most expensive of the three families.
        let units = (h.base_domain.cells() / (self.params.atomic_unit as u64).pow(D as u32)) as f64;
        let patches: usize = h.levels.iter().map(|l| l.patch_count()).sum();
        let bilevels = h.levels.len().div_ceil(self.params.bilevel_size.max(1)) as f64;
        bilevels * units.max(1.0).log2() * units / 800.0 + patches as f64 / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::validate_partition;
    use samr_geom::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    /// Two separated refined islands over a 32x32 base, three levels.
    fn hierarchy() -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(
            Rect2::from_extents(32, 32),
            2,
            &[
                vec![],
                vec![r(4, 4, 19, 19), r(44, 44, 59, 59)],
                vec![r(12, 12, 31, 31)],
            ],
        )
    }

    #[test]
    fn produces_valid_partitions() {
        let h = hierarchy();
        for nprocs in [1, 2, 4, 8, 16] {
            let part = HybridPartitioner::default().partition(&h, nprocs);
            assert_eq!(validate_partition(&h, &part), Ok(()), "nprocs={nprocs}");
        }
    }

    #[test]
    fn produces_valid_partitions_3d() {
        // Two refined islands in a 16^3 base with a deeper level on one.
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(16, 16, 16),
            2,
            &[
                vec![],
                vec![
                    Box3::from_coords(2, 2, 2, 9, 9, 9),
                    Box3::from_coords(22, 22, 22, 29, 29, 29),
                ],
                vec![Box3::from_coords(6, 6, 6, 17, 17, 17)],
            ],
        );
        for nprocs in [1, 2, 5, 8] {
            let part = HybridPartitioner::default().partition(&h, nprocs);
            assert_eq!(validate_partition(&h, &part), Ok(()), "nprocs={nprocs}");
        }
    }

    #[test]
    fn base_only_hierarchy_is_pure_hue() {
        let h = GridHierarchy::base_only(Rect2::from_extents(32, 32), 2);
        let part = HybridPartitioner::default().partition(&h, 4);
        assert_eq!(validate_partition(&h, &part), Ok(()));
        assert!(part.load_imbalance(2) < 1.3, "{}", part.load_imbalance(2));
    }

    #[test]
    fn cores_are_identified_correctly() {
        let h = hierarchy();
        let p = HybridPartitioner::default();
        let (cores, hue) = p.find_cores(&h);
        assert_eq!(cores.len(), 2);
        // Footprints: [2..9]^2 and [22..29]^2 on the base; hue is the
        // rest.
        let total_fp: u64 = cores
            .iter()
            .map(|c| boxops::total_cells(&c.footprint))
            .sum();
        assert_eq!(total_fp, 64 + 64);
        assert_eq!(hue.cells(), 1024 - 128);
        // The core under the level-2 patch is heavier.
        let w0 = &cores[0];
        let w1 = &cores[1];
        assert_ne!(w0.weight, w1.weight);
    }

    #[test]
    fn group_sizes_track_weights() {
        let h = hierarchy();
        let p = HybridPartitioner::default();
        let (mut cores, _) = p.find_cores(&h);
        HybridPartitioner::assign_groups(&mut cores, 8);
        let total: usize = cores.iter().map(|c| c.group.len()).sum();
        assert_eq!(total, 8);
        // Heavier core gets the bigger group.
        let (heavy, light) = if cores[0].weight > cores[1].weight {
            (&cores[0], &cores[1])
        } else {
            (&cores[1], &cores[0])
        };
        assert!(heavy.group.len() >= light.group.len());
        // All ranks distinct when nprocs >= sum of groups.
        let mut all: Vec<ProcId> = cores.iter().flat_map(|c| c.group.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn more_cores_than_procs_share_ranks() {
        // Six tiny cores, 2 processors.
        let rects: Vec<Rect2> = (0..6)
            .map(|i| {
                let o = i * 10;
                r(o * 2, 0, o * 2 + 3, 3)
            })
            .collect();
        let h = GridHierarchy::from_level_rects(Rect2::from_extents(64, 32), 2, &[vec![], rects]);
        let part = HybridPartitioner::default().partition(&h, 2);
        assert_eq!(validate_partition(&h, &part), Ok(()));
    }

    #[test]
    fn hue_blocks_top_up_loads() {
        let h = hierarchy();
        let part = HybridPartitioner::default().partition(&h, 4);
        // Overall balance should be decent: hue top-up compensates the
        // heavy core groups.
        let imb = part.load_imbalance(2);
        assert!(imb < 1.8, "imbalance {imb}");
    }

    #[test]
    fn deterministic() {
        let h = hierarchy();
        let a = HybridPartitioner::default().partition(&h, 5);
        let b = HybridPartitioner::default().partition(&h, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh() {
        // The PartitionScratch contract across dirty scratch state and
        // changing snapshots/processor counts.
        let p = HybridPartitioner::default();
        let mut scratch = PartitionScratch::default();
        let hierarchies = [
            hierarchy(),
            GridHierarchy::base_only(Rect2::from_extents(64, 64), 2),
            hierarchy(),
        ];
        for h in &hierarchies {
            for nprocs in [1, 4, 16, 3] {
                let fresh = p.partition(h, nprocs);
                let reused = p.partition_with(h, nprocs, &mut scratch);
                assert_eq!(fresh, reused, "nprocs={nprocs}");
            }
        }
    }

    #[test]
    fn fractional_blocking_tightens_balance() {
        let h = hierarchy();
        let plain = HybridPartitioner::default().partition(&h, 8);
        let frac = HybridPartitioner::new(HybridParams {
            fractional_blocking: true,
            ..HybridParams::default()
        })
        .partition(&h, 8);
        assert_eq!(validate_partition(&h, &frac), Ok(()));
        assert!(
            frac.load_imbalance(2) <= plain.load_imbalance(2) + 1e-12,
            "fractional {} vs plain {}",
            frac.load_imbalance(2),
            plain.load_imbalance(2)
        );
        // Fractional splitting may produce extra fragments — that is the
        // advertised trade-off.
        assert!(frac.fragment_count() >= plain.fragment_count());
    }

    #[test]
    fn fractional_blocking_valid_across_proc_counts() {
        let h = hierarchy();
        for nprocs in [2, 5, 16] {
            let p = HybridPartitioner::new(HybridParams {
                fractional_blocking: true,
                ..HybridParams::default()
            });
            let part = p.partition(&h, nprocs);
            assert_eq!(validate_partition(&h, &part), Ok(()), "nprocs={nprocs}");
        }
    }

    #[test]
    fn bilevel_one_behaves_like_per_level_domain_split() {
        let h = hierarchy();
        let p = HybridPartitioner::new(HybridParams {
            bilevel_size: 1,
            ..HybridParams::default()
        });
        let part = p.partition(&h, 4);
        assert_eq!(validate_partition(&h, &part), Ok(()));
    }

    #[test]
    fn cost_estimate_is_highest_of_families() {
        let h = hierarchy();
        let hybrid = HybridPartitioner::default();
        let sfc = crate::sfc_part::DomainSfcPartitioner::default();
        assert!(
            Partitioner::<2>::cost_estimate(&hybrid, &h)
                > Partitioner::<2>::cost_estimate(&sfc, &h)
        );
    }
}
