//! Property-based tests: every partitioner family must emit valid
//! partitions (disjoint owner-tagged fragments exactly tiling the
//! patches, workload conserved) on randomly shaped hierarchies and at
//! arbitrary processor counts.

use proptest::prelude::*;
use samr_geom::sfc::SfcCurve;
use samr_geom::{Point2, Rect2};
use samr_grid::GridHierarchy;
use samr_partition::patch_part::PatchAssign;
use samr_partition::{
    validate_partition, DomainSfcParams, DomainSfcPartitioner, HybridParams, HybridPartitioner,
    Partitioner, PatchParams, PatchPartitioner,
};

/// A random 1-3 level properly nested hierarchy on a rectangular base.
fn arb_hierarchy() -> impl Strategy<Value = GridHierarchy<2>> {
    let base = (16i64..48, 16i64..48);
    let blobs = prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.1f64..0.4), 1..4);
    (base, blobs, any::<bool>()).prop_map(|((bx, by), blobs, deep)| {
        // Place disjoint blobs in base space, then refine.
        let mut placed: Vec<Rect2> = Vec::new();
        for (fx, fy, fs) in blobs {
            let w = ((bx as f64 * fs) as i64).clamp(2, bx - 2);
            let h = ((by as f64 * fs) as i64).clamp(2, by - 2);
            let x = ((bx as f64 - w as f64) * fx) as i64;
            let y = ((by as f64 - h as f64) * fy) as i64;
            let cand = Rect2::new(Point2::new(x, y), Point2::new(x + w - 1, y + h - 1));
            if placed.iter().all(|p| !p.intersects(&cand)) {
                placed.push(cand);
            }
        }
        let l1: Vec<Rect2> = placed.iter().map(|b| b.refine(2)).collect();
        let mut levels = vec![vec![], l1.clone()];
        if deep && !l1.is_empty() {
            if let Some(inner) = l1[0].shrink(2) {
                if inner.extent().x >= 2 && inner.extent().y >= 2 {
                    levels.push(vec![inner.refine(2)]);
                }
            }
        }
        GridHierarchy::from_level_rects(Rect2::from_extents(bx, by), 2, &levels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn domain_sfc_all_configs_valid(
        h in arb_hierarchy(),
        nprocs in 1usize..20,
        unit in 1i64..5,
        full in any::<bool>(),
        hilbert in any::<bool>(),
    ) {
        let p = DomainSfcPartitioner::new(DomainSfcParams {
            atomic_unit: unit,
            curve: if hilbert { SfcCurve::Hilbert } else { SfcCurve::Morton },
            full_order: full,
        });
        let part = p.partition(&h, nprocs);
        prop_assert_eq!(validate_partition(&h, &part), Ok(()));
        prop_assert_eq!(part.loads(2).iter().sum::<u64>(), h.workload());
    }

    #[test]
    fn patch_both_assignments_valid(
        h in arb_hierarchy(),
        nprocs in 1usize..20,
        split in 0.5f64..4.0,
        lpt in any::<bool>(),
    ) {
        let p = PatchPartitioner::new(PatchParams {
            split_factor: split,
            min_block: 2,
            assign: if lpt { PatchAssign::Lpt } else { PatchAssign::SfcChunk },
        });
        let part = p.partition(&h, nprocs);
        prop_assert_eq!(validate_partition(&h, &part), Ok(()));
        prop_assert_eq!(part.loads(2).iter().sum::<u64>(), h.workload());
    }

    #[test]
    fn hybrid_all_configs_valid(
        h in arb_hierarchy(),
        nprocs in 1usize..20,
        bilevel in 1usize..4,
        fractional in any::<bool>(),
        full in any::<bool>(),
    ) {
        let p = HybridPartitioner::new(HybridParams {
            atomic_unit: 2,
            curve: SfcCurve::Morton,
            full_order: full,
            bilevel_size: bilevel,
            hue_blocks_per_proc: 2,
            fractional_blocking: fractional,
        });
        let part = p.partition(&h, nprocs);
        prop_assert_eq!(validate_partition(&h, &part), Ok(()));
        prop_assert_eq!(part.loads(2).iter().sum::<u64>(), h.workload());
    }

    #[test]
    fn partitioning_is_deterministic(h in arb_hierarchy(), nprocs in 1usize..16) {
        let p = HybridPartitioner::default();
        prop_assert_eq!(p.partition(&h, nprocs), p.partition(&h, nprocs));
        let q = DomainSfcPartitioner::default();
        prop_assert_eq!(q.partition(&h, nprocs), q.partition(&h, nprocs));
    }

    #[test]
    fn imbalance_no_worse_than_proc_count(h in arb_hierarchy(), nprocs in 1usize..16) {
        // max/avg can never exceed nprocs (all load on one processor).
        for part in [
            DomainSfcPartitioner::default().partition(&h, nprocs),
            PatchPartitioner::default().partition(&h, nprocs),
            HybridPartitioner::default().partition(&h, nprocs),
        ] {
            let imb = part.load_imbalance(2);
            prop_assert!(imb <= nprocs as f64 + 1e-9);
            prop_assert!(imb >= 1.0 - 1e-9);
        }
    }
}
