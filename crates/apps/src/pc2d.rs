//! PC2D: a synthetic two-regime "phase change" workload.
//!
//! The paper's four kernels adapt gradually, so a partitioner chosen up
//! front stays adequate for the whole run. PC2D is the adversarial
//! complement built for the adaptive repartitioning policy
//! (`samr_meta::AdaptivePolicy`): the character of the workload flips
//! mid-run.
//!
//! - **Spread regime** (first half): a broad plateau covering most of
//!   the domain refines exactly one level. The load is spatially smooth,
//!   so a domain-based SFC cut balances it with minimal communication —
//!   the regime where local partitioners win.
//! - **Singular regime** (second half): the plateau collapses into a
//!   point feature in the domain corner whose indicator exceeds every
//!   level threshold, producing a deeply nested subtree over a couple of
//!   base cells. Any domain-based cut must hand that whole subtree to
//!   one processor (a single coarse cell's column cannot be split), so
//!   load imbalance jumps; only per-level (patch-based) balancing can
//!   spread the fine levels.
//!
//! The flip makes every *static* assignment wrong for half the run:
//! domain-based loses the second half, patch-based pays communication
//! and migration for the first. A policy that switches partitioners when
//! the observed imbalance crosses its hysteresis thresholds beats both —
//! which is exactly what the `adaptive` bench suite measures.
//!
//! The kernel is analytic (no reference PDE): the indicator is a pure
//! function of the step counter, evaluated exactly at every sample point
//! so the regime boundary never blurs through bilinear resampling.

use crate::kernel::{geometric_threshold, Kernel};
use crate::numerics;
use samr_geom::Grid2;

/// Indicator value on the spread-regime plateau: above the level-0
/// threshold, below every deeper one — one level of refinement.
const SPREAD_VALUE: f64 = 0.4;
/// Indicator value inside the singularity: above every level threshold,
/// so the corner refines to the configured depth.
const SINGULAR_VALUE: f64 = 0.96;
/// Half-width of the corner singularity in unit coordinates (two base
/// cells of a 32-cell grid).
const SINGULAR_SIDE: f64 = 0.0625;
/// Smallest spread-plateau side length in unit coordinates.
const SPREAD_SIDE: f64 = 0.75;
/// Per-step wobble of the plateau side, so the spread regime carries a
/// migration signal instead of freezing the hierarchy.
const SPREAD_WOBBLE: f64 = 0.03;

/// Two-regime phase-change kernel (see module docs).
pub struct Pc2d {
    indicator: Grid2<f64>,
    n: i64,
    steps: u32,
    step: u32,
    /// Seed-derived phase offset of the spread-regime wobble.
    phase: u32,
}

impl Pc2d {
    /// Create the kernel on an `n x n` reference grid for a `steps`-step
    /// run; `seed` shifts the phase of the spread-regime wobble.
    pub fn new(n: i64, steps: u32, seed: u64) -> Self {
        assert!(n >= 8 && steps >= 1);
        let mut k = Self {
            indicator: numerics::zeros(n, n),
            n,
            steps,
            step: 0,
            phase: (seed % 4) as u32,
        };
        k.refresh_indicator();
        k
    }

    /// The step at which the workload flips from spread to singular.
    fn flip_step(&self) -> u32 {
        self.steps / 2
    }

    /// The exact analytic indicator at unit coordinates for the current
    /// step — the regrid pipeline samples this directly.
    fn indicator_at(&self, u: f64, v: f64) -> f64 {
        indicator_for(self.step, self.flip_step(), self.phase, u, v)
    }

    fn refresh_indicator(&mut self) {
        let (step, flip, phase) = (self.step, self.flip_step(), self.phase);
        let dx = 1.0 / self.n as f64;
        numerics::par_rows(&mut self.indicator, move |x, y| {
            indicator_for(
                step,
                flip,
                phase,
                (x as f64 + 0.5) * dx,
                (y as f64 + 0.5) * dx,
            )
        });
    }
}

/// The indicator as a pure function of the step counter: a wobbling
/// plateau before the flip, a saturated corner square after it.
fn indicator_for(step: u32, flip: u32, phase: u32, u: f64, v: f64) -> f64 {
    if step < flip {
        let side = SPREAD_SIDE + SPREAD_WOBBLE * f64::from((step + phase) % 4);
        if u < side && v < side {
            SPREAD_VALUE
        } else {
            0.0
        }
    } else if u < SINGULAR_SIDE && v < SINGULAR_SIDE {
        SINGULAR_VALUE
    } else {
        0.0
    }
}

impl Kernel for Pc2d {
    fn name(&self) -> &'static str {
        "PC2D"
    }

    fn description(&self) -> String {
        format!(
            "synthetic phase change: spread plateau collapsing to a corner point singularity at step {}, {}x{} reference grid",
            self.flip_step(),
            self.n,
            self.n
        )
    }

    fn advance_coarse_step(&mut self) {
        self.step += 1;
        self.refresh_indicator();
    }

    fn time(&self) -> f64 {
        f64::from(self.step)
    }

    fn indicator_field(&self) -> &Grid2<f64> {
        &self.indicator
    }

    fn indicator(&self, u: f64, v: f64) -> f64 {
        // Exact analytic sampling: a bilinear blend across the regime
        // edge would smear the singularity over neighbouring cells.
        self.indicator_at(u, v)
    }

    fn threshold(&self, level: usize) -> f64 {
        geometric_threshold(0.3, 1.6, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_flip_at_half_run() {
        let mut k = Pc2d::new(48, 10, 0);
        // Spread: plateau on, corner at plateau value only.
        assert_eq!(k.indicator(0.3, 0.3), SPREAD_VALUE);
        assert_eq!(k.indicator(0.01, 0.01), SPREAD_VALUE);
        assert_eq!(k.indicator(0.95, 0.95), 0.0);
        for _ in 0..5 {
            k.advance_coarse_step();
        }
        // Singular: plateau gone, corner saturated.
        assert_eq!(k.indicator(0.3, 0.3), 0.0);
        assert_eq!(k.indicator(0.01, 0.01), SINGULAR_VALUE);
    }

    #[test]
    fn singularity_crosses_every_threshold_the_plateau_does_not() {
        let k = Pc2d::new(48, 4, 0);
        for level in 0..5 {
            assert!(SINGULAR_VALUE > k.threshold(level), "level {level}");
            if level >= 1 {
                assert!(SPREAD_VALUE < k.threshold(level), "level {level}");
            }
        }
        assert!(SPREAD_VALUE > k.threshold(0));
    }

    #[test]
    fn field_matches_the_analytic_indicator_at_cell_centers() {
        let k = Pc2d::new(48, 10, 3);
        let dx = 1.0 / 48.0;
        for (x, y) in [(0i64, 0i64), (10, 10), (40, 40), (2, 45)] {
            let u = (x as f64 + 0.5) * dx;
            let v = (y as f64 + 0.5) * dx;
            assert_eq!(
                *k.indicator_field().get(samr_geom::Point2::new(x, y)),
                k.indicator(u, v)
            );
        }
    }
}
