//! # samr-apps — the paper's four SAMR application kernels
//!
//! §5.1.1 of the paper evaluates the model on four "real-world" SAMR
//! application kernels: a 2-D transport benchmark (TP2D, from the GrACE
//! distribution), the Buckley–Leverett oil–water flow model (BL2D, from
//! IPARS), a scalar wave / numerical relativity kernel (SC2D, from
//! Cactus), and a Richtmyer–Meshkov compressible-turbulence instability
//! (RM2D, from the Caltech VTF). The originals are not available, so this
//! crate implements each kernel *as a real 2-D PDE solver* of the same
//! equation family (see `DESIGN.md` §2 for the substitution argument):
//!
//! - [`tp2d`]: linear transport under a differentially rotating velocity
//!   field (first-order upwind) — quasi-periodic, "seemingly random"
//!   adaptation dynamics;
//! - [`bl2d`]: Buckley–Leverett two-phase flow with a pulsed corner
//!   injector (Godunov upwinding of the convex fractional-flow function) —
//!   an expanding saturation front with strongly oscillatory refinement;
//! - [`sc2d`]: the scalar wave equation (leapfrog) — an expanding,
//!   reflecting, refocusing wave ring with oscillatory refinement;
//! - [`rm2d`]: the compressible Euler equations (Rusanov flux) with a
//!   shock-accelerated perturbed density interface — the fingering
//!   Richtmyer–Meshkov instability with turbulent, random-looking
//!   adaptation.
//!
//! Beyond the paper's four, [`pc2d`] is a *synthetic* two-regime
//! phase-change workload (a spread plateau that collapses into a deeply
//! nested corner singularity mid-run) built to exercise the adaptive
//! repartitioning policy, where no single static partitioner choice is
//! right for the whole run.
//!
//! Each kernel advances a uniform *reference* solution and exposes a
//! normalized feature indicator; [`tracegen`] samples the indicator at
//! every level's resolution, flags, buffers, clusters (Berger–Rigoutsos)
//! and properly nests patches, producing the trace that both the model and
//! the execution simulator consume — the exact §5.1 set-up: 5 levels of
//! factor-2 space/time refinement, regridding every 4 steps per level,
//! granularity 2, 100 coarse steps.

#![warn(missing_docs)]

pub mod bl2d;
pub mod kernel;
pub mod numerics;
pub mod pc2d;
pub mod rm2d;
pub mod sc2d;
pub mod sp3d;
pub mod tp2d;
pub mod tracegen;

pub use kernel::Kernel;
pub use samr_trace::{AnyTrace, HierarchyTrace};
pub use sp3d::Sp3d;
pub use tracegen::{
    generate_trace, generate_trace_3d, generate_trace_any, trace_source, trace_source_3d,
    trace_source_any, AppKind, AppSource, TraceGenConfig,
};
