//! TP2D: the 2-D transport benchmark kernel.
//!
//! The paper's TP2D is "a simple benchmark kernel that solves the
//! transport equation in 2D and is part of the GrACE distribution". We
//! solve `u_t + a·∇u = 0` on the unit square with a *differentially*
//! rotating velocity field `a = ω(r)(−(y−½), (x−½))`,
//! `ω(r) = ω₀/(r₀ + r)`: two Gaussian tracers seeded at different radii
//! revolve at different angular rates and shear into spiral filaments, so
//! the refinement pattern never repeats — reproducing the "seemingly
//! random data migration and communication dynamics" the paper reports
//! for TP2D (§5.2, Figure 7).
//!
//! Discretization: first-order upwind (donor cell) on the advective form,
//! which obeys a discrete maximum principle under the CFL condition used
//! here.

use crate::kernel::{geometric_threshold, Kernel};
use crate::numerics::{self, clamped};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use samr_geom::Grid2;

/// Differentially-rotating transport kernel (see module docs).
pub struct Tp2d {
    u: Grid2<f64>,
    u_next: Grid2<f64>,
    vx: Grid2<f64>,
    vy: Grid2<f64>,
    indicator: Grid2<f64>,
    scratch: Grid2<f64>,
    n: i64,
    dt: f64,
    substeps: u32,
    time: f64,
}

/// Angular-velocity scale ω₀ (also the maximum linear speed bound).
const OMEGA0: f64 = 1.0;
/// Softening radius of the differential rotation profile.
const R0: f64 = 0.15;
/// Total simulated time when run for `steps` coarse steps.
const T_FINAL: f64 = 8.0;
/// CFL number of the upwind scheme (`|vx|+|vy|` bound keeps it < 1).
const CFL: f64 = 0.4;

impl Tp2d {
    /// Create the kernel on an `n x n` reference grid, sized for `steps`
    /// coarse steps. `seed` randomizes the initial tracer phases.
    pub fn new(n: i64, steps: u32, seed: u64) -> Self {
        assert!(n >= 8 && steps >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7097_2d00);
        let phase1: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let phase2: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let dx = 1.0 / n as f64;

        // Two tracers at different radii of the differential rotation.
        let blob = |u: f64, v: f64, cx: f64, cy: f64, sigma: f64| -> f64 {
            let d2 = (u - cx).powi(2) + (v - cy).powi(2);
            (-d2 / (sigma * sigma)).exp()
        };
        let (r1, r2) = (0.18, 0.33);
        let c1 = (0.5 + r1 * phase1.cos(), 0.5 + r1 * phase1.sin());
        let c2 = (0.5 + r2 * phase2.cos(), 0.5 + r2 * phase2.sin());

        let mut u_field = numerics::zeros(n, n);
        numerics::par_rows(&mut u_field, |x, y| {
            let ux = (x as f64 + 0.5) * dx;
            let uy = (y as f64 + 0.5) * dx;
            blob(ux, uy, c1.0, c1.1, 0.045) + 0.8 * blob(ux, uy, c2.0, c2.1, 0.05)
        });

        // Velocity field, cell-centered, precomputed (time-independent).
        let mut vx = numerics::zeros(n, n);
        let mut vy = numerics::zeros(n, n);
        numerics::par_rows(&mut vx, |x, y| {
            let (ux, uy) = ((x as f64 + 0.5) * dx - 0.5, (y as f64 + 0.5) * dx - 0.5);
            let r = (ux * ux + uy * uy).sqrt();
            -OMEGA0 / (R0 + r) * uy
        });
        numerics::par_rows(&mut vy, |x, y| {
            let (ux, uy) = ((x as f64 + 0.5) * dx - 0.5, (y as f64 + 0.5) * dx - 0.5);
            let r = (ux * ux + uy * uy).sqrt();
            OMEGA0 / (R0 + r) * ux
        });

        // |v| <= OMEGA0 * r/(R0+r) < OMEGA0, so a fixed dt is CFL-safe.
        let coarse_dt = T_FINAL / steps as f64;
        let dt_max = CFL * dx / (2.0 * OMEGA0);
        let substeps = (coarse_dt / dt_max).ceil().max(1.0) as u32;
        let dt = coarse_dt / substeps as f64;

        let mut k = Self {
            u_next: u_field.clone(),
            scratch: u_field.clone(),
            indicator: numerics::zeros(n, n),
            u: u_field,
            vx,
            vy,
            n,
            dt,
            substeps,
            time: 0.0,
        };
        k.refresh_indicator();
        k
    }

    fn refresh_indicator(&mut self) {
        numerics::gradient_magnitude(&self.u, &mut self.scratch);
        std::mem::swap(&mut self.indicator, &mut self.scratch);
        numerics::normalize_max(&mut self.indicator);
    }

    /// Solution field (for tests and demos).
    pub fn solution(&self) -> &Grid2<f64> {
        &self.u
    }

    /// Substeps taken per coarse step.
    pub fn substeps(&self) -> u32 {
        self.substeps
    }
}

impl Kernel for Tp2d {
    fn name(&self) -> &'static str {
        "TP2D"
    }

    fn description(&self) -> String {
        format!(
            "2-D transport benchmark: two tracers in a differentially rotating flow, {}x{} reference grid",
            self.n, self.n
        )
    }

    fn advance_coarse_step(&mut self) {
        let dx = 1.0 / self.n as f64;
        let lam = self.dt / dx;
        for _ in 0..self.substeps {
            let (u, vx, vy) = (&self.u, &self.vx, &self.vy);
            numerics::par_rows(&mut self.u_next, |x, y| {
                let uc = clamped(u, x, y);
                let a = clamped(vx, x, y);
                let b = clamped(vy, x, y);
                let dudx = if a >= 0.0 {
                    uc - clamped(u, x - 1, y)
                } else {
                    clamped(u, x + 1, y) - uc
                };
                let dudy = if b >= 0.0 {
                    uc - clamped(u, x, y - 1)
                } else {
                    clamped(u, x, y + 1) - uc
                };
                uc - lam * (a * dudx + b * dudy)
            });
            std::mem::swap(&mut self.u, &mut self.u_next);
            self.time += self.dt;
        }
        self.refresh_indicator();
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn indicator_field(&self) -> &Grid2<f64> {
        &self.indicator
    }

    fn threshold(&self, level: usize) -> f64 {
        geometric_threshold(0.12, 1.7, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Point2;

    fn kernel() -> Tp2d {
        Tp2d::new(48, 20, 7)
    }

    #[test]
    fn maximum_principle_holds() {
        let mut k = kernel();
        let (min0, max0) = (
            k.u.data().iter().cloned().fold(f64::MAX, f64::min),
            k.u.data().iter().cloned().fold(f64::MIN, f64::max),
        );
        for _ in 0..3 {
            k.advance_coarse_step();
        }
        for &v in k.u.data() {
            assert!(v >= min0 - 1e-12 && v <= max0 + 1e-12, "value {v} escapes");
        }
    }

    #[test]
    fn tracer_moves() {
        let mut k = kernel();
        let before = k.u.clone();
        for _ in 0..2 {
            k.advance_coarse_step();
        }
        // Center of mass must have rotated: fields differ substantially.
        let diff: f64 = before
            .data()
            .iter()
            .zip(k.u.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0, "solution barely changed: {diff}");
    }

    #[test]
    fn indicator_normalized_and_nonempty() {
        let mut k = kernel();
        k.advance_coarse_step();
        let ind = k.indicator_field();
        assert!(ind.max_abs() <= 1.0 + 1e-12);
        assert!(ind.max_abs() > 0.99); // normalized to exactly 1 somewhere
        assert!(k.indicator(0.5, 0.5) >= 0.0);
    }

    #[test]
    fn time_advances_by_coarse_dt() {
        let mut k = Tp2d::new(48, 20, 3);
        k.advance_coarse_step();
        assert!((k.time() - T_FINAL / 20.0).abs() < 1e-9);
    }

    #[test]
    fn velocity_is_rotational() {
        let k = kernel();
        // v·r = 0: velocity is perpendicular to the radius vector.
        let p = Point2::new(10, 30);
        let dx = 1.0 / 48.0;
        let (ux, uy) = ((10.0 + 0.5) * dx - 0.5, (30.0 + 0.5) * dx - 0.5);
        let dot = k.vx.get(p) * ux + k.vy.get(p) * uy;
        assert!(dot.abs() < 1e-12);
    }

    #[test]
    fn seeds_change_initial_condition() {
        let a = Tp2d::new(48, 20, 1);
        let b = Tp2d::new(48, 20, 2);
        assert_ne!(a.u.data(), b.u.data());
        // Same seed reproduces exactly.
        let c = Tp2d::new(48, 20, 1);
        assert_eq!(a.u.data(), c.u.data());
    }

    #[test]
    fn thresholds_tighten_with_level() {
        let k = kernel();
        assert!(k.threshold(1) > k.threshold(0));
        assert!(k.threshold(4) <= 0.95);
    }
}
