//! BL2D: the Buckley–Leverett oil–water flow kernel.
//!
//! The paper's BL2D comes from IPARS and models oil–water mixture flow in
//! confined aquifers with discharge/recharge cycles. We solve the
//! Buckley–Leverett saturation equation `s_t + ∇·(v f(s)) = 0` with the
//! classic fractional-flow function `f(s) = s²/(s² + M(1−s)²)` on a
//! quarter five-spot: water is injected at the (0,0) corner well and
//! produced at the (1,1) corner well, with the injection rate *pulsed*
//! periodically (the paper's "discharge/recharge" dynamics). The
//! saturation shock front expands from the injector; the pulsing makes the
//! front alternately steepen and relax, which is what gives BL2D its
//! strongly oscillatory refinement behaviour (Figures 1 and 5).
//!
//! Discretization: conservative dimension-split upwinding. `f` is monotone
//! increasing on `[0,1]`, so upwinding on the sign of the face velocity is
//! the exact Godunov flux.

use crate::kernel::{geometric_threshold, Kernel};
use crate::numerics::{self, clamped};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use samr_geom::Grid2;

/// Pulsed quarter-five-spot Buckley–Leverett kernel (see module docs).
pub struct Bl2d {
    s: Grid2<f64>,
    s_next: Grid2<f64>,
    vx: Grid2<f64>,
    vy: Grid2<f64>,
    indicator: Grid2<f64>,
    scratch: Grid2<f64>,
    n: i64,
    dt: f64,
    substeps: u32,
    time: f64,
    steps: u32,
    pulse_phase: f64,
    running_max: f64,
}

/// Water/oil mobility ratio in the fractional-flow function.
const MOBILITY: f64 = 0.5;
/// Base injection strength (velocity scale).
const Q0: f64 = 0.16;
/// Relative amplitude of the injection pulsing.
const PULSE_AMP: f64 = 0.6;
/// Pulse period, measured in *coarse steps* (≈10-step oscillation, the
/// cadence visible in the paper's BL2D figures).
const PULSE_PERIOD_STEPS: f64 = 10.0;
/// Total simulated time for a full run of `steps` coarse steps.
const T_FINAL: f64 = 1.1;
/// Radius of the forced-saturation injector region.
const WELL_RADIUS: f64 = 0.07;
/// Velocity cap (regularizes the 1/r well singularity).
const V_CAP: f64 = 1.1;
/// CFL number; the wave speed is `|v|·max f'`.
const CFL: f64 = 0.35;

/// The Buckley–Leverett fractional-flow function.
#[inline]
pub fn fractional_flow(s: f64) -> f64 {
    let s = s.clamp(0.0, 1.0);
    let a = s * s;
    let b = MOBILITY * (1.0 - s) * (1.0 - s);
    a / (a + b)
}

/// Upper bound of `f'(s)` on [0,1] for the CFL estimate (numerically
/// scanned once; conservative).
fn max_flux_derivative() -> f64 {
    let mut m: f64 = 0.0;
    for i in 0..512 {
        let s = i as f64 / 511.0;
        let h = 1e-5;
        let d = (fractional_flow(s + h) - fractional_flow(s - h)) / (2.0 * h);
        m = m.max(d.abs());
    }
    m
}

impl Bl2d {
    /// Create the kernel on an `n x n` reference grid sized for `steps`
    /// coarse steps; `seed` perturbs the pulse phase.
    pub fn new(n: i64, steps: u32, seed: u64) -> Self {
        assert!(n >= 8 && steps >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb12d_0000);
        let pulse_phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let dx = 1.0 / n as f64;

        // Quarter-five-spot potential flow: source at (0,0), sink at
        // (1,1), with image symmetry ignored (the near-well radial field
        // dominates the front dynamics). Velocities capped near wells.
        let well = |ux: f64, uy: f64, wx: f64, wy: f64, sign: f64| -> (f64, f64) {
            let (rx, ry) = (ux - wx, uy - wy);
            let r2 = (rx * rx + ry * ry).max(1e-9);
            let mag = (1.0 / (2.0 * std::f64::consts::PI * r2.sqrt())).min(V_CAP / Q0);
            (sign * mag * rx / r2.sqrt(), sign * mag * ry / r2.sqrt())
        };
        let mut vx = numerics::zeros(n, n);
        let mut vy = numerics::zeros(n, n);
        numerics::par_rows(&mut vx, |x, y| {
            let (ux, uy) = ((x as f64 + 0.5) * dx, (y as f64 + 0.5) * dx);
            let (sx, _) = well(ux, uy, 0.0, 0.0, 1.0);
            let (kx, _) = well(ux, uy, 1.0, 1.0, -1.0);
            Q0 * (sx + kx)
        });
        numerics::par_rows(&mut vy, |x, y| {
            let (ux, uy) = ((x as f64 + 0.5) * dx, (y as f64 + 0.5) * dx);
            let (_, sy) = well(ux, uy, 0.0, 0.0, 1.0);
            let (_, ky) = well(ux, uy, 1.0, 1.0, -1.0);
            Q0 * (sy + ky)
        });

        let coarse_dt = T_FINAL / steps as f64;
        let vmax = V_CAP * (1.0 + PULSE_AMP);
        let dt_max = CFL * dx / (vmax * max_flux_derivative());
        let substeps = (coarse_dt / dt_max).ceil().max(1.0) as u32;
        let dt = coarse_dt / substeps as f64;

        let s = numerics::zeros(n, n);
        let mut k = Self {
            s_next: s.clone(),
            scratch: s.clone(),
            indicator: numerics::zeros(n, n),
            s,
            vx,
            vy,
            n,
            dt,
            substeps,
            time: 0.0,
            steps,
            pulse_phase,
            running_max: 0.0,
        };
        k.force_injector();
        k.refresh_indicator();
        k
    }

    /// Injection pulse factor at the current time.
    fn pulse(&self) -> f64 {
        let coarse_dt = T_FINAL / self.steps as f64;
        let period = PULSE_PERIOD_STEPS * coarse_dt;
        1.0 + PULSE_AMP * (std::f64::consts::TAU * self.time / period + self.pulse_phase).sin()
    }

    /// Force s = 1 inside the injector well.
    fn force_injector(&mut self) {
        let dx = 1.0 / self.n as f64;
        let d = self.s.domain();
        let rad_cells = (WELL_RADIUS / dx).ceil() as i64;
        for y in d.lo().y..=(d.lo().y + rad_cells).min(d.hi().y) {
            for x in d.lo().x..=(d.lo().x + rad_cells).min(d.hi().x) {
                let (ux, uy) = ((x as f64 + 0.5) * dx, (y as f64 + 0.5) * dx);
                if ux * ux + uy * uy <= WELL_RADIUS * WELL_RADIUS {
                    self.s.set(samr_geom::Point2::new(x, y), 1.0);
                }
            }
        }
    }

    fn refresh_indicator(&mut self) {
        numerics::gradient_magnitude(&self.s, &mut self.scratch);
        std::mem::swap(&mut self.indicator, &mut self.scratch);
        numerics::normalize_max(&mut self.indicator);
        self.running_max = self.indicator.max_abs();
    }

    /// Saturation field (for tests and demos).
    pub fn saturation(&self) -> &Grid2<f64> {
        &self.s
    }
}

impl Kernel for Bl2d {
    fn name(&self) -> &'static str {
        "BL2D"
    }

    fn description(&self) -> String {
        format!(
            "Buckley-Leverett oil-water flow, pulsed quarter five-spot, {}x{} reference grid",
            self.n, self.n
        )
    }

    fn advance_coarse_step(&mut self) {
        let dx = 1.0 / self.n as f64;
        for _ in 0..self.substeps {
            let lam = self.dt / dx * self.pulse();
            let (s, vx, vy) = (&self.s, &self.vx, &self.vy);
            numerics::par_rows(&mut self.s_next, |x, y| {
                // Face velocities (averaged), Godunov upwind on sign.
                let flux_x = |i: i64| -> f64 {
                    let v = 0.5 * (clamped(vx, i, y) + clamped(vx, i + 1, y));
                    if v >= 0.0 {
                        v * fractional_flow(clamped(s, i, y))
                    } else {
                        v * fractional_flow(clamped(s, i + 1, y))
                    }
                };
                let flux_y = |j: i64| -> f64 {
                    let v = 0.5 * (clamped(vy, x, j) + clamped(vy, x, j + 1));
                    if v >= 0.0 {
                        v * fractional_flow(clamped(s, x, j))
                    } else {
                        v * fractional_flow(clamped(s, x, j + 1))
                    }
                };
                let div = (flux_x(x) - flux_x(x - 1)) + (flux_y(y) - flux_y(y - 1));
                (clamped(s, x, y) - lam * div).clamp(0.0, 1.0)
            });
            std::mem::swap(&mut self.s, &mut self.s_next);
            self.force_injector();
            self.time += self.dt;
        }
        self.refresh_indicator();
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn indicator_field(&self) -> &Grid2<f64> {
        &self.indicator
    }

    fn threshold(&self, level: usize) -> f64 {
        geometric_threshold(0.10, 1.8, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Bl2d {
        Bl2d::new(48, 20, 11)
    }

    #[test]
    fn fractional_flow_is_monotone_s_shaped() {
        assert_eq!(fractional_flow(0.0), 0.0);
        assert_eq!(fractional_flow(1.0), 1.0);
        let mut prev = 0.0;
        for i in 1..=100 {
            let v = fractional_flow(i as f64 / 100.0);
            assert!(v >= prev, "f must be monotone");
            prev = v;
        }
        // Convex-concave: f(0.5) computed directly.
        let expected = 0.25 / (0.25 + MOBILITY * 0.25);
        assert!((fractional_flow(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn saturation_stays_in_unit_interval() {
        let mut k = kernel();
        for _ in 0..4 {
            k.advance_coarse_step();
        }
        for &v in k.s.data() {
            assert!((0.0..=1.0).contains(&v), "saturation {v} out of range");
        }
    }

    #[test]
    fn front_expands_from_injector() {
        let mut k = kernel();
        let mass0 = k.s.sum();
        let wet0 = k.s.data().iter().filter(|&&v| v > 0.01).count();
        for _ in 0..5 {
            k.advance_coarse_step();
        }
        let mass1 = k.s.sum();
        let wet1 = k.s.data().iter().filter(|&&v| v > 0.01).count();
        assert!(
            mass1 > mass0 * 1.2,
            "injected water must spread: {mass0} -> {mass1}"
        );
        // The wetted area (cells reached by water) must grow well beyond
        // the forced injector disk.
        assert!(wet1 > wet0 * 2, "front did not expand: {wet0} -> {wet1}");
    }

    #[test]
    fn pulse_oscillates_around_unity() {
        let mut k = kernel();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..20 {
            lo = lo.min(k.pulse());
            hi = hi.max(k.pulse());
            k.advance_coarse_step();
        }
        assert!(hi > 1.2 && lo < 0.8, "pulse range [{lo}, {hi}] too flat");
    }

    #[test]
    fn indicator_tracks_the_front() {
        let mut k = kernel();
        for _ in 0..4 {
            k.advance_coarse_step();
        }
        // The strongest gradient must lie outside the well (on the front).
        let ind = k.indicator_field();
        assert!(ind.max_abs() > 0.99);
        // Indicator at the far corner (undisturbed oil) is ~0.
        assert!(k.indicator(0.95, 0.95) < 0.05);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Bl2d::new(32, 10, 5);
        let mut b = Bl2d::new(32, 10, 5);
        a.advance_coarse_step();
        b.advance_coarse_step();
        assert_eq!(a.s.data(), b.s.data());
    }
}
