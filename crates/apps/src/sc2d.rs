//! SC2D: the scalar-wave / numerical-relativity kernel.
//!
//! The paper's Scalarwave (SC2D) kernel evolves the hyperbolic part of a
//! coupled numerical-relativity system and is part of the Cactus toolkit.
//! We solve the scalar wave equation `u_tt = c²Δu` on the unit square with
//! homogeneous Dirichlet walls using the standard leapfrog scheme. A
//! Gaussian pulse splits into an expanding ring that reflects off the
//! walls and periodically refocuses near the center — the refined region
//! expands and contracts with the ring, giving the strongly oscillatory
//! load-imbalance and communication dynamics the paper reports for SC2D
//! (Figure 6).

use crate::kernel::{geometric_threshold, Kernel};
use crate::numerics::{self, clamped};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use samr_geom::{Grid2, Point2};

/// Leapfrog scalar-wave kernel (see module docs).
pub struct Sc2d {
    u: Grid2<f64>,
    u_prev: Grid2<f64>,
    u_next: Grid2<f64>,
    indicator: Grid2<f64>,
    scratch: Grid2<f64>,
    n: i64,
    dt: f64,
    substeps: u32,
    time: f64,
}

/// Wave speed.
const C: f64 = 1.0;
/// Total simulated time over a full run (several reflection cycles).
const T_FINAL: f64 = 4.0;
/// Courant number `c·dt/dx` (2-D leapfrog is stable below `1/√2`).
const COURANT: f64 = 0.45;

impl Sc2d {
    /// Create the kernel on an `n x n` reference grid sized for `steps`
    /// coarse steps; `seed` jitters the initial pulse position slightly.
    pub fn new(n: i64, steps: u32, seed: u64) -> Self {
        assert!(n >= 8 && steps >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5c2d_0000);
        let cx: f64 = 0.5 + rng.random_range(-0.05..0.05);
        let cy: f64 = 0.5 + rng.random_range(-0.05..0.05);
        let dx = 1.0 / n as f64;

        let mut u = numerics::zeros(n, n);
        numerics::par_rows(&mut u, |x, y| {
            let (ux, uy) = ((x as f64 + 0.5) * dx, (y as f64 + 0.5) * dx);
            let d2 = (ux - cx).powi(2) + (uy - cy).powi(2);
            (-d2 / (0.05f64 * 0.05)).exp()
        });

        let coarse_dt = T_FINAL / steps as f64;
        let dt_max = COURANT * dx / C;
        let substeps = (coarse_dt / dt_max).ceil().max(1.0) as u32;
        let dt = coarse_dt / substeps as f64;

        let mut k = Self {
            u_prev: u.clone(), // zero initial velocity
            u_next: u.clone(),
            scratch: u.clone(),
            indicator: numerics::zeros(n, n),
            u,
            n,
            dt,
            substeps,
            time: 0.0,
        };
        k.refresh_indicator();
        k
    }

    fn refresh_indicator(&mut self) {
        // Energy-density indicator: |∇u|² + (u_t/c)², so both the moving
        // ring (kinetic) and the standing structure (gradient) flag.
        let inv_cdt = 1.0 / (C * self.dt);
        let (u, u_prev) = (&self.u, &self.u_prev);
        numerics::par_rows(&mut self.scratch, |x, y| {
            let gx = 0.5 * (clamped(u, x + 1, y) - clamped(u, x - 1, y));
            let gy = 0.5 * (clamped(u, x, y + 1) - clamped(u, x, y - 1));
            let ut = (clamped(u, x, y) - clamped(u_prev, x, y)) * inv_cdt;
            // Scale the gradient by dx to make both terms dimensionless.
            let n_inv = 1.0; // gradient is already per-cell
            (gx * gx * n_inv + gy * gy * n_inv + ut * ut).sqrt()
        });
        std::mem::swap(&mut self.indicator, &mut self.scratch);
        numerics::normalize_max(&mut self.indicator);
    }

    /// Discrete wave energy `Σ (u_t² + c²|∇u|²)/2 · dx²` — conserved by
    /// leapfrog up to O(dt²) oscillation; used by tests.
    pub fn energy(&self) -> f64 {
        let d = self.u.domain();
        let dx = 1.0 / self.n as f64;
        let mut e = 0.0;
        for y in d.lo().y..=d.hi().y {
            for x in d.lo().x..=d.hi().x {
                let ut = (clamped(&self.u, x, y) - clamped(&self.u_prev, x, y)) / self.dt;
                let gx = 0.5 * (clamped(&self.u, x + 1, y) - clamped(&self.u, x - 1, y)) / dx;
                let gy = 0.5 * (clamped(&self.u, x, y + 1) - clamped(&self.u, x, y - 1)) / dx;
                e += 0.5 * (ut * ut + C * C * (gx * gx + gy * gy));
            }
        }
        e * dx * dx
    }

    /// Displacement field (for tests and demos).
    pub fn displacement(&self) -> &Grid2<f64> {
        &self.u
    }

    /// RMS radius of the energy distribution — tracks the ring's
    /// expansion/contraction cycle (for tests).
    pub fn energy_radius(&self) -> f64 {
        let d = self.u.domain();
        let dx = 1.0 / self.n as f64;
        let (mut w_sum, mut r_sum) = (0.0, 0.0);
        for y in d.lo().y..=d.hi().y {
            for x in d.lo().x..=d.hi().x {
                let v = *self.indicator.get(Point2::new(x, y));
                let w = v * v;
                let (ux, uy) = ((x as f64 + 0.5) * dx - 0.5, (y as f64 + 0.5) * dx - 0.5);
                w_sum += w;
                r_sum += w * (ux * ux + uy * uy).sqrt();
            }
        }
        if w_sum > 0.0 {
            r_sum / w_sum
        } else {
            0.0
        }
    }
}

impl Kernel for Sc2d {
    fn name(&self) -> &'static str {
        "SC2D"
    }

    fn description(&self) -> String {
        format!(
            "scalar wave equation (Cactus-style hyperbolic kernel), reflecting ring pulse, {}x{} reference grid",
            self.n, self.n
        )
    }

    fn advance_coarse_step(&mut self) {
        let r2 = (C * self.dt * self.n as f64).powi(2); // (c·dt/dx)²
        for _ in 0..self.substeps {
            let (u, u_prev) = (&self.u, &self.u_prev);
            let d = u.domain();
            numerics::par_rows(&mut self.u_next, |x, y| {
                // Dirichlet walls: treat outside as 0.
                let at = |i: i64, j: i64| -> f64 {
                    if d.contains_point(Point2::new(i, j)) {
                        *u.get(Point2::new(i, j))
                    } else {
                        0.0
                    }
                };
                let lap =
                    at(x + 1, y) + at(x - 1, y) + at(x, y + 1) + at(x, y - 1) - 4.0 * at(x, y);
                2.0 * at(x, y) - clamped(u_prev, x, y) + r2 * lap
            });
            // Rotate: prev <- u <- next.
            std::mem::swap(&mut self.u_prev, &mut self.u);
            std::mem::swap(&mut self.u, &mut self.u_next);
            self.time += self.dt;
        }
        self.refresh_indicator();
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn indicator_field(&self) -> &Grid2<f64> {
        &self.indicator
    }

    fn threshold(&self, level: usize) -> f64 {
        geometric_threshold(0.14, 1.7, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Sc2d {
        Sc2d::new(48, 20, 3)
    }

    #[test]
    fn energy_approximately_conserved() {
        let mut k = kernel();
        // Let the pulse separate from the initial condition first.
        k.advance_coarse_step();
        let e0 = k.energy();
        for _ in 0..6 {
            k.advance_coarse_step();
        }
        let e1 = k.energy();
        let rel = (e1 - e0).abs() / e0;
        assert!(rel < 0.05, "energy drifted by {rel}");
    }

    #[test]
    fn ring_expands_initially() {
        let mut k = kernel();
        let r0 = k.energy_radius();
        for _ in 0..4 {
            k.advance_coarse_step();
        }
        let r1 = k.energy_radius();
        assert!(r1 > r0 + 0.02, "ring did not expand: {r0} -> {r1}");
    }

    #[test]
    fn ring_oscillates_over_reflection_cycle() {
        // Over T=4 with c=1 the ring expands and refocuses; the energy
        // radius must be non-monotone.
        let mut k = Sc2d::new(48, 40, 3);
        let mut radii = Vec::new();
        for _ in 0..40 {
            k.advance_coarse_step();
            radii.push(k.energy_radius());
        }
        let up = radii.windows(2).filter(|w| w[1] > w[0]).count();
        let down = radii.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(up > 5 && down > 5, "no oscillation: up={up} down={down}");
    }

    #[test]
    fn dirichlet_walls_reflect() {
        let mut k = kernel();
        for _ in 0..20 {
            k.advance_coarse_step();
        }
        // Solution remains bounded (stability) and nonzero (reflection,
        // not absorption).
        assert!(k.u.max_abs() < 10.0);
        assert!(k.u.max_abs() > 1e-4);
    }

    #[test]
    fn indicator_is_normalized() {
        let mut k = kernel();
        k.advance_coarse_step();
        assert!(k.indicator_field().max_abs() <= 1.0 + 1e-12);
        assert!(k.indicator_field().max_abs() > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Sc2d::new(32, 10, 9);
        let mut b = Sc2d::new(32, 10, 9);
        a.advance_coarse_step();
        b.advance_coarse_step();
        assert_eq!(a.u.data(), b.u.data());
    }
}
