//! SP3D — advecting-sphere 3-D workload (the 3-D analogue of the 2-D
//! transport kernels).
//!
//! The paper's four applications are 2-D, but its model is
//! dimension-agnostic; SP3D opens the 3-D axis of the campaign space with
//! the canonical 3-D SAMR benchmark feature: a thin spherical shell
//! (an advected front) orbiting the unit cube on a closed Lissajous path.
//! The indicator is analytic — no reference PDE solve is needed to
//! exercise the 3-D clustering, nesting, partitioning and simulation
//! paths — yet it produces exactly the trace phenomenology the model
//! cares about: a moving, curvature-rich refined region whose volume
//! oscillates as the shell approaches and leaves the domain walls.

/// The advecting-sphere scenario parameters (all in unit-cube
/// coordinates). Fully determined by `(steps, seed)`, so the trace
/// configuration alone reproduces the scenario — the struct itself never
/// needs to ride in artifacts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sp3d {
    /// Shell radius.
    pub radius: f64,
    /// Shell half-thickness (Gaussian width of the indicator).
    pub width: f64,
    /// Orbit angular frequencies per axis (Lissajous path).
    pub freq: [f64; 3],
    /// Orbit phase offsets per axis (seed-derived).
    pub phase: [f64; 3],
    /// Orbit amplitude (kept < 0.5 - radius so the shell stays inside).
    pub amplitude: f64,
    /// Time advanced per coarse step.
    pub dt: f64,
    /// Current physical time.
    pub time: f64,
}

impl Sp3d {
    /// Build the scenario; `steps` fixes `dt` so one full orbit fits the
    /// run, `seed` perturbs the path phases for distinct-but-reproducible
    /// scenarios.
    pub fn new(steps: u32, seed: u64) -> Self {
        // SplitMix64 over the seed: three phases in [0, 2π).
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            let mut z = state;
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let tau = std::f64::consts::TAU;
        Self {
            radius: 0.22,
            width: 0.035,
            freq: [1.0, 2.0, 3.0],
            phase: [tau * next(), tau * next(), tau * next()],
            amplitude: 0.2,
            dt: 1.0 / steps.max(1) as f64,
            time: 0.0,
        }
    }

    /// One-line description of the scenario.
    pub fn description(&self) -> String {
        format!(
            "advecting spherical shell (r={:.2}, w={:.3}) on a Lissajous orbit in the unit cube",
            self.radius, self.width
        )
    }

    /// Center of the sphere at the current time.
    pub fn center(&self) -> [f64; 3] {
        let tau = std::f64::consts::TAU;
        std::array::from_fn(|i| {
            0.5 + self.amplitude * (tau * self.freq[i] * self.time + self.phase[i]).sin()
        })
    }

    /// Normalized feature indicator at unit-cube coordinates: 1 on the
    /// shell surface, decaying as a Gaussian of the signed distance to
    /// it.
    pub fn indicator(&self, p: [f64; 3]) -> f64 {
        let c = self.center();
        let d2: f64 = (0..3).map(|i| (p[i] - c[i]) * (p[i] - c[i])).sum();
        let signed = d2.sqrt() - self.radius;
        (-(signed / self.width) * (signed / self.width)).exp()
    }

    /// Flagging threshold for refinement level `level`: deeper levels
    /// refine a progressively narrower band around the shell.
    pub fn threshold(&self, level: usize) -> f64 {
        crate::kernel::geometric_threshold(0.12, 1.9, level)
    }

    /// Advance one coarse time step.
    pub fn advance_coarse_step(&mut self) {
        self.time += self.dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indicator_peaks_on_the_shell() {
        let s = Sp3d::new(10, 7);
        let c = s.center();
        let on_shell = [c[0] + s.radius, c[1], c[2]];
        let far = [0.02, 0.02, 0.02];
        assert!(s.indicator(on_shell) > 0.99);
        assert!(s.indicator(far) < s.indicator(on_shell));
        assert!(s.indicator(c) < 1e-6, "center is far from the shell");
    }

    #[test]
    fn orbit_stays_inside_the_unit_cube() {
        let mut s = Sp3d::new(50, 123);
        for _ in 0..50 {
            let c = s.center();
            for i in 0..3 {
                assert!(c[i] - s.radius > 0.0 && c[i] + s.radius < 1.0, "{c:?}");
            }
            s.advance_coarse_step();
        }
    }

    #[test]
    fn seeds_change_the_path_deterministically() {
        let a = Sp3d::new(10, 1);
        let b = Sp3d::new(10, 2);
        let a2 = Sp3d::new(10, 1);
        assert_ne!(a.phase, b.phase);
        assert_eq!(a.phase, a2.phase);
    }

    #[test]
    fn thresholds_tighten_with_depth() {
        let s = Sp3d::new(10, 0);
        assert!(s.threshold(1) > s.threshold(0));
        assert!(s.threshold(4) <= 0.95);
    }
}
