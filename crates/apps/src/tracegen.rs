//! Trace generation: drive an application through the paper's SAMR
//! configuration and record the hierarchy at every coarse time step.
//!
//! Generation is expressed as a *step iterator* ([`AppSource`], a
//! [`SnapshotSource`]): each pull advances the kernel one coarse step
//! and yields that step's hierarchy, so a trace can be consumed — or
//! written to disk — with one snapshot resident. The batch
//! `generate_trace*` functions are collects over it.
//!
//! The §5.1.1 set-up is reproduced exactly: 5 levels of factor-2 refinement
//! in space *and* time, regridding every 4 time steps **on each level**,
//! granularity (minimum block dimension) 2, 100 coarse steps. With factor-2
//! time refinement, level `l` takes `2^l` local steps per coarse step, so
//! "every 4 local steps" means level 1 regrids every 2 coarse steps and
//! levels ≥ 2 every coarse step — the hierarchy changes nearly every step,
//! which is what makes the paper's per-step metric series continuous.
//!
//! The regrid machinery (flag → buffer → Berger–Rigoutsos → proper
//! nesting) is dimension-generic: the 2-D kernels feed it their sampled
//! indicator fields, the 3-D advecting-sphere workload ([`crate::sp3d`])
//! feeds it an analytic indicator, and both run the *same* code path.

use crate::bl2d::Bl2d;
use crate::kernel::Kernel;
use crate::pc2d::Pc2d;
use crate::rm2d::Rm2d;
use crate::sc2d::Sc2d;
use crate::sp3d::Sp3d;
use crate::tp2d::Tp2d;
use samr_geom::{AABox, Box3, Rect2};
use samr_grid::nesting::{clip_to_nesting, shrink_within};
use samr_grid::{
    cluster_flags_with, ClusterOptions, ClusterScratch, FlagField, GridHierarchy, Level,
};
use samr_trace::io::TraceIoError;
use samr_trace::{
    AnySnapshotSource, AnyTrace, HierarchyTrace, Snapshot, SnapshotSource, TraceMeta,
};
use serde::{Deserialize, Serialize};

/// Which application to run: the paper's four 2-D kernels, or the 3-D
/// advecting-sphere workload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AppKind {
    /// 2-D transport benchmark (GrACE).
    Tp2d,
    /// Buckley–Leverett oil–water flow (IPARS).
    Bl2d,
    /// Scalar wave / numerical relativity (Cactus).
    Sc2d,
    /// Richtmyer–Meshkov instability (VTF).
    Rm2d,
    /// Synthetic two-regime phase-change workload (adaptive-policy
    /// stressor).
    Pc2d,
    /// Advecting spherical shell (3-D workload).
    Sp3d,
}

impl AppKind {
    /// The paper's four 2-D applications in the paper's presentation
    /// order (Figures 4–7).
    pub const ALL: [AppKind; 4] = [AppKind::Rm2d, AppKind::Bl2d, AppKind::Sc2d, AppKind::Tp2d];

    /// The 3-D workloads.
    pub const ALL_3D: [AppKind; 1] = [AppKind::Sp3d];

    /// Synthetic workloads built to stress specific machinery rather
    /// than reproduce a paper figure; excluded from the default
    /// campaign axis ([`AppKind::ALL`]).
    pub const SYNTHETIC: [AppKind; 1] = [AppKind::Pc2d];

    /// Every application of either dimension.
    pub const EVERY: [AppKind; 6] = [
        AppKind::Rm2d,
        AppKind::Bl2d,
        AppKind::Sc2d,
        AppKind::Tp2d,
        AppKind::Pc2d,
        AppKind::Sp3d,
    ];

    /// The kernel name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Tp2d => "TP2D",
            AppKind::Bl2d => "BL2D",
            AppKind::Sc2d => "SC2D",
            AppKind::Rm2d => "RM2D",
            AppKind::Pc2d => "PC2D",
            AppKind::Sp3d => "SP3D",
        }
    }

    /// The spatial dimension of the application's index space.
    pub fn dim(self) -> usize {
        match self {
            AppKind::Sp3d => 3,
            _ => 2,
        }
    }

    /// Parse a kernel name, case-insensitively ("rm2d", "BL2D", "sp3d",
    /// ...). The single name registry shared by the CLI and the campaign
    /// engine.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "TP2D" => Some(AppKind::Tp2d),
            "BL2D" => Some(AppKind::Bl2d),
            "SC2D" => Some(AppKind::Sc2d),
            "RM2D" => Some(AppKind::Rm2d),
            "PC2D" => Some(AppKind::Pc2d),
            "SP3D" => Some(AppKind::Sp3d),
            _ => None,
        }
    }

    /// One-line description of the application scenario.
    pub fn describe(self, cfg: &TraceGenConfig) -> String {
        match self {
            AppKind::Sp3d => Sp3d::new(cfg.steps, cfg.seed).description(),
            _ => make_kernel(self, cfg).description(),
        }
    }
}

/// Configuration for trace generation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Number of coarse time steps (paper: 100).
    pub steps: u32,
    /// Base-grid cells along the shorter domain axis (the longer axis is
    /// scaled by the kernel's aspect ratio).
    pub base_cells: i64,
    /// Maximum number of levels including the base (paper: 5).
    pub max_levels: usize,
    /// Space/time refinement factor (paper: 2).
    pub ratio: i64,
    /// Regrid interval in per-level local steps (paper: 4).
    pub regrid_interval: u32,
    /// Minimum block dimension / granularity (paper: 2).
    pub min_block: i64,
    /// Flag-buffer width in cells (standard SAMR safety margin).
    pub flag_buffer: i64,
    /// Proper-nesting buffer in coarse cells.
    pub nesting_buffer: i64,
    /// Berger–Rigoutsos options.
    pub cluster: ClusterOptions,
    /// Kernel reference-grid resolution along the shorter axis.
    pub ref_resolution: i64,
    /// RNG seed (initial-condition phases).
    pub seed: u64,
}

impl TraceGenConfig {
    /// The paper's §5.1.1 configuration.
    pub fn paper() -> Self {
        Self {
            steps: 100,
            base_cells: 64,
            max_levels: 5,
            ratio: 2,
            regrid_interval: 4,
            min_block: 2,
            flag_buffer: 1,
            nesting_buffer: 1,
            cluster: ClusterOptions::paper_defaults(),
            ref_resolution: 192,
            seed: 2004,
        }
    }

    /// A fast configuration for unit/integration tests: small grids, few
    /// steps, three levels. Exercises every code path of the full set-up.
    pub fn smoke() -> Self {
        Self {
            steps: 10,
            base_cells: 32,
            max_levels: 3,
            ratio: 2,
            regrid_interval: 4,
            min_block: 2,
            flag_buffer: 1,
            nesting_buffer: 1,
            cluster: ClusterOptions::paper_defaults(),
            ref_resolution: 48,
            seed: 2004,
        }
    }

    /// Coarse-step regrid period of level `l >= 1`: level `l` regrids every
    /// `regrid_interval` of its own (factor-`ratio^l`) local steps.
    pub fn regrid_period(&self, l: usize) -> u32 {
        let local_per_coarse = (self.ratio as u32).pow(l as u32);
        (self.regrid_interval / local_per_coarse).max(1)
    }

    /// The lowest level scheduled for regridding at coarse step `t`
    /// (regridding level `l` rebuilds all levels above it too); `None` when
    /// nothing is scheduled.
    pub fn scheduled_level(&self, t: u32) -> Option<usize> {
        (1..self.max_levels).find(|&l| t.is_multiple_of(self.regrid_period(l)))
    }
}

/// Construct the 2-D kernel for an application kind. Panics for 3-D
/// kinds, which have no reference PDE solver ([`AppKind::Sp3d`] is driven
/// analytically).
pub fn make_kernel(kind: AppKind, cfg: &TraceGenConfig) -> Box<dyn Kernel> {
    match kind {
        AppKind::Tp2d => Box::new(Tp2d::new(cfg.ref_resolution, cfg.steps, cfg.seed)),
        AppKind::Bl2d => Box::new(Bl2d::new(cfg.ref_resolution, cfg.steps, cfg.seed)),
        AppKind::Sc2d => Box::new(Sc2d::new(cfg.ref_resolution, cfg.steps, cfg.seed)),
        AppKind::Rm2d => Box::new(Rm2d::new(cfg.ref_resolution, cfg.steps, cfg.seed)),
        AppKind::Pc2d => Box::new(Pc2d::new(cfg.ref_resolution, cfg.steps, cfg.seed)),
        AppKind::Sp3d => panic!("SP3D is a 3-D workload; use generate_trace_any"),
    }
}

/// Rebuild levels `from_level ..` of `h` from a unit-coordinate
/// indicator — the dimension-generic regrid step.
///
/// For each level `l`, cells of level `l-1` (inside its patches) whose
/// indicator exceeds `threshold(l-1)` are flagged, buffered, clustered
/// with Berger–Rigoutsos, clipped to the proper-nesting region of the
/// (new) level `l-1`, and refined into level-`l` patches.
fn regrid<const D: usize>(
    h: &mut GridHierarchy<D>,
    indicator: &dyn Fn([f64; D]) -> f64,
    threshold: &dyn Fn(usize) -> f64,
    cfg: &TraceGenConfig,
    from_level: usize,
    scratch: &mut ClusterScratch<D>,
) {
    debug_assert!(from_level >= 1);
    h.levels.truncate(from_level);
    for l in from_level..cfg.max_levels {
        let parent = l - 1;
        if h.levels.get(parent).is_none_or(|lev| lev.is_empty()) {
            break;
        }
        let parent_domain = h.domain_at_level(parent);
        let extent = parent_domain.extent();
        let thr = threshold(parent);
        let mut flags = FlagField::new(parent_domain);
        for patch in &h.levels[parent].patches {
            // Row-major single pass: the off-axis unit coordinates are
            // fixed along a run, so only u[0] is recomputed per cell —
            // with the exact same `(c + 0.5) / extent` expression as the
            // historical per-cell loop, keeping traces byte-identical.
            flags.mark_rows(&patch.rect, |row, run| {
                let mut u: [f64; D] =
                    std::array::from_fn(|i| (row[i] as f64 + 0.5) / extent[i] as f64);
                for (k, cell) in run.iter_mut().enumerate() {
                    u[0] = ((row[0] + k as i64) as f64 + 0.5) / extent[0] as f64;
                    if indicator(u) > thr {
                        *cell = true;
                    }
                }
            });
        }
        if flags.is_empty() {
            break;
        }
        let flags = flags.buffer(cfg.flag_buffer);
        let candidates = cluster_flags_with(&flags, &cfg.cluster, scratch);
        let nest = shrink_within(
            &h.levels[parent].region(),
            &parent_domain,
            cfg.nesting_buffer,
        );
        let clipped = clip_to_nesting(candidates, &nest, cfg.min_block);
        if clipped.is_empty() {
            break;
        }
        let fine: Vec<AABox<D>> = clipped.iter().map(|b| b.refine(cfg.ratio)).collect();
        h.levels.push(Level::from_rects(&fine));
    }
}

/// The per-step state an application exposes to the step iterator: how
/// to advance one coarse step and how to read the current indicator /
/// thresholds / time. The 2-D PDE kernels and the 3-D analytic workload
/// both fit behind it, so [`AppSource`] is dimension-generic.
trait StepDriver<const D: usize> {
    /// Advance the reference solution by one coarse time step.
    fn advance(&mut self);
    /// Feature indicator at unit-coordinate `u`.
    fn indicator(&self, u: [f64; D]) -> f64;
    /// Flagging threshold for refinement level `level`.
    fn threshold(&self, level: usize) -> f64;
    /// Current physical time.
    fn time(&self) -> f64;
}

impl StepDriver<2> for Box<dyn Kernel> {
    fn advance(&mut self) {
        self.advance_coarse_step();
    }

    fn indicator(&self, u: [f64; 2]) -> f64 {
        Kernel::indicator(self.as_ref(), u[0], u[1])
    }

    fn threshold(&self, level: usize) -> f64 {
        Kernel::threshold(self.as_ref(), level)
    }

    fn time(&self) -> f64 {
        Kernel::time(self.as_ref())
    }
}

impl StepDriver<3> for Sp3d {
    fn advance(&mut self) {
        self.advance_coarse_step();
    }

    fn indicator(&self, u: [f64; 3]) -> f64 {
        Sp3d::indicator(self, u)
    }

    fn threshold(&self, level: usize) -> f64 {
        Sp3d::threshold(self, level)
    }

    fn time(&self) -> f64 {
        self.time
    }
}

/// An application execution as a pull-based snapshot stream: each pull
/// advances the kernel one coarse step (regridding on the paper's
/// schedule) and yields the resulting hierarchy. Only the *current*
/// hierarchy is resident, so traces can be consumed — or written to
/// disk — without ever materializing. The batch generators
/// ([`generate_trace`] and friends) are collects over this source.
pub struct AppSource<const D: usize> {
    meta: TraceMeta<D>,
    cfg: TraceGenConfig,
    h: GridHierarchy<D>,
    next_step: u32,
    driver: Box<dyn StepDriver<D>>,
    /// Clusterer working buffers, reused across every regrid of the run.
    scratch: ClusterScratch<D>,
}

impl<const D: usize> AppSource<D> {
    fn regrid_from(&mut self, from_level: usize) {
        let driver = &self.driver;
        let indicator = |u: [f64; D]| driver.indicator(u);
        let threshold = |l: usize| driver.threshold(l);
        regrid(
            &mut self.h,
            &indicator,
            &threshold,
            &self.cfg,
            from_level,
            &mut self.scratch,
        );
    }
}

impl<const D: usize> SnapshotSource<D> for AppSource<D> {
    fn meta(&self) -> &TraceMeta<D> {
        &self.meta
    }

    fn next_snapshot(&mut self) -> Result<Option<Snapshot<D>>, TraceIoError> {
        let t = self.next_step;
        // Step 0 is always emitted (the initial adaptation), matching the
        // batch generators even for a zero-step configuration.
        if t > 0 && t >= self.cfg.steps {
            return Ok(None);
        }
        if t == 0 {
            // Initial adaptation of the starting condition.
            self.regrid_from(1);
        } else {
            self.driver.advance();
            if let Some(l) = self.cfg.scheduled_level(t) {
                self.regrid_from(l);
            }
        }
        self.next_step = t + 1;
        Ok(Some(Snapshot {
            step: t,
            time: self.driver.time(),
            hierarchy: self.h.clone(),
        }))
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.cfg.steps.max(1)) as usize)
    }
}

/// Open a 2-D application execution as a snapshot stream. Panics for 3-D
/// kinds; [`trace_source_any`] handles both.
pub fn trace_source(kind: AppKind, cfg: &TraceGenConfig) -> AppSource<2> {
    assert_eq!(kind.dim(), 2, "{} is not a 2-D application", kind.name());
    let kernel = make_kernel(kind, cfg);
    let (ax, ay) = kernel.aspect();
    let short = cfg.base_cells;
    let base = Rect2::from_extents(short * ax / ay.min(ax), short * ay / ay.min(ax));
    let meta = TraceMeta {
        app: kind.name().to_string(),
        description: kernel.description(),
        base_domain: base,
        ratio: cfg.ratio,
        max_levels: cfg.max_levels,
        regrid_interval: cfg.regrid_interval,
        min_block: cfg.min_block,
        seed: cfg.seed,
    };
    AppSource {
        meta,
        cfg: cfg.clone(),
        h: GridHierarchy::base_only(base, cfg.ratio),
        next_step: 0,
        driver: Box::new(kernel),
        scratch: ClusterScratch::default(),
    }
}

/// Open the 3-D advecting-sphere workload as a snapshot stream — the
/// same regrid pipeline as the 2-D kernels, driven by the analytic shell
/// indicator.
pub fn trace_source_3d(kind: AppKind, cfg: &TraceGenConfig) -> AppSource<3> {
    assert_eq!(kind.dim(), 3, "{} is not a 3-D application", kind.name());
    let app = Sp3d::new(cfg.steps, cfg.seed);
    let base = Box3::from_extents(cfg.base_cells, cfg.base_cells, cfg.base_cells);
    let meta = TraceMeta {
        app: kind.name().to_string(),
        description: app.description(),
        base_domain: base,
        ratio: cfg.ratio,
        max_levels: cfg.max_levels,
        regrid_interval: cfg.regrid_interval,
        min_block: cfg.min_block,
        seed: cfg.seed,
    };
    AppSource {
        meta,
        cfg: cfg.clone(),
        h: GridHierarchy::base_only(base, cfg.ratio),
        next_step: 0,
        driver: Box::new(app),
        scratch: ClusterScratch::default(),
    }
}

/// Open the trace of any application, 2-D or 3-D, as a dimension-erased
/// snapshot stream.
pub fn trace_source_any(kind: AppKind, cfg: &TraceGenConfig) -> AnySnapshotSource {
    match kind.dim() {
        2 => AnySnapshotSource::D2(Box::new(trace_source(kind, cfg))),
        _ => AnySnapshotSource::D3(Box::new(trace_source_3d(kind, cfg))),
    }
}

/// Drain a generator stream into a whole in-memory trace (generator
/// sources never fail, and every snapshot re-validates on push).
fn collect_app_source<const D: usize>(mut src: AppSource<D>) -> HierarchyTrace<D> {
    let mut trace = HierarchyTrace::new(src.meta().clone());
    while let Some(snap) = src
        .next_snapshot()
        .expect("application generators never fail")
    {
        trace.push(snap);
    }
    trace
}

/// Run a 2-D application kernel for `cfg.steps` coarse steps and record
/// the hierarchy after each step — the paper's application execution
/// trace. Panics for 3-D kinds; [`generate_trace_any`] handles both. A
/// collect over [`trace_source`]; use the source directly to keep memory
/// bounded.
pub fn generate_trace(kind: AppKind, cfg: &TraceGenConfig) -> HierarchyTrace<2> {
    collect_app_source(trace_source(kind, cfg))
}

/// Run the 3-D advecting-sphere workload for `cfg.steps` coarse steps —
/// a collect over [`trace_source_3d`].
pub fn generate_trace_3d(kind: AppKind, cfg: &TraceGenConfig) -> HierarchyTrace<3> {
    collect_app_source(trace_source_3d(kind, cfg))
}

/// Generate the trace of any application, 2-D or 3-D, behind the
/// dimension-erased [`AnyTrace`].
pub fn generate_trace_any(kind: AppKind, cfg: &TraceGenConfig) -> AnyTrace {
    match kind.dim() {
        2 => AnyTrace::D2(generate_trace(kind, cfg)),
        _ => AnyTrace::D3(generate_trace_3d(kind, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regrid_schedule_matches_paper() {
        let cfg = TraceGenConfig::paper();
        // Level 1: every 4 local steps = every 2 coarse steps.
        assert_eq!(cfg.regrid_period(1), 2);
        // Levels >= 2 take >= 4 local steps per coarse step: every step.
        assert_eq!(cfg.regrid_period(2), 1);
        assert_eq!(cfg.regrid_period(4), 1);
        assert_eq!(cfg.scheduled_level(0), Some(1));
        assert_eq!(cfg.scheduled_level(1), Some(2));
        assert_eq!(cfg.scheduled_level(2), Some(1));
    }

    #[test]
    fn smoke_trace_has_expected_shape() {
        let cfg = TraceGenConfig::smoke();
        let trace = generate_trace(AppKind::Tp2d, &cfg);
        assert_eq!(trace.len(), cfg.steps as usize);
        // Every snapshot validated on push already; check refinement shows
        // up and the depth limit is respected.
        let max_depth = trace
            .snapshots
            .iter()
            .map(|s| s.hierarchy.depth())
            .max()
            .unwrap();
        assert!(max_depth >= 2, "no refinement generated");
        assert!(max_depth <= cfg.max_levels);
    }

    #[test]
    fn all_kernels_produce_refinement() {
        let cfg = TraceGenConfig::smoke();
        for kind in AppKind::ALL {
            let trace = generate_trace(kind, &cfg);
            let refined_steps = trace
                .snapshots
                .iter()
                .filter(|s| s.hierarchy.depth() >= 2)
                .count();
            assert!(
                refined_steps > trace.len() / 2,
                "{}: refinement in only {refined_steps}/{} steps",
                kind.name(),
                trace.len()
            );
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = TraceGenConfig::smoke();
        let a = generate_trace(AppKind::Bl2d, &cfg);
        let b = generate_trace(AppKind::Bl2d, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn level1_respects_its_regrid_cadence() {
        let cfg = TraceGenConfig::smoke();
        let trace = generate_trace(AppKind::Sc2d, &cfg);
        // Level 1 is rebuilt at even steps only: at odd steps it must be
        // identical to the previous step.
        for (prev, cur) in trace.pairs() {
            if cur.step % 2 == 1 {
                let a = prev.hierarchy.levels.get(1).map(|l| l.rects());
                let b = cur.hierarchy.levels.get(1).map(|l| l.rects());
                assert_eq!(a, b, "level 1 changed at odd step {}", cur.step);
            }
        }
    }

    #[test]
    fn rm2d_base_grid_is_two_to_one() {
        let cfg = TraceGenConfig::smoke();
        let trace = generate_trace(AppKind::Rm2d, &cfg);
        let e = trace.meta.base_domain.extent();
        assert_eq!(e.x, 2 * e.y);
    }

    #[test]
    fn hierarchies_track_the_moving_solution() {
        // The refined region must move over the run (otherwise the trace
        // carries no migration signal).
        let cfg = TraceGenConfig::smoke();
        let trace = generate_trace(AppKind::Tp2d, &cfg);
        let first = trace
            .snapshots
            .iter()
            .find(|s| s.hierarchy.depth() >= 2)
            .expect("some refinement");
        let last = trace
            .snapshots
            .iter()
            .rev()
            .find(|s| s.hierarchy.depth() >= 2)
            .expect("some refinement");
        assert_ne!(
            first.hierarchy.levels[1].rects(),
            last.hierarchy.levels[1].rects(),
            "refinement never moved"
        );
    }

    #[test]
    fn sp3d_trace_refines_moves_and_validates() {
        let mut cfg = TraceGenConfig::smoke();
        cfg.base_cells = 16; // keep the 3-D smoke run small
        let trace = generate_trace_3d(AppKind::Sp3d, &cfg);
        assert_eq!(trace.len(), cfg.steps as usize);
        let refined_steps = trace
            .snapshots
            .iter()
            .filter(|s| s.hierarchy.depth() >= 2)
            .count();
        assert!(
            refined_steps > trace.len() / 2,
            "SP3D refined only {refined_steps}/{} steps",
            trace.len()
        );
        let first = trace
            .snapshots
            .iter()
            .find(|s| s.hierarchy.depth() >= 2)
            .expect("refinement");
        let last = trace
            .snapshots
            .iter()
            .rev()
            .find(|s| s.hierarchy.depth() >= 2)
            .expect("refinement");
        assert_ne!(
            first.hierarchy.levels[1].rects(),
            last.hierarchy.levels[1].rects(),
            "shell never moved"
        );
        // Deterministic.
        assert_eq!(trace, generate_trace_3d(AppKind::Sp3d, &cfg));
    }

    #[test]
    fn source_and_batch_generators_agree() {
        let cfg = TraceGenConfig::smoke();
        let batch = generate_trace(AppKind::Tp2d, &cfg);
        let mut src = trace_source(AppKind::Tp2d, &cfg);
        assert_eq!(src.len_hint(), Some(cfg.steps as usize));
        let mut n = 0;
        while let Some(s) = src.next_snapshot().unwrap() {
            assert_eq!(s, batch.snapshots[n], "step {n} diverged");
            n += 1;
        }
        assert_eq!(n, batch.len());
        // 3-D too.
        let mut cfg3 = TraceGenConfig::smoke();
        cfg3.base_cells = 16;
        cfg3.steps = 4;
        let batch3 = generate_trace_3d(AppKind::Sp3d, &cfg3);
        let mut src3 = trace_source_3d(AppKind::Sp3d, &cfg3);
        let mut got = Vec::new();
        while let Some(s) = src3.next_snapshot().unwrap() {
            got.push(s);
        }
        assert_eq!(got, batch3.snapshots);
    }

    #[test]
    fn generate_trace_any_dispatches_on_dim() {
        let mut cfg = TraceGenConfig::smoke();
        cfg.base_cells = 16;
        cfg.steps = 3;
        assert_eq!(generate_trace_any(AppKind::Tp2d, &cfg).dim(), 2);
        assert_eq!(generate_trace_any(AppKind::Sp3d, &cfg).dim(), 3);
    }

    #[test]
    fn app_kind_registry_covers_both_dims() {
        assert_eq!(AppKind::parse("sp3d"), Some(AppKind::Sp3d));
        assert_eq!(AppKind::Sp3d.dim(), 3);
        assert_eq!(AppKind::Rm2d.dim(), 2);
        assert_eq!(
            AppKind::EVERY.len(),
            AppKind::ALL.len() + AppKind::ALL_3D.len() + AppKind::SYNTHETIC.len()
        );
        // The synthetic phase-change stressor is deliberately *not* part
        // of the paper's figure axis.
        assert!(!AppKind::ALL.contains(&AppKind::Pc2d));
        assert_eq!(AppKind::Pc2d.dim(), 2);
        for kind in AppKind::EVERY {
            assert_eq!(AppKind::parse(kind.name()), Some(kind));
            assert!(!kind.describe(&TraceGenConfig::smoke()).is_empty());
        }
    }
}
