//! RM2D: the Richtmyer–Meshkov compressible-turbulence kernel.
//!
//! The paper's RM2D comes from the Caltech VTF and solves the
//! Richtmyer–Meshkov instability: "a fingering instability which occurs at
//! a material interface accelerated by a shock wave". We solve the 2-D
//! compressible Euler equations with a first-order Rusanov (local
//! Lax–Friedrichs) finite-volume scheme in a 2:1 shock tube: a Mach-1.5
//! shock travels through light fluid into a sinusoidally perturbed
//! interface with a 3× heavier fluid, deposits vorticity (the RM
//! mechanism), reflects off the right wall and *reshocks* the interface.
//! The growing fingers and the reshock produce irregular, random-looking
//! refinement dynamics — the behaviour the paper reports for RM2D
//! (Figure 4).

use crate::kernel::{geometric_threshold, Kernel};
use crate::numerics;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use samr_geom::{Grid2, Point2};

/// Ratio of specific heats.
const GAMMA: f64 = 1.4;
/// Incident shock Mach number.
const MACH: f64 = 1.5;
/// Heavy/light density ratio across the interface.
const DENSITY_RATIO: f64 = 3.0;
/// Initial shock position.
const X_SHOCK: f64 = 0.4;
/// Mean initial interface position.
const X_INTERFACE: f64 = 0.9;
/// Physical domain: `[0, 2] x [0, 1]`.
const LX: f64 = 2.0;
/// Total simulated time (incident shock + reshock + mixing).
const T_FINAL: f64 = 2.0;
/// Assumed bound on `|u| + c` for the fixed time step.
const SMAX_BOUND: f64 = 4.0;
/// CFL number.
const CFL: f64 = 0.4;
/// Density floor.
const RHO_FLOOR: f64 = 1e-6;
/// Pressure floor.
const P_FLOOR: f64 = 1e-8;

/// Conserved state vector: `(ρ, ρu, ρv, E)`.
type State = [f64; 4];

#[inline]
fn pressure(s: &State) -> f64 {
    let [rho, mx, my, e] = *s;
    ((GAMMA - 1.0) * (e - 0.5 * (mx * mx + my * my) / rho)).max(P_FLOOR)
}

#[inline]
fn sound_speed(s: &State) -> f64 {
    (GAMMA * pressure(s) / s[0]).sqrt()
}

/// Physical flux along axis 0 (x) or 1 (y).
#[inline]
fn flux(s: &State, axis: usize) -> State {
    let [rho, mx, my, e] = *s;
    let p = pressure(s);
    match axis {
        0 => {
            let u = mx / rho;
            [mx, mx * u + p, my * u, (e + p) * u]
        }
        _ => {
            let v = my / rho;
            [my, mx * v, my * v + p, (e + p) * v]
        }
    }
}

/// Rusanov numerical flux between `l` and `r` along `axis`.
#[inline]
fn rusanov(l: &State, r: &State, axis: usize) -> State {
    let fl = flux(l, axis);
    let fr = flux(r, axis);
    let vl = (l[1 + axis] / l[0]).abs() + sound_speed(l);
    let vr = (r[1 + axis] / r[0]).abs() + sound_speed(r);
    let smax = vl.max(vr);
    [
        0.5 * (fl[0] + fr[0]) - 0.5 * smax * (r[0] - l[0]),
        0.5 * (fl[1] + fr[1]) - 0.5 * smax * (r[1] - l[1]),
        0.5 * (fl[2] + fr[2]) - 0.5 * smax * (r[2] - l[2]),
        0.5 * (fl[3] + fr[3]) - 0.5 * smax * (r[3] - l[3]),
    ]
}

/// The four conserved fields of one time level.
struct Conserved {
    rho: Grid2<f64>,
    mx: Grid2<f64>,
    my: Grid2<f64>,
    en: Grid2<f64>,
}

impl Conserved {
    fn zeros(nx: i64, ny: i64) -> Self {
        Self {
            rho: numerics::zeros(nx, ny),
            mx: numerics::zeros(nx, ny),
            my: numerics::zeros(nx, ny),
            en: numerics::zeros(nx, ny),
        }
    }

    /// Conserved state at `(x, y)` with reflective-x / periodic-y ghost
    /// handling.
    #[inline]
    fn state(&self, nx: i64, ny: i64, x: i64, y: i64) -> State {
        let yy = y.rem_euclid(ny);
        let (xx, flip) = if x < 0 {
            (-1 - x, true)
        } else if x >= nx {
            (2 * nx - 1 - x, true)
        } else {
            (x, false)
        };
        let p = Point2::new(xx, yy);
        let mut s = [
            *self.rho.get(p),
            *self.mx.get(p),
            *self.my.get(p),
            *self.en.get(p),
        ];
        if flip {
            s[1] = -s[1];
        }
        s
    }
}

/// Shock-tube Euler kernel with a perturbed heavy-fluid interface
/// (see module docs).
pub struct Rm2d {
    cur: Conserved,
    next: Conserved,
    indicator: Grid2<f64>,
    scratch: Grid2<f64>,
    nx: i64,
    ny: i64,
    dt: f64,
    substeps: u32,
    time: f64,
}

impl Rm2d {
    /// Create the kernel on a `2n x n` reference grid sized for `steps`
    /// coarse steps; `seed` randomizes the interface perturbation phases.
    pub fn new(ny: i64, steps: u32, seed: u64) -> Self {
        assert!(ny >= 8 && steps >= 1);
        let nx = 2 * ny;
        let dx = LX / nx as f64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2d2d_0000);
        let phi1: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let phi2: f64 = rng.random_range(0.0..std::f64::consts::TAU);

        // Rankine-Hugoniot post-shock state for a Mach-`MACH` shock in the
        // light fluid (rho=1, p=1, u=0).
        let m2 = MACH * MACH;
        let p_post = (2.0 * GAMMA * m2 - (GAMMA - 1.0)) / (GAMMA + 1.0);
        let rho_post = (GAMMA + 1.0) * m2 / ((GAMMA - 1.0) * m2 + 2.0);
        let shock_speed = MACH * GAMMA.sqrt(); // c1 = sqrt(γ·p1/ρ1) = sqrt(γ)
        let u_post = shock_speed * (1.0 - 1.0 / rho_post);

        let interface = move |y: f64| -> f64 {
            X_INTERFACE
                + 0.035 * (std::f64::consts::TAU * 2.0 * y + phi1).sin()
                + 0.018 * (std::f64::consts::TAU * 5.0 * y + phi2).sin()
        };

        let prim_init = move |ux: f64, uy: f64| -> (f64, f64, f64) {
            // (rho, u, p)
            if ux < X_SHOCK {
                (rho_post, u_post, p_post)
            } else {
                // Smooth heavy/light transition over ~1.5 cells.
                let t = 0.5 * (1.0 + ((ux - interface(uy)) / (1.5 * dx)).tanh());
                (1.0 + (DENSITY_RATIO - 1.0) * t, 0.0, 1.0)
            }
        };

        let mut cur = Conserved::zeros(nx, ny);
        numerics::par_rows_n(
            [&mut cur.rho, &mut cur.mx, &mut cur.my, &mut cur.en],
            |x, y| {
                let ux = (x as f64 + 0.5) * dx;
                let uy = (y as f64 + 0.5) * dx;
                let (r, u, p) = prim_init(ux, uy);
                [r, r * u, 0.0, p / (GAMMA - 1.0) + 0.5 * r * u * u]
            },
        );

        let coarse_dt = T_FINAL / steps as f64;
        let dt_max = CFL * dx / SMAX_BOUND;
        let substeps = (coarse_dt / dt_max).ceil().max(1.0) as u32;
        let dt = coarse_dt / substeps as f64;

        let mut k = Self {
            next: Conserved::zeros(nx, ny),
            indicator: numerics::zeros(nx, ny),
            scratch: numerics::zeros(nx, ny),
            cur,
            nx,
            ny,
            dt,
            substeps,
            time: 0.0,
        };
        k.refresh_indicator();
        k
    }

    fn refresh_indicator(&mut self) {
        numerics::gradient_magnitude(&self.cur.rho, &mut self.scratch);
        std::mem::swap(&mut self.indicator, &mut self.scratch);
        numerics::normalize_max(&mut self.indicator);
    }

    /// Total mass (for conservation tests).
    pub fn total_mass(&self) -> f64 {
        self.cur.rho.sum()
    }

    /// Total energy (for conservation tests).
    pub fn total_energy(&self) -> f64 {
        self.cur.en.sum()
    }

    /// Density field (for tests and demos).
    pub fn density(&self) -> &Grid2<f64> {
        &self.cur.rho
    }

    /// Absolute transverse momentum (vorticity-deposition proxy, tests).
    pub fn transverse_momentum(&self) -> f64 {
        self.cur.my.data().iter().map(|v| v.abs()).sum()
    }

    /// Minimum density and pressure over the grid (positivity checks).
    pub fn min_rho_p(&self) -> (f64, f64) {
        let d = self.cur.rho.domain();
        let mut mr = f64::MAX;
        let mut mp = f64::MAX;
        for y in d.lo().y..=d.hi().y {
            for x in d.lo().x..=d.hi().x {
                let s = self.cur.state(self.nx, self.ny, x, y);
                mr = mr.min(s[0]);
                mp = mp.min(pressure(&s));
            }
        }
        (mr, mp)
    }

    #[cfg(test)]
    fn state(&self, x: i64, y: i64) -> State {
        self.cur.state(self.nx, self.ny, x, y)
    }
}

impl Kernel for Rm2d {
    fn name(&self) -> &'static str {
        "RM2D"
    }

    fn description(&self) -> String {
        format!(
            "Richtmyer-Meshkov instability: Mach-{MACH} shock over a perturbed interface, {}x{} reference grid",
            self.nx, self.ny
        )
    }

    fn advance_coarse_step(&mut self) {
        let dx = LX / self.nx as f64;
        let lam = self.dt / dx;
        let (nx, ny) = (self.nx, self.ny);
        for _ in 0..self.substeps {
            let cur = &self.cur;
            numerics::par_rows_n(
                [
                    &mut self.next.rho,
                    &mut self.next.mx,
                    &mut self.next.my,
                    &mut self.next.en,
                ],
                |x, y| {
                    let c = cur.state(nx, ny, x, y);
                    let w = cur.state(nx, ny, x - 1, y);
                    let e = cur.state(nx, ny, x + 1, y);
                    let s = cur.state(nx, ny, x, y - 1);
                    let n = cur.state(nx, ny, x, y + 1);
                    let fxp = rusanov(&c, &e, 0);
                    let fxm = rusanov(&w, &c, 0);
                    let fyp = rusanov(&c, &n, 1);
                    let fym = rusanov(&s, &c, 1);
                    let mut out = [0.0; 4];
                    for k in 0..4 {
                        out[k] = c[k] - lam * (fxp[k] - fxm[k] + fyp[k] - fym[k]);
                    }
                    // Positivity floors.
                    out[0] = out[0].max(RHO_FLOOR);
                    let ke = 0.5 * (out[1] * out[1] + out[2] * out[2]) / out[0];
                    let p = (GAMMA - 1.0) * (out[3] - ke);
                    if p < P_FLOOR {
                        out[3] = ke + P_FLOOR / (GAMMA - 1.0);
                    }
                    out
                },
            );
            std::mem::swap(&mut self.cur, &mut self.next);
            self.time += self.dt;
        }
        self.refresh_indicator();
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn indicator_field(&self) -> &Grid2<f64> {
        &self.indicator
    }

    fn threshold(&self, level: usize) -> f64 {
        geometric_threshold(0.09, 1.8, level)
    }

    fn aspect(&self) -> (i64, i64) {
        (2, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Rm2d {
        Rm2d::new(24, 20, 5)
    }

    #[test]
    fn rankine_hugoniot_state_is_supersonic_push() {
        // Sanity of the closed-form post-shock state used in `new`.
        let m2 = MACH * MACH;
        let p_post = (2.0 * GAMMA * m2 - (GAMMA - 1.0)) / (GAMMA + 1.0);
        let rho_post = (GAMMA + 1.0) * m2 / ((GAMMA - 1.0) * m2 + 2.0);
        assert!(p_post > 2.0 && p_post < 3.0);
        assert!(rho_post > 1.5 && rho_post < 2.5);
    }

    #[test]
    fn mass_is_conserved_exactly() {
        let mut k = kernel();
        let m0 = k.total_mass();
        for _ in 0..3 {
            k.advance_coarse_step();
        }
        let m1 = k.total_mass();
        assert!(((m1 - m0) / m0).abs() < 1e-10, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn energy_is_conserved_exactly() {
        let mut k = kernel();
        let e0 = k.total_energy();
        for _ in 0..3 {
            k.advance_coarse_step();
        }
        let e1 = k.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 1e-10,
            "energy drifted: {e0} -> {e1}"
        );
    }

    #[test]
    fn positivity_is_maintained() {
        let mut k = kernel();
        for _ in 0..5 {
            k.advance_coarse_step();
        }
        let (mr, mp) = k.min_rho_p();
        assert!(mr > 0.0 && mp > 0.0, "rho={mr} p={mp}");
    }

    #[test]
    fn shock_propagates_right() {
        let mut k = kernel();
        let before = k.density().clone();
        for _ in 0..2 {
            k.advance_coarse_step();
        }
        assert!(k.cur.mx.sum() > 0.0);
        let diff: f64 = before
            .data()
            .iter()
            .zip(k.density().data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0, "density field frozen: {diff}");
    }

    #[test]
    fn interface_fingers_grow_transverse_motion() {
        let mut k = kernel();
        // Before the shock reaches the interface there is no transverse
        // momentum; after passage, baroclinic deposition creates it.
        let my0 = k.transverse_momentum();
        for _ in 0..8 {
            k.advance_coarse_step();
        }
        let my1 = k.transverse_momentum();
        assert!(my0 < 1e-12);
        assert!(my1 > 1e-3, "no vorticity deposited: {my1}");
    }

    #[test]
    fn reflective_and_periodic_ghosts() {
        let k = kernel();
        // Reflective x: ghost mirrors with flipped u.
        let inside = k.state(0, 3);
        let ghost = k.state(-1, 3);
        assert_eq!(inside[0], ghost[0]);
        assert_eq!(inside[1], -ghost[1]);
        // Periodic y.
        assert_eq!(k.state(5, -1), k.state(5, k.ny - 1));
        assert_eq!(k.state(5, k.ny), k.state(5, 0));
    }

    #[test]
    fn indicator_tracks_density_gradients() {
        let mut k = kernel();
        k.advance_coarse_step();
        assert!(k.indicator_field().max_abs() > 0.99);
        // After one step (t = 0.1) the incident shock is near x ≈ 0.58 and
        // nothing has disturbed the far-right heavy fluid yet: the
        // indicator must be quiescent there.
        assert!(k.indicator(0.95, 0.5) < 0.05);
    }

    #[test]
    fn aspect_is_two_to_one() {
        assert_eq!(kernel().aspect(), (2, 1));
    }
}
