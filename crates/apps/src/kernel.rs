//! The application-kernel interface consumed by the trace generator.

use samr_geom::Grid2;

use crate::numerics;

/// A reference PDE solver driving SAMR adaptation.
///
/// A kernel advances its own uniform reference solution (at a resolution
/// chosen at construction) and exposes a *normalized feature indicator*
/// over the unit square: the trace generator samples the indicator at each
/// refinement level's cell centers and flags cells where it exceeds the
/// level's threshold. This mirrors the paper's trace methodology: the
/// hierarchy sequence depends on the application physics only, never on
/// the partitioning.
pub trait Kernel {
    /// Short kernel name as used in the paper ("TP2D", "BL2D", …).
    fn name(&self) -> &'static str;

    /// One-line description of the scenario.
    fn description(&self) -> String;

    /// Advance the reference solution by one coarse time step and refresh
    /// the indicator field.
    fn advance_coarse_step(&mut self);

    /// Current physical time.
    fn time(&self) -> f64;

    /// The indicator field over the reference grid, normalized to `[0,1]`.
    fn indicator_field(&self) -> &Grid2<f64>;

    /// Feature indicator at unit-square coordinates (bilinear sample of
    /// [`Kernel::indicator_field`]).
    fn indicator(&self, u: f64, v: f64) -> f64 {
        numerics::sample_unit(self.indicator_field(), u, v)
    }

    /// Flagging threshold for refinement level `level` (flag a level-
    /// `level` cell when the indicator at its center exceeds this).
    /// Thresholds must be non-decreasing in `level` so that deeper levels
    /// refine progressively narrower bands around the strongest features.
    fn threshold(&self, level: usize) -> f64;

    /// Aspect ratio hint `(wx, wy)`: relative extents of the physical
    /// domain. The trace generator uses it to pick a base grid of matching
    /// shape (RM2D runs in a 2:1 shock tube; the others are square).
    fn aspect(&self) -> (i64, i64) {
        (1, 1)
    }
}

/// Exponentially tightening per-level thresholds: `base * ratio^level`,
/// clamped to 0.95. The common choice for all four kernels; each picks its
/// own `base` and `ratio`.
pub fn geometric_threshold(base: f64, growth: f64, level: usize) -> f64 {
    (base * growth.powi(level as i32)).min(0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_threshold_grows_and_clamps() {
        let t0 = geometric_threshold(0.1, 1.8, 0);
        let t1 = geometric_threshold(0.1, 1.8, 1);
        let t5 = geometric_threshold(0.1, 1.8, 5);
        assert!((t0 - 0.1).abs() < 1e-12);
        assert!(t1 > t0);
        assert!(t5 <= 0.95);
        assert_eq!(geometric_threshold(0.9, 3.0, 4), 0.95);
    }
}
