//! Shared numerics for the reference solvers: clamped stencil access,
//! gradient indicators, bilinear sampling and deterministic data-parallel
//! row sweeps.

use samr_geom::{Grid2, Point2, Rect2};
use std::sync::OnceLock;

/// Hardware thread count, probed once per process. The row sweeps run
/// once per field per time step, and `available_parallelism` is a
/// syscall on most platforms — not something to pay in a hot loop.
fn hardware_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Read a cell with coordinates clamped to the domain (zero-gradient /
/// outflow extrapolation at walls).
#[inline]
pub fn clamped(g: &Grid2<f64>, x: i64, y: i64) -> f64 {
    let d = g.domain();
    let cx = x.clamp(d.lo().x, d.hi().x);
    let cy = y.clamp(d.lo().y, d.hi().y);
    *g.get(Point2::new(cx, cy))
}

/// Read a cell with the y coordinate wrapped periodically and x clamped
/// (channel topology used by RM2D).
#[inline]
pub fn periodic_y(g: &Grid2<f64>, x: i64, y: i64) -> f64 {
    let d = g.domain();
    let ny = d.extent().y;
    let cy = d.lo().y + (y - d.lo().y).rem_euclid(ny);
    let cx = x.clamp(d.lo().x, d.hi().x);
    *g.get(Point2::new(cx, cy))
}

/// Central-difference gradient magnitude of `g`, written into `out`
/// (both over the same domain). Units: per cell width.
///
/// One row-slice pass: the three stencil rows (y-1, y, y+1, clamped)
/// are fetched once per row and every cell is a handful of slice reads
/// instead of four `clamped` point lookups — same cells, same
/// operations, bit-identical results.
pub fn gradient_magnitude(g: &Grid2<f64>, out: &mut Grid2<f64>) {
    let d = g.domain();
    assert_eq!(d, out.domain());
    let nx = d.extent().x as usize;
    for y in d.lo().y..=d.hi().y {
        let cur = g.row(y);
        let up = g.row((y + 1).min(d.hi().y));
        let down = g.row((y - 1).max(d.lo().y));
        let row_out = out.row_mut(y);
        for i in 0..nx {
            let gx = 0.5 * (cur[(i + 1).min(nx - 1)] - cur[i.saturating_sub(1)]);
            let gy = 0.5 * (up[i] - down[i]);
            row_out[i] = (gx * gx + gy * gy).sqrt();
        }
    }
}

/// Normalize `g` in place to `[0, 1]` by its maximum absolute value; an
/// all-zero field stays zero. Returns the maximum used.
pub fn normalize_max(g: &mut Grid2<f64>) -> f64 {
    let m = g.max_abs();
    if m > 0.0 {
        let inv = 1.0 / m;
        for v in g.data_mut() {
            *v *= inv;
        }
    }
    m
}

/// Bilinear sample of a cell-centered grid at *unit-square* coordinates
/// `(u, v) ∈ [0,1]²` mapped over the grid's domain. Values outside are
/// clamped.
pub fn sample_unit(g: &Grid2<f64>, u: f64, v: f64) -> f64 {
    let d = g.domain();
    let nx = d.extent().x as f64;
    let ny = d.extent().y as f64;
    // Cell centers sit at (i + 0.5) / n in unit coordinates.
    let fx = (u * nx - 0.5).clamp(0.0, nx - 1.0);
    let fy = (v * ny - 0.5).clamp(0.0, ny - 1.0);
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = fx - x0;
    let ty = fy - y0;
    let (x0, y0) = (d.lo().x + x0 as i64, d.lo().y + y0 as i64);
    let s00 = clamped(g, x0, y0);
    let s10 = clamped(g, x0 + 1, y0);
    let s01 = clamped(g, x0, y0 + 1);
    let s11 = clamped(g, x0 + 1, y0 + 1);
    s00 * (1.0 - tx) * (1.0 - ty) + s10 * tx * (1.0 - ty) + s01 * (1.0 - tx) * ty + s11 * tx * ty
}

/// Deterministic data-parallel row sweep: compute `f(x, y)` for every cell
/// of `domain` into `out`, with rows distributed over threads in
/// contiguous bands. The result is identical for any thread count because
/// `f` is a pure per-cell function and each thread writes a disjoint band.
pub fn par_rows(out: &mut Grid2<f64>, f: impl Fn(i64, i64) -> f64 + Sync) {
    let domain = out.domain();
    let ny = domain.extent().y as usize;
    let nx = domain.extent().x as usize;
    let threads = hardware_threads().min(ny.max(1)).min(8);
    if threads <= 1 || ny < 32 {
        for y in domain.lo().y..=domain.hi().y {
            let row = out.row_mut(y);
            for (i, v) in row.iter_mut().enumerate() {
                *v = f(domain.lo().x + i as i64, y);
            }
        }
        return;
    }
    let data = out.data_mut();
    let rows_per = ny.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut y0 = domain.lo().y;
        for _ in 0..threads {
            let band_rows = rows_per.min(((domain.hi().y - y0 + 1).max(0)) as usize);
            if band_rows == 0 {
                break;
            }
            let (band, tail) = rest.split_at_mut(band_rows * nx);
            rest = tail;
            let fy0 = y0;
            let fref = &f;
            s.spawn(move || {
                for (r, chunk) in band.chunks_mut(nx).enumerate() {
                    let y = fy0 + r as i64;
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = fref(domain.lo().x + i as i64, y);
                    }
                }
            });
            y0 += band_rows as i64;
        }
    });
}

/// Allocate a zero field over `[0,nx-1] x [0,ny-1]`.
pub fn zeros(nx: i64, ny: i64) -> Grid2<f64> {
    Grid2::new(Rect2::from_extents(nx, ny), 0.0)
}

/// Multi-field variant of [`par_rows`]: compute `N` fields in one sweep
/// (`f(x, y)` returns all `N` cell values). Used by the Euler solver where
/// the four conserved components share one flux computation.
pub fn par_rows_n<const N: usize>(
    outs: [&mut Grid2<f64>; N],
    f: impl Fn(i64, i64) -> [f64; N] + Sync,
) {
    let domain = outs[0].domain();
    for o in outs.iter().skip(1) {
        assert_eq!(o.domain(), domain, "all output fields must share a domain");
    }
    let ny = domain.extent().y as usize;
    let nx = domain.extent().x as usize;
    let threads = hardware_threads().min(ny.max(1)).min(8);
    if threads <= 1 || ny < 32 {
        let mut slices: Vec<&mut [f64]> = outs.into_iter().map(|g| g.data_mut()).collect();
        for (r, y) in (domain.lo().y..=domain.hi().y).enumerate() {
            for i in 0..nx {
                let vals = f(domain.lo().x + i as i64, y);
                for (k, s) in slices.iter_mut().enumerate() {
                    s[r * nx + i] = vals[k];
                }
            }
        }
        return;
    }
    let rows_per = ny.div_ceil(threads);
    let mut rests: Vec<&mut [f64]> = outs.into_iter().map(|g| g.data_mut()).collect();
    std::thread::scope(|s| {
        let mut y0 = domain.lo().y;
        while y0 <= domain.hi().y {
            let band_rows = rows_per.min((domain.hi().y - y0 + 1) as usize);
            let mut bands: Vec<&mut [f64]> = Vec::with_capacity(N);
            for r in rests.iter_mut() {
                let taken = std::mem::take(r);
                let (band, tail) = taken.split_at_mut(band_rows * nx);
                *r = tail;
                bands.push(band);
            }
            let fy0 = y0;
            let fref = &f;
            s.spawn(move || {
                for r in 0..band_rows {
                    let y = fy0 + r as i64;
                    for i in 0..nx {
                        let vals = fref(domain.lo().x + i as i64, y);
                        for (k, b) in bands.iter_mut().enumerate() {
                            b[r * nx + i] = vals[k];
                        }
                    }
                }
            });
            y0 += band_rows as i64;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_extends_edges() {
        let g = Grid2::from_fn(Rect2::from_extents(3, 3), |p| (p.x + 10 * p.y) as f64);
        assert_eq!(clamped(&g, -5, 0), 0.0);
        assert_eq!(clamped(&g, 5, 2), 22.0);
        assert_eq!(clamped(&g, 1, -1), 1.0);
    }

    #[test]
    fn periodic_y_wraps() {
        let g = Grid2::from_fn(Rect2::from_extents(2, 4), |p| p.y as f64);
        assert_eq!(periodic_y(&g, 0, 4), 0.0);
        assert_eq!(periodic_y(&g, 0, -1), 3.0);
        assert_eq!(periodic_y(&g, 0, 7), 3.0);
        assert_eq!(periodic_y(&g, -3, 2), 2.0); // x clamps
    }

    #[test]
    fn gradient_of_linear_ramp_is_constant() {
        let g = Grid2::from_fn(Rect2::from_extents(8, 8), |p| 3.0 * p.x as f64);
        let mut out = zeros(8, 8);
        gradient_magnitude(&g, &mut out);
        // Interior cells see the exact slope 3; edges see half (clamped).
        assert!((out.get(Point2::new(4, 4)) - 3.0).abs() < 1e-12);
        assert!((out.get(Point2::new(0, 4)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_max_scales_to_unit() {
        let mut g = Grid2::from_fn(Rect2::from_extents(4, 4), |p| -(p.x as f64));
        let m = normalize_max(&mut g);
        assert_eq!(m, 3.0);
        assert_eq!(g.max_abs(), 1.0);
        let mut z = zeros(4, 4);
        assert_eq!(normalize_max(&mut z), 0.0);
    }

    #[test]
    fn sample_unit_reproduces_cell_centers() {
        let g = Grid2::from_fn(Rect2::from_extents(4, 4), |p| p.x as f64);
        // Center of cell (2, y) is at u = 2.5/4.
        let v = sample_unit(&g, 2.5 / 4.0, 0.5);
        assert!((v - 2.0).abs() < 1e-12);
        // Halfway between cells 1 and 2.
        let v = sample_unit(&g, 2.0 / 4.0, 0.5);
        assert!((v - 1.5).abs() < 1e-12);
        // Clamped outside.
        assert!((sample_unit(&g, -1.0, 0.5) - 0.0).abs() < 1e-12);
        assert!((sample_unit(&g, 2.0, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn par_rows_matches_serial() {
        let mut par = zeros(64, 64);
        par_rows(&mut par, |x, y| (x * 31 + y * 17) as f64 * 0.25);
        let ser = Grid2::from_fn(Rect2::from_extents(64, 64), |p| {
            (p.x * 31 + p.y * 17) as f64 * 0.25
        });
        assert_eq!(par, ser);
    }

    #[test]
    fn par_rows_small_grid_serial_path() {
        let mut g = zeros(4, 4);
        par_rows(&mut g, |x, y| (x + y) as f64);
        assert_eq!(*g.get(Point2::new(3, 3)), 6.0);
    }

    #[test]
    fn par_rows_n_matches_componentwise() {
        let mut a = zeros(48, 48);
        let mut b = zeros(48, 48);
        par_rows_n([&mut a, &mut b], |x, y| [(x + y) as f64, (x * y) as f64]);
        let ea = Grid2::from_fn(Rect2::from_extents(48, 48), |p| (p.x + p.y) as f64);
        let eb = Grid2::from_fn(Rect2::from_extents(48, 48), |p| (p.x * p.y) as f64);
        assert_eq!(a, ea);
        assert_eq!(b, eb);
    }

    #[test]
    fn par_rows_n_serial_path() {
        let mut a = zeros(4, 4);
        let mut b = zeros(4, 4);
        par_rows_n([&mut a, &mut b], |x, y| [x as f64, y as f64]);
        assert_eq!(*a.get(Point2::new(2, 1)), 2.0);
        assert_eq!(*b.get(Point2::new(2, 1)), 1.0);
    }
}
