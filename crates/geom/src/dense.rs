//! Dense rectangular buffers over a box domain.

use crate::point::Point2;
use crate::rect::Rect2;

/// A dense, row-major 2-D array of `T` covering the cells of a [`Rect2`].
///
/// Used for solution fields in the application kernels and for refinement
/// flag masks feeding the Berger–Rigoutsos clusterer. Indexing is by global
/// cell coordinates (the domain's own index space), which keeps solver
/// stencils and flag transfers free of per-patch offset bookkeeping.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid2<T> {
    domain: Rect2,
    data: Vec<T>,
}

impl<T: Clone> Grid2<T> {
    /// Allocate a grid over `domain`, filled with `fill`.
    pub fn new(domain: Rect2, fill: T) -> Self {
        let n = domain.cells() as usize;
        Self {
            domain,
            data: vec![fill; n],
        }
    }

    /// Re-fill every cell with `value` (reuses the allocation).
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }
}

impl<T> Grid2<T> {
    /// Build a grid from a closure evaluated at every cell.
    pub fn from_fn(domain: Rect2, mut f: impl FnMut(Point2) -> T) -> Self {
        let mut data = Vec::with_capacity(domain.cells() as usize);
        for y in domain.lo().y..=domain.hi().y {
            for x in domain.lo().x..=domain.hi().x {
                data.push(f(Point2::new(x, y)));
            }
        }
        Self { domain, data }
    }

    /// The box this grid covers.
    #[inline]
    pub fn domain(&self) -> Rect2 {
        self.domain
    }

    /// Immutable access to a cell.
    #[inline]
    pub fn get(&self, p: Point2) -> &T {
        &self.data[self.domain.linear_index(p)]
    }

    /// Mutable access to a cell.
    #[inline]
    pub fn get_mut(&mut self, p: Point2) -> &mut T {
        let i = self.domain.linear_index(p);
        &mut self.data[i]
    }

    /// Set a cell.
    #[inline]
    pub fn set(&mut self, p: Point2, v: T) {
        let i = self.domain.linear_index(p);
        self.data[i] = v;
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate `(cell, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Point2, &T)> + '_ {
        self.domain.iter_cells().zip(self.data.iter())
    }

    /// One row of the grid as a slice (cells `lo.x ..= hi.x` at height `y`).
    #[inline]
    pub fn row(&self, y: i64) -> &[T] {
        let w = self.domain.extent().x as usize;
        let start = self.domain.linear_index(Point2::new(self.domain.lo().x, y));
        &self.data[start..start + w]
    }

    /// One row of the grid as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, y: i64) -> &mut [T] {
        let w = self.domain.extent().x as usize;
        let start = self.domain.linear_index(Point2::new(self.domain.lo().x, y));
        &mut self.data[start..start + w]
    }
}

impl Grid2<bool> {
    /// Count the `true` cells (flagged cells for the clusterer).
    pub fn count_true(&self) -> u64 {
        self.data.iter().filter(|&&b| b).count() as u64
    }

    /// Count the `true` cells inside `window`.
    pub fn count_true_in(&self, window: &Rect2) -> u64 {
        match self.domain.intersect(window) {
            None => 0,
            Some(w) => {
                let mut n = 0;
                for y in w.lo().y..=w.hi().y {
                    let row = self.row(y);
                    let off = (w.lo().x - self.domain.lo().x) as usize;
                    let len = w.extent().x as usize;
                    n += row[off..off + len].iter().filter(|&&b| b).count() as u64;
                }
                n
            }
        }
    }
}

impl Grid2<f64> {
    /// Maximum absolute value over the grid (0.0 for an all-zero grid).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Rect2 {
        Rect2::from_coords(-1, -1, 2, 1)
    }

    #[test]
    fn new_fills() {
        let g = Grid2::new(dom(), 7i32);
        assert_eq!(g.data().len(), 12);
        assert!(g.data().iter().all(|&v| v == 7));
    }

    #[test]
    fn from_fn_and_get() {
        let g = Grid2::from_fn(dom(), |p| p.x * 10 + p.y);
        assert_eq!(*g.get(Point2::new(-1, -1)), -11);
        assert_eq!(*g.get(Point2::new(2, 1)), 21);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = Grid2::new(dom(), 0i64);
        g.set(Point2::new(0, 0), 42);
        *g.get_mut(Point2::new(1, 1)) = 9;
        assert_eq!(*g.get(Point2::new(0, 0)), 42);
        assert_eq!(*g.get(Point2::new(1, 1)), 9);
    }

    #[test]
    fn rows_are_contiguous() {
        let g = Grid2::from_fn(dom(), |p| p.x);
        assert_eq!(g.row(0), &[-1, 0, 1, 2]);
        let mut g = g;
        g.row_mut(1)[0] = 99;
        assert_eq!(*g.get(Point2::new(-1, 1)), 99);
    }

    #[test]
    fn iter_matches_domain_order() {
        let g = Grid2::from_fn(dom(), |p| p);
        for (p, v) in g.iter() {
            assert_eq!(p, *v);
        }
    }

    #[test]
    fn bool_counts() {
        let g = Grid2::from_fn(dom(), |p| p.x >= 0);
        assert_eq!(g.count_true(), 9);
        assert_eq!(g.count_true_in(&Rect2::from_coords(0, 0, 2, 1)), 6);
        assert_eq!(g.count_true_in(&Rect2::from_coords(5, 5, 6, 6)), 0);
        // Window partially outside the domain clips.
        assert_eq!(g.count_true_in(&Rect2::from_coords(2, 1, 10, 10)), 1);
    }

    #[test]
    fn f64_reductions() {
        let g = Grid2::from_fn(dom(), |p| -(p.x as f64));
        assert_eq!(g.max_abs(), 2.0);
        assert!((g.sum() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn fill_resets() {
        let mut g = Grid2::new(dom(), 1u8);
        g.fill(3);
        assert!(g.data().iter().all(|&v| v == 3));
    }
}
