//! Dense rectangular buffers over a box domain, generic over the
//! dimension.

use crate::point::Point;
use crate::rect::AABox;

/// A dense, row-major `D`-dimensional array of `T` covering the cells of
/// an [`AABox`].
///
/// Used for solution fields in the application kernels and for refinement
/// flag masks feeding the Berger–Rigoutsos clusterer. Indexing is by
/// global cell coordinates (the domain's own index space), which keeps
/// solver stencils and flag transfers free of per-patch offset
/// bookkeeping.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid<T, const D: usize> {
    domain: AABox<D>,
    data: Vec<T>,
}

/// 2-D dense grid (the historical `Grid2` of the 2-D code base).
pub type Grid2<T> = Grid<T, 2>;

/// 3-D dense grid.
pub type Grid3<T> = Grid<T, 3>;

impl<T: Clone, const D: usize> Grid<T, D> {
    /// Allocate a grid over `domain`, filled with `fill`.
    pub fn new(domain: AABox<D>, fill: T) -> Self {
        let n = domain.cells() as usize;
        Self {
            domain,
            data: vec![fill; n],
        }
    }

    /// Re-fill every cell with `value` (reuses the allocation).
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }
}

impl<T, const D: usize> Grid<T, D> {
    /// Build a grid from a closure evaluated at every cell in row-major
    /// order.
    pub fn from_fn(domain: AABox<D>, mut f: impl FnMut(Point<D>) -> T) -> Self {
        let mut data = Vec::with_capacity(domain.cells() as usize);
        for p in domain.iter_cells() {
            data.push(f(p));
        }
        Self { domain, data }
    }

    /// The box this grid covers.
    #[inline]
    pub fn domain(&self) -> AABox<D> {
        self.domain
    }

    /// Immutable access to a cell.
    #[inline]
    pub fn get(&self, p: Point<D>) -> &T {
        &self.data[self.domain.linear_index(p)]
    }

    /// Mutable access to a cell.
    #[inline]
    pub fn get_mut(&mut self, p: Point<D>) -> &mut T {
        let i = self.domain.linear_index(p);
        &mut self.data[i]
    }

    /// Set a cell.
    #[inline]
    pub fn set(&mut self, p: Point<D>, v: T) {
        let i = self.domain.linear_index(p);
        self.data[i] = v;
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate `(cell, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Point<D>, &T)> + '_ {
        self.domain.iter_cells().zip(self.data.iter())
    }

    /// The axis-0-contiguous runs of `window` as `(run start cell,
    /// backing slice)` pairs in row-major order — the hot-loop iteration
    /// (signatures, window counts, flag scans) that pays one
    /// `linear_index` per run instead of one per cell. `window` must lie
    /// inside the domain.
    pub fn runs_in<'a>(
        &'a self,
        window: &AABox<D>,
    ) -> impl Iterator<Item = (Point<D>, &'a [T])> + 'a {
        debug_assert!(self.domain.contains_rect(window), "{window:?} escapes");
        let len0 = window.extent()[0] as usize;
        Self::rows_of(window).map(move |row| {
            let start = self.domain.linear_index(row);
            (row, &self.data[start..start + len0])
        })
    }

    /// Visit every cell of `window` in row-major order via
    /// [`Grid::runs_in`]. `window` must lie inside the domain.
    pub fn for_each_in(&self, window: &AABox<D>, mut f: impl FnMut(Point<D>, &T)) {
        for (row, run) in self.runs_in(window) {
            for (i, v) in run.iter().enumerate() {
                let mut p = row;
                p[0] += i as i64;
                f(p, v);
            }
        }
    }

    /// Overwrite every cell of `window` (which must lie inside the
    /// domain) with `value`, one contiguous run at a time.
    pub fn fill_in(&mut self, window: &AABox<D>, value: T)
    where
        T: Clone,
    {
        debug_assert!(self.domain.contains_rect(window), "{window:?} escapes");
        let len0 = window.extent()[0] as usize;
        for row in Self::rows_of(window) {
            let start = self.domain.linear_index(row);
            for v in &mut self.data[start..start + len0] {
                *v = value.clone();
            }
        }
    }

    /// Visit every axis-0-contiguous run of `window` as `(run start
    /// cell, mutable backing slice)` in row-major order — the writable
    /// counterpart of [`Grid::runs_in`], paying one `linear_index` per
    /// run instead of one bounds-checked `set` per cell. `window` must
    /// lie inside the domain.
    pub fn for_each_run_mut(&mut self, window: &AABox<D>, mut f: impl FnMut(Point<D>, &mut [T])) {
        debug_assert!(self.domain.contains_rect(window), "{window:?} escapes");
        let len0 = window.extent()[0] as usize;
        for row in Self::rows_of(window) {
            let start = self.domain.linear_index(row);
            f(row, &mut self.data[start..start + len0]);
        }
    }

    /// The start point of every axis-0 run of `window`, in row-major
    /// order.
    fn rows_of(window: &AABox<D>) -> impl Iterator<Item = Point<D>> {
        let lo = window.lo();
        let e = window.extent();
        let rows: u64 = (1..D).map(|i| e[i] as u64).product();
        (0..rows).map(move |idx| {
            let mut rest = idx;
            Point::from_fn(|i| {
                if i == 0 {
                    lo[0]
                } else {
                    let w = e[i] as u64;
                    let c = lo[i] + (rest % w) as i64;
                    rest /= w;
                    c
                }
            })
        })
    }
}

impl<T> Grid<T, 2> {
    /// One row of the grid as a slice (cells `lo.x ..= hi.x` at height
    /// `y`).
    #[inline]
    pub fn row(&self, y: i64) -> &[T] {
        let w = self.domain.extent().x as usize;
        let start = self
            .domain
            .linear_index(Point::<2>::new(self.domain.lo().x, y));
        &self.data[start..start + w]
    }

    /// One row of the grid as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, y: i64) -> &mut [T] {
        let w = self.domain.extent().x as usize;
        let start = self
            .domain
            .linear_index(Point::<2>::new(self.domain.lo().x, y));
        &mut self.data[start..start + w]
    }
}

impl<const D: usize> Grid<bool, D> {
    /// Count the `true` cells (flagged cells for the clusterer).
    pub fn count_true(&self) -> u64 {
        count_set(&self.data)
    }

    /// Count the `true` cells inside `window`.
    pub fn count_true_in(&self, window: &AABox<D>) -> u64 {
        match self.domain.intersect(window) {
            None => 0,
            Some(w) => self.runs_in(&w).map(|(_, run)| count_set(run)).sum(),
        }
    }
}

// ---------------------------------------------------------------------
// Word-at-a-time scans over contiguous `bool` runs.
//
// Flag-field scans (counts, signatures, bounding boxes) spend their time
// walking `&[bool]` runs cell by cell. A `bool` is guaranteed to be one
// byte holding 0x00 or 0x01, so a run can be read eight cells at a time
// as `u64` words: a word's popcount is its number of set cells, a zero
// word is eight clear cells skipped in one compare, and the first/last
// set cell of a word falls out of trailing/leading zero counts.

/// The raw bytes of a `bool` run.
#[inline]
fn bool_bytes(run: &[bool]) -> &[u8] {
    // SAFETY: `bool` has size 1, alignment 1 and the validity invariant
    // that its byte is 0x00 or 0x01, so any `&[bool]` is a valid `&[u8]`
    // of the same length.
    unsafe { std::slice::from_raw_parts(run.as_ptr().cast::<u8>(), run.len()) }
}

#[inline]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"))
}

/// Number of `true` cells in a run, eight cells per step.
pub fn count_set(run: &[bool]) -> u64 {
    let bytes = bool_bytes(run);
    let mut chunks = bytes.chunks_exact(8);
    let mut n = 0u64;
    for c in &mut chunks {
        n += u64::from(word(c).count_ones());
    }
    n + chunks
        .remainder()
        .iter()
        .map(|&b| u64::from(b))
        .sum::<u64>()
}

/// Index of the first `true` cell of a run, skipping clear cells eight
/// at a time.
pub fn first_set(run: &[bool]) -> Option<usize> {
    let bytes = bool_bytes(run);
    let mut chunks = bytes.chunks_exact(8);
    for (i, c) in chunks.by_ref().enumerate() {
        let w = word(c);
        if w != 0 {
            return Some(i * 8 + (w.trailing_zeros() / 8) as usize);
        }
    }
    let tail = chunks.remainder();
    let base = bytes.len() - tail.len();
    tail.iter().position(|&b| b != 0).map(|i| base + i)
}

/// Index of the last `true` cell of a run, scanning from the back eight
/// cells at a time.
pub fn last_set(run: &[bool]) -> Option<usize> {
    let bytes = bool_bytes(run);
    let mut chunks = bytes.rchunks_exact(8);
    for (i, c) in chunks.by_ref().enumerate() {
        let w = word(c);
        if w != 0 {
            let start = bytes.len() - (i + 1) * 8;
            return Some(start + 7 - (w.leading_zeros() / 8) as usize);
        }
    }
    // `rchunks_exact` leaves the *front* of the slice as its remainder.
    chunks.remainder().iter().rposition(|&b| b != 0)
}

/// Add each cell of a run (as 0/1) into `out` element-wise — the inner
/// loop of the flag-signature scan. All-clear words contribute nothing
/// and are skipped in one compare.
pub fn accumulate_set(run: &[bool], out: &mut [u32]) {
    debug_assert_eq!(run.len(), out.len());
    let bytes = bool_bytes(run);
    let mut chunks = bytes.chunks_exact(8);
    let mut i = 0usize;
    for c in &mut chunks {
        let w = word(c);
        if w != 0 {
            for (k, o) in out[i..i + 8].iter_mut().enumerate() {
                *o += ((w >> (8 * k)) & 1) as u32;
            }
        }
        i += 8;
    }
    for (o, &b) in out[i..].iter_mut().zip(chunks.remainder()) {
        *o += u32::from(b);
    }
}

impl<const D: usize> Grid<f64, D> {
    /// Maximum absolute value over the grid (0.0 for an all-zero grid).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point2, Point3};
    use crate::rect::{Box3, Rect2};

    fn dom() -> Rect2 {
        Rect2::from_coords(-1, -1, 2, 1)
    }

    #[test]
    fn new_fills() {
        let g = Grid2::new(dom(), 7i32);
        assert_eq!(g.data().len(), 12);
        assert!(g.data().iter().all(|&v| v == 7));
    }

    #[test]
    fn from_fn_and_get() {
        let g = Grid2::from_fn(dom(), |p| p.x * 10 + p.y);
        assert_eq!(*g.get(Point2::new(-1, -1)), -11);
        assert_eq!(*g.get(Point2::new(2, 1)), 21);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = Grid2::new(dom(), 0i64);
        g.set(Point2::new(0, 0), 42);
        *g.get_mut(Point2::new(1, 1)) = 9;
        assert_eq!(*g.get(Point2::new(0, 0)), 42);
        assert_eq!(*g.get(Point2::new(1, 1)), 9);
    }

    #[test]
    fn rows_are_contiguous() {
        let g = Grid2::from_fn(dom(), |p| p.x);
        assert_eq!(g.row(0), &[-1, 0, 1, 2]);
        let mut g = g;
        g.row_mut(1)[0] = 99;
        assert_eq!(*g.get(Point2::new(-1, 1)), 99);
    }

    #[test]
    fn iter_matches_domain_order() {
        let g = Grid2::from_fn(dom(), |p| p);
        for (p, v) in g.iter() {
            assert_eq!(p, *v);
        }
    }

    #[test]
    fn bool_counts() {
        let g = Grid2::from_fn(dom(), |p| p.x >= 0);
        assert_eq!(g.count_true(), 9);
        assert_eq!(g.count_true_in(&Rect2::from_coords(0, 0, 2, 1)), 6);
        assert_eq!(g.count_true_in(&Rect2::from_coords(5, 5, 6, 6)), 0);
        // Window partially outside the domain clips.
        assert_eq!(g.count_true_in(&Rect2::from_coords(2, 1, 10, 10)), 1);
    }

    #[test]
    fn f64_reductions() {
        let g = Grid2::from_fn(dom(), |p| -(p.x as f64));
        assert_eq!(g.max_abs(), 2.0);
        assert!((g.sum() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn fill_resets() {
        let mut g = Grid2::new(dom(), 1u8);
        g.fill(3);
        assert!(g.data().iter().all(|&v| v == 3));
    }

    #[test]
    fn bool_scans_match_per_cell_reference() {
        // Lengths straddling the 8-cell word boundary, patterns with the
        // set cells at every position within a word.
        for len in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 40, 63, 64, 65] {
            for pat in 0..6u64 {
                let run: Vec<bool> = (0..len)
                    .map(|i| match pat {
                        0 => false,
                        1 => true,
                        2 => i % 3 == 0,
                        3 => i == len - 1,
                        4 => i == 0,
                        _ => (i * 7 + 3) % 11 == 0,
                    })
                    .collect();
                let reference = run.iter().filter(|&&b| b).count() as u64;
                assert_eq!(count_set(&run), reference, "count len={len} pat={pat}");
                assert_eq!(
                    first_set(&run),
                    run.iter().position(|&b| b),
                    "first len={len} pat={pat}"
                );
                assert_eq!(
                    last_set(&run),
                    run.iter().rposition(|&b| b),
                    "last len={len} pat={pat}"
                );
                let mut acc = vec![7u32; len];
                accumulate_set(&run, &mut acc);
                for (i, (&a, &b)) in acc.iter().zip(&run).enumerate() {
                    assert_eq!(a, 7 + u32::from(b), "acc[{i}] len={len} pat={pat}");
                }
            }
        }
    }

    #[test]
    fn three_d_grid_roundtrip() {
        let d = Box3::from_extents(3, 2, 4);
        let mut g = Grid3::from_fn(d, |p| p.x + 10 * p.y + 100 * p.z);
        assert_eq!(g.data().len(), 24);
        assert_eq!(*g.get(Point3::new(2, 1, 3)), 2 + 10 + 300);
        g.set(Point3::new(0, 0, 0), -5);
        assert_eq!(*g.get(Point3::new(0, 0, 0)), -5);
        let flags = Grid3::from_fn(d, |p| p.z == 1);
        assert_eq!(flags.count_true(), 6);
        assert_eq!(flags.count_true_in(&Box3::from_coords(0, 0, 1, 0, 1, 2)), 2);
    }
}
