//! Algebra on lists of boxes: subtraction, disjointification, coalescing
//! and exact union volumes — generic over the dimension.
//!
//! SAMR structures are unions of boxes that frequently overlap (ghost
//! regions vs. owners, level `l+1` projected onto level `l`, old partition
//! fragments vs. new ones). All the measured quantities of the paper —
//! migrated cells, communicated cells, covered workload — are *exact* cell
//! counts over such unions, so these operations are exact integer
//! computations, not floating-point approximations.

use crate::rect::{AABox, Axis};

/// Subtract box `b` from box `a`, appending the (up to `2·D`) disjoint
/// pieces of `a \ b` to `out`. The pieces are produced by slab
/// decomposition from the highest axis down: the parts of `a` below/above
/// `b` along the last axis first, then the remaining slabs on lower axes
/// clamped to the overlap — in 2-D exactly the historical Y-slabs-then-
/// X-slabs order, byte for byte.
pub fn subtract_into<const D: usize>(a: &AABox<D>, b: &AABox<D>, out: &mut Vec<AABox<D>>) {
    let Some(ov) = a.intersect(b) else {
        out.push(*a);
        return;
    };
    if ov == *a {
        return; // fully covered
    }
    let mut rest = *a;
    for i in (0..D).rev() {
        let axis = Axis::from_index(i);
        // Slab below the overlap along this axis.
        if rest.lo().get(axis) < ov.lo().get(axis) {
            out.push(AABox::new(
                rest.lo(),
                rest.hi().with(axis, ov.lo().get(axis) - 1),
            ));
        }
        // Slab above the overlap along this axis.
        if rest.hi().get(axis) > ov.hi().get(axis) {
            out.push(AABox::new(
                rest.lo().with(axis, ov.hi().get(axis) + 1),
                rest.hi(),
            ));
        }
        // Clamp the remainder to the overlap's range on this axis and
        // continue with the lower axes.
        rest = AABox::new(
            rest.lo().with(axis, ov.lo().get(axis)),
            rest.hi().with(axis, ov.hi().get(axis)),
        );
    }
}

/// Subtract box `b` from box `a`, returning the disjoint remainder pieces.
pub fn subtract<const D: usize>(a: &AABox<D>, b: &AABox<D>) -> Vec<AABox<D>> {
    let mut out = Vec::with_capacity(2 * D);
    subtract_into(a, b, &mut out);
    out
}

/// Subtract every box of `bs` from `a`, returning disjoint remainder
/// pieces.
pub fn subtract_all<const D: usize>(a: &AABox<D>, bs: &[AABox<D>]) -> Vec<AABox<D>> {
    let mut current = vec![*a];
    let mut next = Vec::new();
    for b in bs {
        if current.is_empty() {
            break;
        }
        next.clear();
        for piece in &current {
            subtract_into(piece, b, &mut next);
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

/// Rewrite a list of possibly-overlapping boxes as a list of pairwise
/// disjoint boxes covering exactly the same cells. Order of the output is
/// deterministic (a function of input order only).
pub fn disjointify<const D: usize>(boxes: &[AABox<D>]) -> Vec<AABox<D>> {
    let mut result: Vec<AABox<D>> = Vec::with_capacity(boxes.len());
    for b in boxes {
        let mut pieces = vec![*b];
        let mut next = Vec::new();
        for r in &result {
            if pieces.is_empty() {
                break;
            }
            next.clear();
            for p in &pieces {
                subtract_into(p, r, &mut next);
            }
            std::mem::swap(&mut pieces, &mut next);
        }
        result.extend_from_slice(&pieces);
    }
    result
}

/// Exact number of cells in the union of the boxes (overlaps counted
/// once).
pub fn union_cells<const D: usize>(boxes: &[AABox<D>]) -> u64 {
    disjointify(boxes).iter().map(AABox::cells).sum()
}

/// Sum of the cell counts of the boxes (overlaps counted with
/// multiplicity).
pub fn total_cells<const D: usize>(boxes: &[AABox<D>]) -> u64 {
    boxes.iter().map(AABox::cells).sum()
}

/// Number of cells of `a` covered by the union of `bs`.
pub fn covered_cells<const D: usize>(a: &AABox<D>, bs: &[AABox<D>]) -> u64 {
    let clipped: Vec<AABox<D>> = bs.iter().filter_map(|b| a.intersect(b)).collect();
    union_cells(&clipped)
}

/// `true` if the union of `bs` covers every cell of `a`.
pub fn covers<const D: usize>(a: &AABox<D>, bs: &[AABox<D>]) -> bool {
    subtract_all(a, bs).is_empty()
}

/// Try to merge two boxes into one exact bounding box. Succeeds only when
/// they are adjacent (or overlapping) along one axis and identical along
/// every other, i.e. when the bounding union contains exactly the union's
/// cells.
pub fn try_merge<const D: usize>(a: &AABox<D>, b: &AABox<D>) -> Option<AABox<D>> {
    for i in 0..D {
        let axis = Axis::from_index(i);
        let same_footprint =
            (0..D).all(|o| o == i || (a.lo()[o] == b.lo()[o] && a.hi()[o] == b.hi()[o]));
        if same_footprint {
            // Same footprint on the other axes; mergeable if the intervals
            // on `axis` touch or overlap.
            let (alo, ahi) = (a.lo().get(axis), a.hi().get(axis));
            let (blo, bhi) = (b.lo().get(axis), b.hi().get(axis));
            if alo.max(blo) <= ahi.min(bhi) + 1 {
                return Some(a.bounding_union(b));
            }
        }
    }
    None
}

/// Greedily coalesce a list of disjoint boxes, merging pairs that form an
/// exact box until a fixed point. Keeps the union of cells identical
/// while reducing the box count — partitioners use this to emit compact
/// fragment lists.
pub fn coalesce<const D: usize>(boxes: &[AABox<D>]) -> Vec<AABox<D>> {
    let mut list: Vec<AABox<D>> = boxes.to_vec();
    coalesce_in_place(&mut list);
    list
}

/// [`coalesce`] without the input copy: merges `list` in place, producing
/// exactly the output `coalesce` would for the same input order. The
/// allocation-free form the partitioner scratch arenas use on their hot
/// path.
pub fn coalesce_in_place<const D: usize>(list: &mut Vec<AABox<D>>) {
    loop {
        let mut merged_any = false;
        'outer: for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                if let Some(m) = try_merge(&list[i], &list[j]) {
                    list.swap_remove(j);
                    list[i] = m;
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            return;
        }
    }
}

/// Clip every box in `list` against `window`, dropping empty results.
pub fn clip_all<const D: usize>(list: &[AABox<D>], window: &AABox<D>) -> Vec<AABox<D>> {
    list.iter().filter_map(|b| b.intersect(window)).collect()
}

/// Total overlap (in cells, with multiplicity) between two box lists:
/// `Σ_i Σ_j |a_i ∩ b_j|`. This is exactly the inner double sum of the
/// paper's β_m when applied per level, and is exact when each list is
/// internally disjoint (SAMR patches at one level never overlap).
pub fn pairwise_overlap_cells<const D: usize>(a: &[AABox<D>], b: &[AABox<D>]) -> u64 {
    // O(|a|·|b|) with a cheap per-pair rejection. Patch counts per level
    // are tens-to-hundreds, so the quadratic loop is faster in practice
    // than building an interval tree every regrid.
    let mut sum = 0u64;
    for ra in a {
        for rb in b {
            sum += ra.overlap_cells(rb);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn subtract_disjoint_returns_original() {
        let a = r(0, 0, 3, 3);
        let b = r(10, 10, 12, 12);
        assert_eq!(subtract(&a, &b), vec![a]);
    }

    #[test]
    fn subtract_covering_returns_empty() {
        let a = r(1, 1, 2, 2);
        let b = r(0, 0, 3, 3);
        assert!(subtract(&a, &b).is_empty());
    }

    #[test]
    fn subtract_center_hole_produces_four_pieces() {
        let a = r(0, 0, 9, 9);
        let b = r(3, 3, 6, 6);
        let pieces = subtract(&a, &b);
        assert_eq!(pieces.len(), 4);
        assert_eq!(total_cells(&pieces), a.cells() - b.cells());
        // Pieces are disjoint and none touches b.
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn subtract_piece_order_matches_historical_2d_slabs() {
        // Y-slabs (full width) first, then X-slabs of the middle band —
        // the exact output order of the original 2-D implementation.
        let a = r(0, 0, 9, 9);
        let b = r(3, 3, 6, 6);
        assert_eq!(
            subtract(&a, &b),
            vec![r(0, 0, 9, 2), r(0, 7, 9, 9), r(0, 3, 2, 6), r(7, 3, 9, 6)]
        );
    }

    #[test]
    fn subtract_corner_overlap() {
        let a = r(0, 0, 4, 4);
        let b = r(3, 3, 8, 8);
        let pieces = subtract(&a, &b);
        assert_eq!(total_cells(&pieces), a.cells() - a.overlap_cells(&b));
        assert!(covers(&a, &{
            let mut v = pieces.clone();
            v.push(b);
            v
        }));
    }

    #[test]
    fn subtract_all_multiple_holes() {
        let a = r(0, 0, 9, 0); // a 10-cell strip
        let holes = [r(2, 0, 3, 0), r(6, 0, 6, 0)];
        let rest = subtract_all(&a, &holes);
        assert_eq!(total_cells(&rest), 7);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn disjointify_preserves_union() {
        let boxes = [r(0, 0, 5, 5), r(3, 3, 8, 8), r(4, 0, 6, 2)];
        let dis = disjointify(&boxes);
        // Pairwise disjoint.
        for (i, a) in dis.iter().enumerate() {
            for b in &dis[i + 1..] {
                assert!(!a.intersects(b), "{a:?} intersects {b:?}");
            }
        }
        // Same union area (compute by brute force over the bounding box).
        let bb = boxes
            .iter()
            .skip(1)
            .fold(boxes[0], |acc, b| acc.bounding_union(b));
        let mut count = 0u64;
        for c in bb.iter_cells() {
            if boxes.iter().any(|b| b.contains_point(c)) {
                count += 1;
            }
        }
        assert_eq!(union_cells(&boxes), count);
        assert_eq!(total_cells(&dis), count);
    }

    #[test]
    fn union_cells_counts_overlap_once() {
        let boxes = [r(0, 0, 3, 3), r(2, 2, 5, 5)];
        assert_eq!(union_cells(&boxes), 16 + 16 - 4);
        assert_eq!(total_cells(&boxes), 32);
    }

    #[test]
    fn covered_and_covers() {
        let a = r(0, 0, 3, 3);
        assert_eq!(covered_cells(&a, &[r(0, 0, 1, 3), r(2, 0, 3, 3)]), 16);
        assert!(covers(&a, &[r(0, 0, 1, 3), r(2, 0, 3, 3)]));
        assert!(!covers(&a, &[r(0, 0, 1, 3)]));
        assert_eq!(covered_cells(&a, &[r(10, 10, 11, 11)]), 0);
    }

    #[test]
    fn try_merge_adjacent_same_footprint() {
        let a = r(0, 0, 3, 3);
        let b = r(4, 0, 7, 3);
        assert_eq!(try_merge(&a, &b), Some(r(0, 0, 7, 3)));
        // Different footprint: no merge.
        let c = r(4, 0, 7, 2);
        assert_eq!(try_merge(&a, &c), None);
        // Gap: no merge.
        let d = r(5, 0, 7, 3);
        assert_eq!(try_merge(&a, &d), None);
    }

    #[test]
    fn try_merge_vertical() {
        let a = r(0, 0, 3, 1);
        let b = r(0, 2, 3, 5);
        assert_eq!(try_merge(&a, &b), Some(r(0, 0, 3, 5)));
    }

    #[test]
    fn coalesce_reassembles_split_box() {
        let b = r(0, 0, 7, 7);
        let (l, rr) = b.split_at(Axis::X, 3);
        let (t, bt) = l.split_at(Axis::Y, 2);
        let parts = vec![rr, t, bt];
        let merged = coalesce(&parts);
        assert_eq!(merged, vec![b]);
        // The in-place form produces the same result on the same input.
        let mut in_place = parts.clone();
        coalesce_in_place(&mut in_place);
        assert_eq!(in_place, merged);
    }

    #[test]
    fn pairwise_overlap_matches_bruteforce() {
        let a = [r(0, 0, 4, 4), r(6, 0, 9, 4)];
        let b = [r(3, 3, 7, 7), r(0, 0, 1, 1)];
        let mut brute = 0u64;
        for ra in &a {
            for rb in &b {
                brute += ra.intersect(rb).map_or(0, |i| i.cells());
            }
        }
        assert_eq!(pairwise_overlap_cells(&a, &b), brute);
    }

    #[test]
    fn clip_all_drops_empty() {
        let w = r(0, 0, 4, 4);
        let clipped = clip_all(&[r(2, 2, 8, 8), r(9, 9, 10, 10)], &w);
        assert_eq!(clipped, vec![r(2, 2, 4, 4)]);
    }

    #[test]
    fn three_d_center_hole_produces_six_slabs() {
        let a = Box3::from_coords(0, 0, 0, 9, 9, 9);
        let b = Box3::from_coords(3, 3, 3, 6, 6, 6);
        let pieces = subtract(&a, &b);
        assert_eq!(pieces.len(), 6);
        assert_eq!(total_cells(&pieces), a.cells() - b.cells());
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn three_d_coalesce_and_cover() {
        let b = Box3::from_coords(0, 0, 0, 7, 7, 7);
        let (l, r) = b.split_at(Axis::Z, 3);
        let (la, lb) = l.split_at(Axis::X, 1);
        assert_eq!(coalesce(&[r, la, lb]), vec![b]);
        assert!(covers(&b, &[r, la, lb]));
        assert_eq!(union_cells(&[r, la, lb, b]), b.cells());
    }
}
