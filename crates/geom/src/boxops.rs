//! Algebra on lists of boxes: subtraction, disjointification, coalescing
//! and exact union areas.
//!
//! SAMR structures are unions of boxes that frequently overlap (ghost
//! regions vs. owners, level `l+1` projected onto level `l`, old partition
//! fragments vs. new ones). All the measured quantities of the paper —
//! migrated cells, communicated cells, covered workload — are *exact* cell
//! counts over such unions, so these operations are exact integer
//! computations, not floating-point approximations.

use crate::point::Point2;
use crate::rect::{Axis, Rect2};

/// Subtract box `b` from box `a`, appending the (up to 4) disjoint pieces of
/// `a \ b` to `out`. The pieces are produced by slab decomposition: the
/// parts of `a` below/above `b` along Y first, then the left/right parts of
/// the middle slab.
pub fn subtract_into(a: &Rect2, b: &Rect2, out: &mut Vec<Rect2>) {
    let Some(ov) = a.intersect(b) else {
        out.push(*a);
        return;
    };
    if ov == *a {
        return; // fully covered
    }
    // Slab below b.
    if a.lo().y < ov.lo().y {
        out.push(Rect2::new(a.lo(), Point2::new(a.hi().x, ov.lo().y - 1)));
    }
    // Slab above b.
    if a.hi().y > ov.hi().y {
        out.push(Rect2::new(Point2::new(a.lo().x, ov.hi().y + 1), a.hi()));
    }
    // Left part of the middle slab.
    if a.lo().x < ov.lo().x {
        out.push(Rect2::new(
            Point2::new(a.lo().x, ov.lo().y),
            Point2::new(ov.lo().x - 1, ov.hi().y),
        ));
    }
    // Right part of the middle slab.
    if a.hi().x > ov.hi().x {
        out.push(Rect2::new(
            Point2::new(ov.hi().x + 1, ov.lo().y),
            Point2::new(a.hi().x, ov.hi().y),
        ));
    }
}

/// Subtract box `b` from box `a`, returning the disjoint remainder pieces.
pub fn subtract(a: &Rect2, b: &Rect2) -> Vec<Rect2> {
    let mut out = Vec::with_capacity(4);
    subtract_into(a, b, &mut out);
    out
}

/// Subtract every box of `bs` from `a`, returning disjoint remainder pieces.
pub fn subtract_all(a: &Rect2, bs: &[Rect2]) -> Vec<Rect2> {
    let mut current = vec![*a];
    let mut next = Vec::new();
    for b in bs {
        if current.is_empty() {
            break;
        }
        next.clear();
        for piece in &current {
            subtract_into(piece, b, &mut next);
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

/// Rewrite a list of possibly-overlapping boxes as a list of pairwise
/// disjoint boxes covering exactly the same cells. Order of the output is
/// deterministic (a function of input order only).
pub fn disjointify(boxes: &[Rect2]) -> Vec<Rect2> {
    let mut result: Vec<Rect2> = Vec::with_capacity(boxes.len());
    for b in boxes {
        let mut pieces = vec![*b];
        let mut next = Vec::new();
        for r in &result {
            if pieces.is_empty() {
                break;
            }
            next.clear();
            for p in &pieces {
                subtract_into(p, r, &mut next);
            }
            std::mem::swap(&mut pieces, &mut next);
        }
        result.extend_from_slice(&pieces);
    }
    result
}

/// Exact number of cells in the union of the boxes (overlaps counted once).
pub fn union_cells(boxes: &[Rect2]) -> u64 {
    disjointify(boxes).iter().map(Rect2::cells).sum()
}

/// Sum of the cell counts of the boxes (overlaps counted with
/// multiplicity).
pub fn total_cells(boxes: &[Rect2]) -> u64 {
    boxes.iter().map(Rect2::cells).sum()
}

/// Number of cells of `a` covered by the union of `bs`.
pub fn covered_cells(a: &Rect2, bs: &[Rect2]) -> u64 {
    let clipped: Vec<Rect2> = bs.iter().filter_map(|b| a.intersect(b)).collect();
    union_cells(&clipped)
}

/// `true` if the union of `bs` covers every cell of `a`.
pub fn covers(a: &Rect2, bs: &[Rect2]) -> bool {
    subtract_all(a, bs).is_empty()
}

/// Try to merge two boxes into one exact bounding box. Succeeds only when
/// they are adjacent (or overlapping) along one axis and identical along the
/// other, i.e. when the bounding union contains exactly the union's cells.
pub fn try_merge(a: &Rect2, b: &Rect2) -> Option<Rect2> {
    for axis in Axis::ALL {
        let o = axis.other();
        if a.lo().get(o) == b.lo().get(o) && a.hi().get(o) == b.hi().get(o) {
            // Same footprint on the other axis; mergeable if the intervals
            // on `axis` touch or overlap.
            let (alo, ahi) = (a.lo().get(axis), a.hi().get(axis));
            let (blo, bhi) = (b.lo().get(axis), b.hi().get(axis));
            if alo.max(blo) <= ahi.min(bhi) + 1 {
                return Some(a.bounding_union(b));
            }
        }
    }
    None
}

/// Greedily coalesce a list of disjoint boxes, merging pairs that form an
/// exact rectangle until a fixed point. Keeps the union of cells identical
/// while reducing the box count — partitioners use this to emit compact
/// fragment lists.
pub fn coalesce(boxes: &[Rect2]) -> Vec<Rect2> {
    let mut list: Vec<Rect2> = boxes.to_vec();
    loop {
        let mut merged_any = false;
        'outer: for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                if let Some(m) = try_merge(&list[i], &list[j]) {
                    list.swap_remove(j);
                    list[i] = m;
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            return list;
        }
    }
}

/// Clip every box in `list` against `window`, dropping empty results.
pub fn clip_all(list: &[Rect2], window: &Rect2) -> Vec<Rect2> {
    list.iter().filter_map(|b| b.intersect(window)).collect()
}

/// Total overlap (in cells, with multiplicity) between two box lists:
/// `Σ_i Σ_j |a_i ∩ b_j|`. This is exactly the inner double sum of the
/// paper's β_m when applied per level, and is exact when each list is
/// internally disjoint (SAMR patches at one level never overlap).
pub fn pairwise_overlap_cells(a: &[Rect2], b: &[Rect2]) -> u64 {
    // O(|a|·|b|) with an early bounding-box rejection. Patch counts per
    // level are tens-to-hundreds, so the quadratic loop with a cheap filter
    // is faster in practice than building an interval tree every regrid.
    let mut sum = 0u64;
    for ra in a {
        for rb in b {
            sum += ra.overlap_cells(rb);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn subtract_disjoint_returns_original() {
        let a = r(0, 0, 3, 3);
        let b = r(10, 10, 12, 12);
        assert_eq!(subtract(&a, &b), vec![a]);
    }

    #[test]
    fn subtract_covering_returns_empty() {
        let a = r(1, 1, 2, 2);
        let b = r(0, 0, 3, 3);
        assert!(subtract(&a, &b).is_empty());
    }

    #[test]
    fn subtract_center_hole_produces_four_pieces() {
        let a = r(0, 0, 9, 9);
        let b = r(3, 3, 6, 6);
        let pieces = subtract(&a, &b);
        assert_eq!(pieces.len(), 4);
        assert_eq!(total_cells(&pieces), a.cells() - b.cells());
        // Pieces are disjoint and none touches b.
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn subtract_corner_overlap() {
        let a = r(0, 0, 4, 4);
        let b = r(3, 3, 8, 8);
        let pieces = subtract(&a, &b);
        assert_eq!(total_cells(&pieces), a.cells() - a.overlap_cells(&b));
        assert!(covers(&a, &{
            let mut v = pieces.clone();
            v.push(b);
            v
        }));
    }

    #[test]
    fn subtract_all_multiple_holes() {
        let a = r(0, 0, 9, 0); // a 10-cell strip
        let holes = [r(2, 0, 3, 0), r(6, 0, 6, 0)];
        let rest = subtract_all(&a, &holes);
        assert_eq!(total_cells(&rest), 7);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn disjointify_preserves_union() {
        let boxes = [r(0, 0, 5, 5), r(3, 3, 8, 8), r(4, 0, 6, 2)];
        let dis = disjointify(&boxes);
        // Pairwise disjoint.
        for (i, a) in dis.iter().enumerate() {
            for b in &dis[i + 1..] {
                assert!(!a.intersects(b), "{a:?} intersects {b:?}");
            }
        }
        // Same union area (compute by brute force over the bounding box).
        let bb = boxes
            .iter()
            .skip(1)
            .fold(boxes[0], |acc, b| acc.bounding_union(b));
        let mut count = 0u64;
        for c in bb.iter_cells() {
            if boxes.iter().any(|b| b.contains_point(c)) {
                count += 1;
            }
        }
        assert_eq!(union_cells(&boxes), count);
        assert_eq!(total_cells(&dis), count);
    }

    #[test]
    fn union_cells_counts_overlap_once() {
        let boxes = [r(0, 0, 3, 3), r(2, 2, 5, 5)];
        assert_eq!(union_cells(&boxes), 16 + 16 - 4);
        assert_eq!(total_cells(&boxes), 32);
    }

    #[test]
    fn covered_and_covers() {
        let a = r(0, 0, 3, 3);
        assert_eq!(covered_cells(&a, &[r(0, 0, 1, 3), r(2, 0, 3, 3)]), 16);
        assert!(covers(&a, &[r(0, 0, 1, 3), r(2, 0, 3, 3)]));
        assert!(!covers(&a, &[r(0, 0, 1, 3)]));
        assert_eq!(covered_cells(&a, &[r(10, 10, 11, 11)]), 0);
    }

    #[test]
    fn try_merge_adjacent_same_footprint() {
        let a = r(0, 0, 3, 3);
        let b = r(4, 0, 7, 3);
        assert_eq!(try_merge(&a, &b), Some(r(0, 0, 7, 3)));
        // Different footprint: no merge.
        let c = r(4, 0, 7, 2);
        assert_eq!(try_merge(&a, &c), None);
        // Gap: no merge.
        let d = r(5, 0, 7, 3);
        assert_eq!(try_merge(&a, &d), None);
    }

    #[test]
    fn try_merge_vertical() {
        let a = r(0, 0, 3, 1);
        let b = r(0, 2, 3, 5);
        assert_eq!(try_merge(&a, &b), Some(r(0, 0, 3, 5)));
    }

    #[test]
    fn coalesce_reassembles_split_box() {
        let b = r(0, 0, 7, 7);
        let (l, rr) = b.split_at(Axis::X, 3);
        let (t, bt) = l.split_at(Axis::Y, 2);
        let parts = vec![rr, t, bt];
        let merged = coalesce(&parts);
        assert_eq!(merged, vec![b]);
    }

    #[test]
    fn pairwise_overlap_matches_bruteforce() {
        let a = [r(0, 0, 4, 4), r(6, 0, 9, 4)];
        let b = [r(3, 3, 7, 7), r(0, 0, 1, 1)];
        let mut brute = 0u64;
        for ra in &a {
            for rb in &b {
                brute += ra.intersect(rb).map_or(0, |i| i.cells());
            }
        }
        assert_eq!(pairwise_overlap_cells(&a, &b), brute);
    }

    #[test]
    fn clip_all_drops_empty() {
        let w = r(0, 0, 4, 4);
        let clipped = clip_all(&[r(2, 2, 8, 8), r(9, 9, 10, 10)], &w);
        assert_eq!(clipped, vec![r(2, 2, 4, 4)]);
    }
}
