//! Space-filling curves: Morton (Z-order) and Hilbert.
//!
//! Domain-based SAMR partitioners (Parashar–Browne style, and the coarse
//! Core partitioning step of the hybrid partitioner) linearize the base
//! domain with a space-filling curve and cut the 1-D sequence into
//! processor chunks. The paper notes (§5.2) that a *partially ordered* SFC
//! mapping trades ordering quality for speed and may inflate data
//! migration — both full and partial orderings are provided so that this
//! trade-off is reproducible (ablation `ablation_sfc`).

use serde::{Deserialize, Serialize};

/// Which space-filling curve to use for domain linearization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SfcCurve {
    /// Morton / Z-order: bit interleaving. Cheap, moderate locality.
    Morton,
    /// Hilbert curve: better locality (no long jumps), slightly costlier.
    Hilbert,
}

/// Number of bits per axis supported by the `u64` keys (32 bits per axis
/// when interleaved).
pub const MAX_ORDER: u32 = 31;

/// Interleave the low 32 bits of `v` with zeros ("part 1 by 1").
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut x = v & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: compact every other bit.
#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x
}

/// Morton key of a non-negative cell coordinate pair.
#[inline]
pub fn morton_key(x: u64, y: u64) -> u64 {
    debug_assert!(x < (1 << 32) && y < (1 << 32));
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse Morton: key back to `(x, y)`.
#[inline]
pub fn morton_decode(key: u64) -> (u64, u64) {
    (compact1by1(key), compact1by1(key >> 1))
}

/// Hilbert curve distance of the cell `(x, y)` in a `2^order x 2^order`
/// grid, using the classic quadrant-rotation construction.
pub fn hilbert_key(order: u32, x: u64, y: u64) -> u64 {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(x < (1u64 << order) && y < (1u64 << order));
    let n = 1u64 << order;
    let (mut x, mut y) = (x, y);
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-square is traversed in canonical
        // orientation on the next iteration.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse Hilbert: curve distance back to `(x, y)` in a
/// `2^order x 2^order` grid.
pub fn hilbert_decode(order: u32, d: u64) -> (u64, u64) {
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// SFC key of a non-negative cell coordinate pair under the chosen curve.
/// `order` must satisfy `x, y < 2^order`; Morton ignores `order` beyond the
/// debug assertion.
#[inline]
pub fn sfc_key(curve: SfcCurve, order: u32, x: u64, y: u64) -> u64 {
    match curve {
        SfcCurve::Morton => morton_key(x, y),
        SfcCurve::Hilbert => hilbert_key(order, x, y),
    }
}

/// Smallest `order` such that a `2^order` square contains `n` cells per
/// side.
pub fn order_for(n: u64) -> u32 {
    let mut order = 0;
    while (1u64 << order) < n {
        order += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn morton_roundtrip() {
        for x in 0..17u64 {
            for y in 0..17u64 {
                let k = morton_key(x, y);
                assert_eq!(morton_decode(k), (x, y));
            }
        }
    }

    #[test]
    fn morton_first_cells() {
        // Z-order over a 2x2 block: (0,0), (1,0), (0,1), (1,1).
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let order = 4;
        let n = 1u64 << order;
        let mut seen = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_key(order, x, y);
                assert!(d < n * n);
                assert!(seen.insert(d), "duplicate key {d} at ({x},{y})");
                assert_eq!(hilbert_decode(order, d), (x, y));
            }
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining property of the Hilbert curve: consecutive keys map
        // to 4-adjacent cells. Morton does not have it; Hilbert must.
        let order = 5;
        let n = 1u64 << order;
        let mut prev = hilbert_decode(order, 0);
        for d in 1..n * n {
            let cur = hilbert_decode(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn morton_has_jumps_hilbert_does_not() {
        // Sanity check that the two curves are genuinely different.
        let order = 3;
        let n = 1u64 << order;
        let mut morton_jumps = 0;
        for d in 1..n * n {
            let a = morton_decode(d - 1);
            let b = morton_decode(d);
            if (b.0 as i64 - a.0 as i64).abs() + (b.1 as i64 - a.1 as i64).abs() > 1 {
                morton_jumps += 1;
            }
        }
        assert!(morton_jumps > 0);
    }

    #[test]
    fn order_for_sizes() {
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(64), 6);
        assert_eq!(order_for(65), 7);
    }

    #[test]
    fn sfc_key_dispatch() {
        assert_eq!(sfc_key(SfcCurve::Morton, 4, 3, 5), morton_key(3, 5));
        assert_eq!(sfc_key(SfcCurve::Hilbert, 4, 3, 5), hilbert_key(4, 3, 5));
    }
}
