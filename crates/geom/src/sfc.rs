//! Space-filling curves: Morton (Z-order) and Hilbert, in 2-D and 3-D.
//!
//! Domain-based SAMR partitioners (Parashar–Browne style, and the coarse
//! Core partitioning step of the hybrid partitioner) linearize the base
//! domain with a space-filling curve and cut the 1-D sequence into
//! processor chunks. The paper notes (§5.2) that a *partially ordered* SFC
//! mapping trades ordering quality for speed and may inflate data
//! migration — both full and partial orderings are provided so that this
//! trade-off is reproducible (ablation `ablation_sfc`).
//!
//! The 2-D curves are bit-identical to the historical implementations of
//! the original 2-D code base; the 3-D Hilbert curve uses Skilling's
//! transpose construction ("Programming the Hilbert curve", AIP 2004),
//! which generalizes the quadrant-rotation idea to any dimension.
//!
//! ## Implementation notes
//!
//! Key generation sits on the hot path of every domain-based partitioner
//! (one key per base cell per regrid), so the public functions are the
//! *optimized* implementations: bulk Morton interleaving ([`morton_keys`]
//! and friends, fed by [`sfc_keys_nd`]) dispatches once per batch to the
//! best instruction set the CPU executes ([`BatchIsa`]) — BMI2
//! `pdep`/`pext` parallel-bit instructions first, then four-lane AVX2
//! magic-mask ladders, then the portable scalar loop — so the
//! `#[target_feature]` loop inlines the intrinsics; and the Hilbert
//! loops are branchless: the
//! quadrant reflection `n-1-x` is an XOR with `n-1` for power-of-two `n`,
//! so reflect-and-swap becomes mask arithmetic with no data-dependent
//! branches. The straightforward scalar implementations are retained in
//! [`scalar`] as the reference oracles; property tests assert the
//! optimized paths are **bit-identical** to them for every order and both
//! dimensions.

use serde::{Deserialize, Serialize};

/// Which space-filling curve to use for domain linearization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SfcCurve {
    /// Morton / Z-order: bit interleaving. Cheap, moderate locality.
    Morton,
    /// Hilbert curve: better locality (no long jumps), slightly costlier.
    Hilbert,
}

/// Number of bits per axis supported by the `u64` keys in 2-D (32 bits
/// per axis when interleaved).
pub const MAX_ORDER: u32 = 31;

/// Number of bits per axis supported by the `u64` keys in 3-D (21 bits
/// per axis when interleaved).
pub const MAX_ORDER_3D: u32 = 21;

/// Every-other-bit mask: where [`scalar::part1by1`] deposits the bits of
/// a 2-D coordinate.
const MORTON2_MASK: u64 = 0x5555_5555_5555_5555;

/// Every-third-bit mask: where [`scalar::part1by2`] deposits the bits of
/// a 3-D coordinate.
const MORTON3_MASK: u64 = 0x1249_2492_4924_9249;

/// The straightforward scalar implementations, kept as the reference
/// oracles for the optimized public functions (and as the portable
/// fallback for Morton interleaving on CPUs with neither BMI2 nor
/// AVX2).
///
/// Property tests assert the public `morton_*`/`hilbert_*` functions are
/// bit-identical to these across random coordinates and every order.
pub mod scalar {
    use super::{MAX_ORDER, MAX_ORDER_3D};

    /// Interleave the low 32 bits of `v` with zeros ("part 1 by 1").
    #[inline]
    pub(super) fn part1by1(v: u64) -> u64 {
        let mut x = v & 0xffff_ffff;
        x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
        x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
        x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }

    /// Inverse of [`part1by1`]: compact every other bit.
    #[inline]
    pub(super) fn compact1by1(v: u64) -> u64 {
        let mut x = v & 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
        x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
        x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
        x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
        x
    }

    /// Interleave the low 21 bits of `v` with two zeros each ("part 1 by
    /// 2").
    #[inline]
    pub(super) fn part1by2(v: u64) -> u64 {
        let mut x = v & 0x1f_ffff;
        x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
        x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
        x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
        x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
        x = (x | (x << 2)) & 0x1249_2492_4924_9249;
        x
    }

    /// Inverse of [`part1by2`]: compact every third bit.
    #[inline]
    pub(super) fn compact1by2(v: u64) -> u64 {
        let mut x = v & 0x1249_2492_4924_9249;
        x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
        x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
        x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
        x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
        x = (x | (x >> 32)) & 0x1f_ffff;
        x
    }

    /// Reference Morton key of a non-negative cell coordinate pair.
    #[inline]
    pub fn morton_key(x: u64, y: u64) -> u64 {
        part1by1(x) | (part1by1(y) << 1)
    }

    /// Reference inverse Morton: key back to `(x, y)`.
    #[inline]
    pub fn morton_decode(key: u64) -> (u64, u64) {
        (compact1by1(key), compact1by1(key >> 1))
    }

    /// Reference 3-D Morton key of a non-negative coordinate triple.
    #[inline]
    pub fn morton_key_3d(x: u64, y: u64, z: u64) -> u64 {
        part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
    }

    /// Reference inverse 3-D Morton: key back to `(x, y, z)`.
    #[inline]
    pub fn morton_decode_3d(key: u64) -> (u64, u64, u64) {
        (
            compact1by2(key),
            compact1by2(key >> 1),
            compact1by2(key >> 2),
        )
    }

    /// Reference Hilbert curve distance of the cell `(x, y)` in a
    /// `2^order x 2^order` grid: the classic branchy quadrant-rotation
    /// construction.
    pub fn hilbert_key(order: u32, x: u64, y: u64) -> u64 {
        debug_assert!(order <= MAX_ORDER);
        debug_assert!(x < (1u64 << order) && y < (1u64 << order));
        let n = 1u64 << order;
        let (mut x, mut y) = (x, y);
        let mut d: u64 = 0;
        let mut s: u64 = n / 2;
        while s > 0 {
            let rx = u64::from((x & s) > 0);
            let ry = u64::from((y & s) > 0);
            d += s * s * ((3 * rx) ^ ry);
            // Rotate the quadrant so the sub-square is traversed in
            // canonical orientation on the next iteration.
            if ry == 0 {
                if rx == 1 {
                    x = n - 1 - x;
                    y = n - 1 - y;
                }
                std::mem::swap(&mut x, &mut y);
            }
            s /= 2;
        }
        d
    }

    /// Reference inverse Hilbert: curve distance back to `(x, y)` in a
    /// `2^order x 2^order` grid.
    pub fn hilbert_decode(order: u32, d: u64) -> (u64, u64) {
        let (mut x, mut y) = (0u64, 0u64);
        let mut t = d;
        let mut s = 1u64;
        while s < (1u64 << order) {
            let rx = 1 & (t / 2);
            let ry = 1 & (t ^ rx);
            // Rotate.
            if ry == 0 {
                if rx == 1 {
                    x = s - 1 - x;
                    y = s - 1 - y;
                }
                std::mem::swap(&mut x, &mut y);
            }
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x, y)
    }

    /// Skilling's AxesToTranspose, branchy reference: convert coordinates
    /// (in place) into the "transpose" form of the Hilbert index, `order`
    /// bits per axis. Also the transpose used by the optimized 3-D
    /// encode: the branch-per-bit loop beats the branchless rewrite on
    /// current x86 in this direction (the decode direction is the
    /// opposite — see the private `transpose_to_axes` at module level).
    pub(super) fn axes_to_transpose<const N: usize>(x: &mut [u64; N], order: u32) {
        let m = 1u64 << (order - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..N {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..N {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u64;
        let mut q = m;
        while q > 1 {
            if x[N - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for v in x.iter_mut() {
            *v ^= t;
        }
    }

    /// Skilling's TransposeToAxes, branchy reference: inverse of
    /// [`axes_to_transpose`].
    fn transpose_to_axes<const N: usize>(x: &mut [u64; N], order: u32) {
        let n = 1u64 << order;
        // Gray decode by H ^ (H/2).
        let mut t = x[N - 1] >> 1;
        for i in (1..N).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u64;
        while q != n {
            let p = q - 1;
            for i in (0..N).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Pack a transpose-form Hilbert index into a single `u64` key, one
    /// key bit at a time: bit `b` of axis `i` becomes bit
    /// `(b·N + (N-1-i))` of the key (most significant axis bit first).
    fn transpose_to_key<const N: usize>(x: &[u64; N], order: u32) -> u64 {
        let mut key = 0u64;
        for b in (0..order).rev() {
            for &v in x.iter() {
                key = (key << 1) | ((v >> b) & 1);
            }
        }
        key
    }

    /// Unpack a `u64` key into transpose form (inverse of
    /// [`transpose_to_key`]), one key bit at a time.
    fn key_to_transpose<const N: usize>(key: u64, order: u32) -> [u64; N] {
        let mut x = [0u64; N];
        let total = order * N as u32;
        for bit in 0..total {
            let b = total - 1 - bit; // position in the key, msb first
            let axis = (bit as usize) % N;
            let level = order - 1 - (bit / N as u32);
            x[axis] |= ((key >> b) & 1) << level;
        }
        x
    }

    /// Reference 3-D Hilbert curve distance of the cell `(x, y, z)` in a
    /// `(2^order)^3` grid (Skilling's transpose construction).
    pub fn hilbert_key_3d(order: u32, x: u64, y: u64, z: u64) -> u64 {
        debug_assert!((1..=MAX_ORDER_3D).contains(&order));
        debug_assert!(x < (1u64 << order) && y < (1u64 << order) && z < (1u64 << order));
        let mut c = [x, y, z];
        axes_to_transpose(&mut c, order);
        transpose_to_key(&c, order)
    }

    /// Reference inverse 3-D Hilbert: curve distance back to `(x, y, z)`.
    pub fn hilbert_decode_3d(order: u32, d: u64) -> (u64, u64, u64) {
        debug_assert!((1..=MAX_ORDER_3D).contains(&order));
        let mut c: [u64; 3] = key_to_transpose(d, order);
        transpose_to_axes(&mut c, order);
        (c[0], c[1], c[2])
    }
}

/// The instruction-set tier a batch Morton kernel runs with, chosen
/// **once per batch**: `#[target_feature]` code cannot inline into
/// ordinary callers, so a per-key dispatch pays a real function call per
/// key and loses to the inlined scalar pipeline (see the batch-kernel
/// notes below).
///
/// [`BatchIsa::detect`] picks the best tier this CPU executes; the
/// `*_with` kernel variants ([`morton_keys_with`] and friends) accept an
/// explicit tier so the property-test wall can force every available
/// path — including the scalar fallback — through the same entry points
/// and assert them bit-identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchIsa {
    /// BMI2 `pdep`/`pext`: one parallel-bit-deposit instruction per axis.
    Bmi2,
    /// AVX2: four keys at a time through vectorized magic-mask ladders.
    Avx2,
    /// The portable scalar magic-mask loop (the reference mapping).
    Scalar,
}

impl BatchIsa {
    /// Every tier, best first — the preference order of
    /// [`BatchIsa::detect`].
    pub const ALL: [BatchIsa; 3] = [BatchIsa::Bmi2, BatchIsa::Avx2, BatchIsa::Scalar];

    /// The best tier this CPU executes. Feature detection is cached by
    /// `std` behind an atomic load; the batch kernels pay it once per
    /// batch.
    ///
    /// BMI2 outranks AVX2: two `pdep`s per key beat the four-lane
    /// mask-shift ladder wherever both exist. The AVX2 tier earns its
    /// keep on the cores that ship AVX2 without (fast) BMI2 — there,
    /// four lanes of the five-round ladder beat four scalar pipelines.
    #[inline]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("bmi2") {
                return BatchIsa::Bmi2;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return BatchIsa::Avx2;
            }
        }
        BatchIsa::Scalar
    }

    /// Does this CPU execute the tier? `Scalar` always does; the SIMD
    /// tiers answer the runtime feature checks. The `*_with` kernels
    /// assert this before dispatching.
    #[inline]
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            BatchIsa::Bmi2 => std::arch::is_x86_feature_detected!("bmi2"),
            #[cfg(target_arch = "x86_64")]
            BatchIsa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            BatchIsa::Bmi2 | BatchIsa::Avx2 => false,
            BatchIsa::Scalar => true,
        }
    }
}

/// Morton key of a non-negative cell coordinate pair.
///
/// Single keys stay on the scalar magic-mask interleave: it inlines and
/// auto-vectorizes at the call site, while a `pdep` version must live
/// behind a non-inlinable `#[target_feature]` call whose overhead costs
/// more than the two instructions save. The BMI2 win is real in bulk —
/// use [`morton_keys`] for key streams.
#[inline]
pub fn morton_key(x: u64, y: u64) -> u64 {
    debug_assert!(x < (1 << 32) && y < (1 << 32));
    scalar::morton_key(x, y)
}

/// Inverse Morton: key back to `(x, y)`. Single-key scalar path; bulk
/// decoding goes through [`morton_decodes`].
#[inline]
pub fn morton_decode(key: u64) -> (u64, u64) {
    scalar::morton_decode(key)
}

/// 3-D Morton key of a non-negative cell coordinate triple. Single-key
/// scalar path; bulk encoding goes through [`morton_keys_3d`].
#[inline]
pub fn morton_key_3d(x: u64, y: u64, z: u64) -> u64 {
    debug_assert!(x < (1 << MAX_ORDER_3D) && y < (1 << MAX_ORDER_3D) && z < (1 << MAX_ORDER_3D));
    scalar::morton_key_3d(x, y, z)
}

/// Inverse 3-D Morton: key back to `(x, y, z)`. Single-key scalar path;
/// bulk decoding goes through [`morton_decodes_3d`].
#[inline]
pub fn morton_decode_3d(key: u64) -> (u64, u64, u64) {
    scalar::morton_decode_3d(key)
}

// ---------------------------------------------------------------------
// Batch Morton kernels.
//
// `pdep`/`pext` and AVX2 intrinsics carry `#[target_feature]`, so they
// cannot inline into ordinary functions — a per-key dispatch pays a
// real function call per key and loses to the inlined magic-mask
// pipeline. Hoisting the dispatch to whole-slice granularity
// ([`BatchIsa`]) turns the tables: one cached feature check per batch,
// then a loop *compiled with the feature enabled* in which each key is
// two (2-D) or three (3-D) `pdep`s, or four keys ride one vectorized
// mask-shift ladder. These are the kernels the SFC partitioner's
// unit-ordering pass feeds; each tier is bit-identical to mapping its
// scalar reference over the slice (property-tested per available tier
// in `tests/properties.rs`).

/// Fill `out` with the Morton key of every `[x, y]` pair (clears `out`
/// first). Dispatches to the best tier once per batch.
pub fn morton_keys(coords: &[[u64; 2]], out: &mut Vec<u64>) {
    morton_keys_with(BatchIsa::detect(), coords, out);
}

/// [`morton_keys`] through an explicitly chosen tier, which must be
/// available on this CPU (asserted). Identical output for every tier.
pub fn morton_keys_with(isa: BatchIsa, coords: &[[u64; 2]], out: &mut Vec<u64>) {
    assert!(isa.is_available(), "{isa:?} is not available on this CPU");
    out.clear();
    out.reserve(coords.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Bmi2 => unsafe { morton_keys_bmi2(coords, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Avx2 => unsafe { avx2::morton_keys(coords, out) },
        _ => {
            for c in coords {
                out.push(scalar::morton_key(c[0], c[1]));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn morton_keys_bmi2(coords: &[[u64; 2]], out: &mut Vec<u64>) {
    use std::arch::x86_64::_pdep_u64;
    for c in coords {
        out.push(_pdep_u64(c[0], MORTON2_MASK) | _pdep_u64(c[1], MORTON2_MASK << 1));
    }
}

/// Fill `out` with the `(x, y)` decode of every key (clears `out`
/// first). Dispatches to the best tier once per batch.
pub fn morton_decodes(keys: &[u64], out: &mut Vec<[u64; 2]>) {
    morton_decodes_with(BatchIsa::detect(), keys, out);
}

/// [`morton_decodes`] through an explicitly chosen tier, which must be
/// available on this CPU (asserted). Identical output for every tier.
pub fn morton_decodes_with(isa: BatchIsa, keys: &[u64], out: &mut Vec<[u64; 2]>) {
    assert!(isa.is_available(), "{isa:?} is not available on this CPU");
    out.clear();
    out.reserve(keys.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Bmi2 => unsafe { morton_decodes_bmi2(keys, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Avx2 => unsafe { avx2::morton_decodes(keys, out) },
        _ => {
            for &k in keys {
                let (x, y) = scalar::morton_decode(k);
                out.push([x, y]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn morton_decodes_bmi2(keys: &[u64], out: &mut Vec<[u64; 2]>) {
    use std::arch::x86_64::_pext_u64;
    for &k in keys {
        out.push([_pext_u64(k, MORTON2_MASK), _pext_u64(k, MORTON2_MASK << 1)]);
    }
}

/// Fill `out` with the 3-D Morton key of every `[x, y, z]` triple
/// (clears `out` first). Dispatches to the best tier once per batch.
pub fn morton_keys_3d(coords: &[[u64; 3]], out: &mut Vec<u64>) {
    morton_keys_3d_with(BatchIsa::detect(), coords, out);
}

/// [`morton_keys_3d`] through an explicitly chosen tier, which must be
/// available on this CPU (asserted). Identical output for every tier.
pub fn morton_keys_3d_with(isa: BatchIsa, coords: &[[u64; 3]], out: &mut Vec<u64>) {
    assert!(isa.is_available(), "{isa:?} is not available on this CPU");
    out.clear();
    out.reserve(coords.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Bmi2 => unsafe { morton_keys_3d_bmi2(coords, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Avx2 => unsafe { avx2::morton_keys_3d(coords, out) },
        _ => {
            for c in coords {
                out.push(scalar::morton_key_3d(c[0], c[1], c[2]));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn morton_keys_3d_bmi2(coords: &[[u64; 3]], out: &mut Vec<u64>) {
    use std::arch::x86_64::_pdep_u64;
    for c in coords {
        out.push(
            _pdep_u64(c[0], MORTON3_MASK)
                | _pdep_u64(c[1], MORTON3_MASK << 1)
                | _pdep_u64(c[2], MORTON3_MASK << 2),
        );
    }
}

/// Fill `out` with the `(x, y, z)` decode of every key (clears `out`
/// first). Dispatches to the best tier once per batch.
pub fn morton_decodes_3d(keys: &[u64], out: &mut Vec<[u64; 3]>) {
    morton_decodes_3d_with(BatchIsa::detect(), keys, out);
}

/// [`morton_decodes_3d`] through an explicitly chosen tier, which must
/// be available on this CPU (asserted). Identical output for every tier.
pub fn morton_decodes_3d_with(isa: BatchIsa, keys: &[u64], out: &mut Vec<[u64; 3]>) {
    assert!(isa.is_available(), "{isa:?} is not available on this CPU");
    out.clear();
    out.reserve(keys.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Bmi2 => unsafe { morton_decodes_3d_bmi2(keys, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above.
        BatchIsa::Avx2 => unsafe { avx2::morton_decodes_3d(keys, out) },
        _ => {
            for &k in keys {
                let (x, y, z) = scalar::morton_decode_3d(k);
                out.push([x, y, z]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn morton_decodes_3d_bmi2(keys: &[u64], out: &mut Vec<[u64; 3]>) {
    use std::arch::x86_64::_pext_u64;
    for &k in keys {
        out.push([
            _pext_u64(k, MORTON3_MASK),
            _pext_u64(k, MORTON3_MASK << 1),
            _pext_u64(k, MORTON3_MASK << 2),
        ]);
    }
}

/// The AVX2 batch tier: four 64-bit keys per iteration through the same
/// magic-mask ladders as [`scalar`], vectorized lane-wise. Every kernel
/// resizes `out` (the caller has cleared and reserved it) and finishes
/// the `len % 4` tail with the scalar reference, so the output is
/// bit-identical to the scalar map for every length.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::scalar;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    unsafe fn splat(c: u64) -> __m256i {
        _mm256_set1_epi64x(c as i64)
    }

    /// Lane-wise [`scalar::part1by1`]: interleave the low 32 bits of
    /// each lane with zeros.
    #[target_feature(enable = "avx2")]
    unsafe fn part1by1(v: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(v, splat(0xffff_ffff));
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<16>(x)),
            splat(0x0000_ffff_0000_ffff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<8>(x)),
            splat(0x00ff_00ff_00ff_00ff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<4>(x)),
            splat(0x0f0f_0f0f_0f0f_0f0f),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<2>(x)),
            splat(0x3333_3333_3333_3333),
        );
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<1>(x)),
            splat(0x5555_5555_5555_5555),
        )
    }

    /// Lane-wise [`scalar::compact1by1`]: inverse of [`part1by1`].
    #[target_feature(enable = "avx2")]
    unsafe fn compact1by1(v: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(v, splat(0x5555_5555_5555_5555));
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<1>(x)),
            splat(0x3333_3333_3333_3333),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<2>(x)),
            splat(0x0f0f_0f0f_0f0f_0f0f),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<4>(x)),
            splat(0x00ff_00ff_00ff_00ff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<8>(x)),
            splat(0x0000_ffff_0000_ffff),
        );
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<16>(x)),
            splat(0xffff_ffff),
        )
    }

    /// Lane-wise [`scalar::part1by2`]: interleave the low 21 bits of
    /// each lane with two zeros each.
    #[target_feature(enable = "avx2")]
    unsafe fn part1by2(v: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(v, splat(0x1f_ffff));
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<32>(x)),
            splat(0x001f_0000_0000_ffff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<16>(x)),
            splat(0x001f_0000_ff00_00ff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<8>(x)),
            splat(0x100f_00f0_0f00_f00f),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<4>(x)),
            splat(0x10c3_0c30_c30c_30c3),
        );
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<2>(x)),
            splat(0x1249_2492_4924_9249),
        )
    }

    /// Lane-wise [`scalar::compact1by2`]: inverse of [`part1by2`].
    #[target_feature(enable = "avx2")]
    unsafe fn compact1by2(v: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(v, splat(0x1249_2492_4924_9249));
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<2>(x)),
            splat(0x10c3_0c30_c30c_30c3),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<4>(x)),
            splat(0x100f_00f0_0f00_f00f),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<8>(x)),
            splat(0x001f_0000_ff00_00ff),
        );
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<16>(x)),
            splat(0x001f_0000_0000_ffff),
        );
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<32>(x)),
            splat(0x1f_ffff),
        )
    }

    /// Batch 2-D Morton encode, four `[x, y]` pairs per iteration. The
    /// 64-bit unpacks split x and y lanes but interleave the two source
    /// registers 128-bit-half-wise, so the assembled keys come out as
    /// `[k0 k2 k1 k3]` and a cross-lane permute restores memory order.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn morton_keys(coords: &[[u64; 2]], out: &mut Vec<u64>) {
        let n = coords.len();
        out.resize(n, 0);
        let src = coords.as_ptr().cast::<__m256i>();
        let dst = out.as_mut_ptr();
        let quads = n / 4;
        for q in 0..quads {
            // a = [x0 y0 x1 y1], b = [x2 y2 x3 y3]
            let a = _mm256_loadu_si256(src.add(2 * q));
            let b = _mm256_loadu_si256(src.add(2 * q + 1));
            let xs = _mm256_unpacklo_epi64(a, b); // [x0 x2 x1 x3]
            let ys = _mm256_unpackhi_epi64(a, b); // [y0 y2 y1 y3]
            let key = _mm256_or_si256(part1by1(xs), _mm256_slli_epi64::<1>(part1by1(ys)));
            let key = _mm256_permute4x64_epi64::<0b11_01_10_00>(key);
            _mm256_storeu_si256(dst.add(4 * q).cast(), key);
        }
        for (i, c) in coords.iter().enumerate().skip(4 * quads) {
            *dst.add(i) = scalar::morton_key(c[0], c[1]);
        }
    }

    /// Batch 2-D Morton decode, four keys per iteration; the unpack +
    /// half-select permutes re-interleave the x/y lanes into `[x, y]`
    /// pair (AoS) order.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn morton_decodes(keys: &[u64], out: &mut Vec<[u64; 2]>) {
        let n = keys.len();
        out.resize(n, [0, 0]);
        let src = keys.as_ptr();
        let dst = out.as_mut_ptr().cast::<__m256i>();
        let quads = n / 4;
        for q in 0..quads {
            let k = _mm256_loadu_si256(src.add(4 * q).cast());
            let xs = compact1by1(k);
            let ys = compact1by1(_mm256_srli_epi64::<1>(k));
            let lo = _mm256_unpacklo_epi64(xs, ys); // [x0 y0 x2 y2]
            let hi = _mm256_unpackhi_epi64(xs, ys); // [x1 y1 x3 y3]
            _mm256_storeu_si256(dst.add(2 * q), _mm256_permute2x128_si256::<0x20>(lo, hi));
            _mm256_storeu_si256(
                dst.add(2 * q + 1),
                _mm256_permute2x128_si256::<0x31>(lo, hi),
            );
        }
        for (i, &k) in keys.iter().enumerate().skip(4 * quads) {
            let (x, y) = scalar::morton_decode(k);
            *dst.cast::<[u64; 2]>().add(i) = [x, y];
        }
    }

    /// Batch 3-D Morton encode, four `[x, y, z]` triples per iteration.
    /// The stride-3 AoS layout does not line up with 64-bit unpacks, so
    /// each axis register is gathered with lane inserts; the three
    /// ladders are still four keys wide.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn morton_keys_3d(coords: &[[u64; 3]], out: &mut Vec<u64>) {
        let n = coords.len();
        out.resize(n, 0);
        let dst = out.as_mut_ptr();
        let quads = n / 4;
        for q in 0..quads {
            let c = &coords[4 * q..4 * q + 4];
            let xs = _mm256_set_epi64x(
                c[3][0] as i64,
                c[2][0] as i64,
                c[1][0] as i64,
                c[0][0] as i64,
            );
            let ys = _mm256_set_epi64x(
                c[3][1] as i64,
                c[2][1] as i64,
                c[1][1] as i64,
                c[0][1] as i64,
            );
            let zs = _mm256_set_epi64x(
                c[3][2] as i64,
                c[2][2] as i64,
                c[1][2] as i64,
                c[0][2] as i64,
            );
            let key = _mm256_or_si256(
                part1by2(xs),
                _mm256_or_si256(
                    _mm256_slli_epi64::<1>(part1by2(ys)),
                    _mm256_slli_epi64::<2>(part1by2(zs)),
                ),
            );
            _mm256_storeu_si256(dst.add(4 * q).cast(), key);
        }
        for (i, c) in coords.iter().enumerate().skip(4 * quads) {
            *dst.add(i) = scalar::morton_key_3d(c[0], c[1], c[2]);
        }
    }

    /// Batch 3-D Morton decode, four keys per iteration; the per-axis
    /// results bounce through stack temporaries into the stride-3 AoS
    /// output.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn morton_decodes_3d(keys: &[u64], out: &mut Vec<[u64; 3]>) {
        let n = keys.len();
        out.resize(n, [0, 0, 0]);
        let quads = n / 4;
        for q in 0..quads {
            let k = _mm256_loadu_si256(keys.as_ptr().add(4 * q).cast());
            let (mut xs, mut ys, mut zs) = ([0u64; 4], [0u64; 4], [0u64; 4]);
            _mm256_storeu_si256(xs.as_mut_ptr().cast(), compact1by2(k));
            _mm256_storeu_si256(
                ys.as_mut_ptr().cast(),
                compact1by2(_mm256_srli_epi64::<1>(k)),
            );
            _mm256_storeu_si256(
                zs.as_mut_ptr().cast(),
                compact1by2(_mm256_srli_epi64::<2>(k)),
            );
            for j in 0..4 {
                out[4 * q + j] = [xs[j], ys[j], zs[j]];
            }
        }
        for i in 4 * quads..n {
            let (x, y, z) = scalar::morton_decode_3d(keys[i]);
            out[i] = [x, y, z];
        }
    }
}

/// Hilbert curve distance of the cell `(x, y)` in a `2^order x 2^order`
/// grid (quadrant-rotation construction, branchless inner loop).
///
/// Bit-identical to [`scalar::hilbert_key`]: for power-of-two `n` the
/// reflection `n-1-x` is `x ^ (n-1)`, so the data-dependent
/// reflect-and-swap becomes three XOR-mask steps, and the disjoint
/// per-level contributions `s²·((3·rx)^ry)` are OR-ed into their own bit
/// pair directly.
pub fn hilbert_key(order: u32, x: u64, y: u64) -> u64 {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(x < (1u64 << order) && y < (1u64 << order));
    let mask = (1u64 << order) - 1;
    let (mut x, mut y) = (x, y);
    let mut d: u64 = 0;
    for i in (0..order).rev() {
        let rx = (x >> i) & 1;
        let ry = (y >> i) & 1;
        d |= ((3 * rx) ^ ry) << (2 * i);
        // ry == 0: reflect both coordinates when rx == 1, then swap.
        let noswap = ry.wrapping_sub(1); // all ones iff ry == 0
        let flip = noswap & 0u64.wrapping_sub(rx) & mask;
        x ^= flip;
        y ^= flip;
        let t = (x ^ y) & noswap;
        x ^= t;
        y ^= t;
    }
    d
}

/// Inverse Hilbert: curve distance back to `(x, y)` in a
/// `2^order x 2^order` grid (branchless; bit-identical to
/// [`scalar::hilbert_decode`]).
pub fn hilbert_decode(order: u32, d: u64) -> (u64, u64) {
    let (mut x, mut y) = (0u64, 0u64);
    let mut mask = 0u64; // (1 << i) - 1, grown incrementally
    let mut t = d;
    for i in 0..order {
        let rx = 1 & (t >> 1);
        let ry = 1 & (t ^ rx);
        // Below level i both coordinates are < 2^i, so the reflection
        // `s-1-x` is an XOR with the level mask.
        let noswap = ry.wrapping_sub(1); // all ones iff ry == 0
        let flip = noswap & 0u64.wrapping_sub(rx) & mask;
        x ^= flip;
        y ^= flip;
        let s = (x ^ y) & noswap;
        x ^= s;
        y ^= s;
        x |= rx << i;
        y |= ry << i;
        mask = (mask << 1) | 1;
        t >>= 2;
    }
    (x, y)
}

/// Skilling's TransposeToAxes with a branchless inner loop: inverse of
/// [`scalar::axes_to_transpose`]. (The encode direction keeps the
/// branchy reference loop — measured faster there; only the decode
/// direction wins from going branchless.)
fn transpose_to_axes<const N: usize>(x: &mut [u64; N], order: u32) {
    // Gray decode by H ^ (H/2).
    let t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    for b in 1..order {
        let p = (1u64 << b) - 1;
        for i in (0..N).rev() {
            let set = 0u64.wrapping_sub((x[i] >> b) & 1);
            let t = (x[0] ^ x[i]) & p & !set;
            x[0] ^= t | (p & set);
            x[i] ^= t;
        }
    }
}

/// 3-D Hilbert curve distance of the cell `(x, y, z)` in a `(2^order)^3`
/// grid (Skilling's transpose construction).
///
/// The transpose-to-key packing — bit `b` of axis `i` to key bit
/// `b·3 + (2-i)` — is exactly a 3-D Morton interleave of the axes in
/// reverse significance order, so it rides the optimized
/// [`morton_key_3d`] instead of packing 63 key bits one at a time.
pub fn hilbert_key_3d(order: u32, x: u64, y: u64, z: u64) -> u64 {
    debug_assert!((1..=MAX_ORDER_3D).contains(&order));
    debug_assert!(x < (1u64 << order) && y < (1u64 << order) && z < (1u64 << order));
    let mut c = [x, y, z];
    scalar::axes_to_transpose(&mut c, order);
    morton_key_3d(c[2], c[1], c[0])
}

/// Inverse 3-D Hilbert: curve distance back to `(x, y, z)`.
pub fn hilbert_decode_3d(order: u32, d: u64) -> (u64, u64, u64) {
    debug_assert!((1..=MAX_ORDER_3D).contains(&order));
    // Morton de-interleave is the inverse key-to-transpose unpacking;
    // the per-axis masks drop any stray key bits above 3·order exactly
    // as the bit-at-a-time reference does.
    let axis_mask = (1u64 << order) - 1;
    let (t2, t1, t0) = morton_decode_3d(d);
    let mut c = [t0 & axis_mask, t1 & axis_mask, t2 & axis_mask];
    transpose_to_axes(&mut c, order);
    (c[0], c[1], c[2])
}

/// SFC key of a non-negative cell coordinate pair under the chosen curve.
/// `order` must satisfy `x, y < 2^order`; Morton ignores `order` beyond
/// the debug assertion.
#[inline]
pub fn sfc_key(curve: SfcCurve, order: u32, x: u64, y: u64) -> u64 {
    match curve {
        SfcCurve::Morton => morton_key(x, y),
        SfcCurve::Hilbert => hilbert_key(order, x, y),
    }
}

/// Dimension-generic SFC key (D ∈ {2, 3}): dispatches to the 2-D curves
/// (bit-identical to the historical implementation) or their 3-D
/// counterparts.
#[inline]
pub fn sfc_key_nd<const D: usize>(curve: SfcCurve, order: u32, c: [u64; D]) -> u64 {
    match D {
        2 => sfc_key(curve, order, c[0], c[1]),
        3 => match curve {
            SfcCurve::Morton => morton_key_3d(c[0], c[1], c[2]),
            SfcCurve::Hilbert => hilbert_key_3d(order.max(1), c[0], c[1], c[2]),
        },
        _ => panic!("sfc_key_nd: unsupported dimension {D}"),
    }
}

/// Dimension-generic batch SFC keys: fill `out` with the key of every
/// coordinate tuple under `curve` (clears `out` first). Bit-identical to
/// mapping [`sfc_key_nd`] over the slice; Morton rides the tiered batch
/// kernels ([`morton_keys`] / [`morton_keys_3d`], BMI2 or AVX2 per
/// [`BatchIsa::detect`]) so the partitioner's unit-ordering pass pays
/// one feature dispatch per snapshot instead of one stub call per cell.
pub fn sfc_keys_nd<const D: usize>(
    curve: SfcCurve,
    order: u32,
    coords: &[[u64; D]],
    out: &mut Vec<u64>,
) {
    match D {
        2 => {
            // SAFETY: D == 2, so `[u64; D]` and `[u64; 2]` are the same
            // layout; the slice cast is a no-op reinterpretation.
            let c2: &[[u64; 2]] =
                unsafe { std::slice::from_raw_parts(coords.as_ptr().cast(), coords.len()) };
            match curve {
                SfcCurve::Morton => morton_keys(c2, out),
                SfcCurve::Hilbert => {
                    out.clear();
                    out.reserve(c2.len());
                    for c in c2 {
                        out.push(hilbert_key(order, c[0], c[1]));
                    }
                }
            }
        }
        3 => {
            // SAFETY: D == 3; same no-op slice reinterpretation as above.
            let c3: &[[u64; 3]] =
                unsafe { std::slice::from_raw_parts(coords.as_ptr().cast(), coords.len()) };
            match curve {
                SfcCurve::Morton => morton_keys_3d(c3, out),
                SfcCurve::Hilbert => {
                    // Transpose every tuple (branchy reference loop —
                    // the fast direction for encode), then hand the
                    // whole batch to the tiered Morton kernel for the
                    // key packing. Identical to per-key
                    // [`hilbert_key_3d`], which packs one key at a
                    // time via the scalar Morton interleave.
                    let ord = order.max(1);
                    let transposed: Vec<[u64; 3]> = c3
                        .iter()
                        .map(|&[x, y, z]| {
                            let mut c = [x, y, z];
                            scalar::axes_to_transpose(&mut c, ord);
                            [c[2], c[1], c[0]]
                        })
                        .collect();
                    morton_keys_3d(&transposed, out);
                }
            }
        }
        _ => panic!("sfc_keys_nd: unsupported dimension {D}"),
    }
}

/// Smallest `order` such that a `2^order` cube contains `n` cells per
/// side.
pub fn order_for(n: u64) -> u32 {
    let mut order = 0;
    while (1u64 << order) < n {
        order += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn morton_roundtrip() {
        for x in 0..17u64 {
            for y in 0..17u64 {
                let k = morton_key(x, y);
                assert_eq!(morton_decode(k), (x, y));
            }
        }
    }

    #[test]
    fn batch_keys_match_per_key_dispatch() {
        let c2: Vec<[u64; 2]> = (0..16).flat_map(|y| (0..16).map(move |x| [x, y])).collect();
        let c3: Vec<[u64; 3]> = (0..8)
            .flat_map(|z| (0..8).flat_map(move |y| (0..8).map(move |x| [x, y, z])))
            .collect();
        let mut out = Vec::new();
        for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
            sfc_keys_nd::<2>(curve, 4, &c2, &mut out);
            let want: Vec<u64> = c2.iter().map(|&c| sfc_key_nd::<2>(curve, 4, c)).collect();
            assert_eq!(out, want, "2-D {curve:?}");
            sfc_keys_nd::<3>(curve, 3, &c3, &mut out);
            let want: Vec<u64> = c3.iter().map(|&c| sfc_key_nd::<3>(curve, 3, c)).collect();
            assert_eq!(out, want, "3-D {curve:?}");
        }
    }

    #[test]
    fn morton_first_cells() {
        // Z-order over a 2x2 block: (0,0), (1,0), (0,1), (1,1).
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
    }

    #[test]
    fn morton_3d_roundtrip_and_order() {
        assert_eq!(morton_key_3d(0, 0, 0), 0);
        assert_eq!(morton_key_3d(1, 0, 0), 1);
        assert_eq!(morton_key_3d(0, 1, 0), 2);
        assert_eq!(morton_key_3d(0, 0, 1), 4);
        for x in 0..9u64 {
            for y in 0..9u64 {
                for z in 0..9u64 {
                    assert_eq!(morton_decode_3d(morton_key_3d(x, y, z)), (x, y, z));
                }
            }
        }
        // High coordinates still roundtrip (21 bits per axis).
        let big = (1u64 << MAX_ORDER_3D) - 1;
        assert_eq!(morton_decode_3d(morton_key_3d(big, 0, big)), (big, 0, big));
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let order = 4;
        let n = 1u64 << order;
        let mut seen = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_key(order, x, y);
                assert!(d < n * n);
                assert!(seen.insert(d), "duplicate key {d} at ({x},{y})");
                assert_eq!(hilbert_decode(order, d), (x, y));
            }
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining property of the Hilbert curve: consecutive keys map
        // to 4-adjacent cells. Morton does not have it; Hilbert must.
        let order = 5;
        let n = 1u64 << order;
        let mut prev = hilbert_decode(order, 0);
        for d in 1..n * n {
            let cur = hilbert_decode(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_3d_is_a_bijection() {
        let order = 3;
        let n = 1u64 << order;
        let mut seen = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let d = hilbert_key_3d(order, x, y, z);
                    assert!(d < n * n * n);
                    assert!(seen.insert(d), "duplicate key {d} at ({x},{y},{z})");
                    assert_eq!(hilbert_decode_3d(order, d), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn hilbert_3d_consecutive_cells_are_adjacent() {
        let order = 3;
        let n = 1u64 << order;
        let mut prev = hilbert_decode_3d(order, 0);
        for d in 1..n * n * n {
            let cur = hilbert_decode_3d(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs()
                + (cur.1 as i64 - prev.1 as i64).abs()
                + (cur.2 as i64 - prev.2 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn morton_has_jumps_hilbert_does_not() {
        // Sanity check that the two curves are genuinely different.
        let order = 3;
        let n = 1u64 << order;
        let mut morton_jumps = 0;
        for d in 1..n * n {
            let a = morton_decode(d - 1);
            let b = morton_decode(d);
            if (b.0 as i64 - a.0 as i64).abs() + (b.1 as i64 - a.1 as i64).abs() > 1 {
                morton_jumps += 1;
            }
        }
        assert!(morton_jumps > 0);
    }

    #[test]
    fn order_for_sizes() {
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(64), 6);
        assert_eq!(order_for(65), 7);
    }

    #[test]
    fn sfc_key_dispatch() {
        assert_eq!(sfc_key(SfcCurve::Morton, 4, 3, 5), morton_key(3, 5));
        assert_eq!(sfc_key(SfcCurve::Hilbert, 4, 3, 5), hilbert_key(4, 3, 5));
        assert_eq!(
            sfc_key_nd::<2>(SfcCurve::Hilbert, 4, [3, 5]),
            hilbert_key(4, 3, 5)
        );
        assert_eq!(
            sfc_key_nd::<3>(SfcCurve::Morton, 4, [3, 5, 7]),
            morton_key_3d(3, 5, 7)
        );
        assert_eq!(
            sfc_key_nd::<3>(SfcCurve::Hilbert, 4, [3, 5, 7]),
            hilbert_key_3d(4, 3, 5, 7)
        );
    }

    /// Exhaustive small-domain agreement with the scalar references, on
    /// top of the random-coordinate property tests in
    /// `tests/properties.rs`.
    #[test]
    fn optimized_matches_scalar_exhaustively_small() {
        for x in 0..32u64 {
            for y in 0..32u64 {
                assert_eq!(morton_key(x, y), scalar::morton_key(x, y));
                assert_eq!(hilbert_key(5, x, y), scalar::hilbert_key(5, x, y));
                for z in 0..8u64 {
                    assert_eq!(
                        morton_key_3d(x, y, z),
                        scalar::morton_key_3d(x, y, z),
                        "morton3d({x},{y},{z})"
                    );
                    assert_eq!(
                        hilbert_key_3d(5, x, y, z),
                        scalar::hilbert_key_3d(5, x, y, z),
                        "hilbert3d({x},{y},{z})"
                    );
                }
            }
        }
        for d in 0..1024u64 {
            assert_eq!(morton_decode(d), scalar::morton_decode(d));
            assert_eq!(hilbert_decode(5, d), scalar::hilbert_decode(5, d));
            assert_eq!(morton_decode_3d(d), scalar::morton_decode_3d(d));
            assert_eq!(hilbert_decode_3d(4, d), scalar::hilbert_decode_3d(4, d));
        }
    }
}
