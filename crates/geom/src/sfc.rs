//! Space-filling curves: Morton (Z-order) and Hilbert, in 2-D and 3-D.
//!
//! Domain-based SAMR partitioners (Parashar–Browne style, and the coarse
//! Core partitioning step of the hybrid partitioner) linearize the base
//! domain with a space-filling curve and cut the 1-D sequence into
//! processor chunks. The paper notes (§5.2) that a *partially ordered* SFC
//! mapping trades ordering quality for speed and may inflate data
//! migration — both full and partial orderings are provided so that this
//! trade-off is reproducible (ablation `ablation_sfc`).
//!
//! The 2-D curves are the historical implementations (bit-identical keys
//! to the original 2-D code base); the 3-D Hilbert curve uses Skilling's
//! transpose construction ("Programming the Hilbert curve", AIP 2004),
//! which generalizes the quadrant-rotation idea to any dimension.

use serde::{Deserialize, Serialize};

/// Which space-filling curve to use for domain linearization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SfcCurve {
    /// Morton / Z-order: bit interleaving. Cheap, moderate locality.
    Morton,
    /// Hilbert curve: better locality (no long jumps), slightly costlier.
    Hilbert,
}

/// Number of bits per axis supported by the `u64` keys in 2-D (32 bits
/// per axis when interleaved).
pub const MAX_ORDER: u32 = 31;

/// Number of bits per axis supported by the `u64` keys in 3-D (21 bits
/// per axis when interleaved).
pub const MAX_ORDER_3D: u32 = 21;

/// Interleave the low 32 bits of `v` with zeros ("part 1 by 1").
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut x = v & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: compact every other bit.
#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x
}

/// Interleave the low 21 bits of `v` with two zeros each ("part 1 by 2").
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff;
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: compact every third bit.
#[inline]
fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Morton key of a non-negative cell coordinate pair.
#[inline]
pub fn morton_key(x: u64, y: u64) -> u64 {
    debug_assert!(x < (1 << 32) && y < (1 << 32));
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse Morton: key back to `(x, y)`.
#[inline]
pub fn morton_decode(key: u64) -> (u64, u64) {
    (compact1by1(key), compact1by1(key >> 1))
}

/// 3-D Morton key of a non-negative cell coordinate triple.
#[inline]
pub fn morton_key_3d(x: u64, y: u64, z: u64) -> u64 {
    debug_assert!(x < (1 << MAX_ORDER_3D) && y < (1 << MAX_ORDER_3D) && z < (1 << MAX_ORDER_3D));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Inverse 3-D Morton: key back to `(x, y, z)`.
#[inline]
pub fn morton_decode_3d(key: u64) -> (u64, u64, u64) {
    (
        compact1by2(key),
        compact1by2(key >> 1),
        compact1by2(key >> 2),
    )
}

/// Hilbert curve distance of the cell `(x, y)` in a `2^order x 2^order`
/// grid, using the classic quadrant-rotation construction.
pub fn hilbert_key(order: u32, x: u64, y: u64) -> u64 {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(x < (1u64 << order) && y < (1u64 << order));
    let n = 1u64 << order;
    let (mut x, mut y) = (x, y);
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-square is traversed in canonical
        // orientation on the next iteration.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse Hilbert: curve distance back to `(x, y)` in a
/// `2^order x 2^order` grid.
pub fn hilbert_decode(order: u32, d: u64) -> (u64, u64) {
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Skilling's AxesToTranspose: convert coordinates (in place) into the
/// "transpose" form of the Hilbert index, `order` bits per axis.
fn axes_to_transpose<const N: usize>(x: &mut [u64; N], order: u32) {
    let m = 1u64 << (order - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    let mut q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Skilling's TransposeToAxes: inverse of [`axes_to_transpose`].
fn transpose_to_axes<const N: usize>(x: &mut [u64; N], order: u32) {
    let n = 1u64 << order;
    // Gray decode by H ^ (H/2).
    let mut t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u64;
    while q != n {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack a transpose-form Hilbert index into a single `u64` key: bit `b`
/// of axis `i` becomes bit `(b·N + (N-1-i))` of the key (most significant
/// axis bit first).
fn transpose_to_key<const N: usize>(x: &[u64; N], order: u32) -> u64 {
    let mut key = 0u64;
    for b in (0..order).rev() {
        for &v in x.iter() {
            key = (key << 1) | ((v >> b) & 1);
        }
    }
    key
}

/// Unpack a `u64` key into transpose form (inverse of
/// [`transpose_to_key`]).
fn key_to_transpose<const N: usize>(key: u64, order: u32) -> [u64; N] {
    let mut x = [0u64; N];
    let total = order * N as u32;
    for bit in 0..total {
        let b = total - 1 - bit; // position in the key, msb first
        let axis = (bit as usize) % N;
        let level = order - 1 - (bit / N as u32);
        x[axis] |= ((key >> b) & 1) << level;
    }
    x
}

/// 3-D Hilbert curve distance of the cell `(x, y, z)` in a `(2^order)^3`
/// grid (Skilling's transpose construction).
pub fn hilbert_key_3d(order: u32, x: u64, y: u64, z: u64) -> u64 {
    debug_assert!((1..=MAX_ORDER_3D).contains(&order));
    debug_assert!(x < (1u64 << order) && y < (1u64 << order) && z < (1u64 << order));
    let mut c = [x, y, z];
    axes_to_transpose(&mut c, order);
    transpose_to_key(&c, order)
}

/// Inverse 3-D Hilbert: curve distance back to `(x, y, z)`.
pub fn hilbert_decode_3d(order: u32, d: u64) -> (u64, u64, u64) {
    debug_assert!((1..=MAX_ORDER_3D).contains(&order));
    let mut c: [u64; 3] = key_to_transpose(d, order);
    transpose_to_axes(&mut c, order);
    (c[0], c[1], c[2])
}

/// SFC key of a non-negative cell coordinate pair under the chosen curve.
/// `order` must satisfy `x, y < 2^order`; Morton ignores `order` beyond
/// the debug assertion.
#[inline]
pub fn sfc_key(curve: SfcCurve, order: u32, x: u64, y: u64) -> u64 {
    match curve {
        SfcCurve::Morton => morton_key(x, y),
        SfcCurve::Hilbert => hilbert_key(order, x, y),
    }
}

/// Dimension-generic SFC key (D ∈ {2, 3}): dispatches to the 2-D curves
/// (bit-identical to the historical implementation) or their 3-D
/// counterparts.
#[inline]
pub fn sfc_key_nd<const D: usize>(curve: SfcCurve, order: u32, c: [u64; D]) -> u64 {
    match D {
        2 => sfc_key(curve, order, c[0], c[1]),
        3 => match curve {
            SfcCurve::Morton => morton_key_3d(c[0], c[1], c[2]),
            SfcCurve::Hilbert => hilbert_key_3d(order.max(1), c[0], c[1], c[2]),
        },
        _ => panic!("sfc_key_nd: unsupported dimension {D}"),
    }
}

/// Smallest `order` such that a `2^order` cube contains `n` cells per
/// side.
pub fn order_for(n: u64) -> u32 {
    let mut order = 0;
    while (1u64 << order) < n {
        order += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn morton_roundtrip() {
        for x in 0..17u64 {
            for y in 0..17u64 {
                let k = morton_key(x, y);
                assert_eq!(morton_decode(k), (x, y));
            }
        }
    }

    #[test]
    fn morton_first_cells() {
        // Z-order over a 2x2 block: (0,0), (1,0), (0,1), (1,1).
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
    }

    #[test]
    fn morton_3d_roundtrip_and_order() {
        assert_eq!(morton_key_3d(0, 0, 0), 0);
        assert_eq!(morton_key_3d(1, 0, 0), 1);
        assert_eq!(morton_key_3d(0, 1, 0), 2);
        assert_eq!(morton_key_3d(0, 0, 1), 4);
        for x in 0..9u64 {
            for y in 0..9u64 {
                for z in 0..9u64 {
                    assert_eq!(morton_decode_3d(morton_key_3d(x, y, z)), (x, y, z));
                }
            }
        }
        // High coordinates still roundtrip (21 bits per axis).
        let big = (1u64 << MAX_ORDER_3D) - 1;
        assert_eq!(morton_decode_3d(morton_key_3d(big, 0, big)), (big, 0, big));
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let order = 4;
        let n = 1u64 << order;
        let mut seen = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_key(order, x, y);
                assert!(d < n * n);
                assert!(seen.insert(d), "duplicate key {d} at ({x},{y})");
                assert_eq!(hilbert_decode(order, d), (x, y));
            }
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining property of the Hilbert curve: consecutive keys map
        // to 4-adjacent cells. Morton does not have it; Hilbert must.
        let order = 5;
        let n = 1u64 << order;
        let mut prev = hilbert_decode(order, 0);
        for d in 1..n * n {
            let cur = hilbert_decode(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_3d_is_a_bijection() {
        let order = 3;
        let n = 1u64 << order;
        let mut seen = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let d = hilbert_key_3d(order, x, y, z);
                    assert!(d < n * n * n);
                    assert!(seen.insert(d), "duplicate key {d} at ({x},{y},{z})");
                    assert_eq!(hilbert_decode_3d(order, d), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn hilbert_3d_consecutive_cells_are_adjacent() {
        let order = 3;
        let n = 1u64 << order;
        let mut prev = hilbert_decode_3d(order, 0);
        for d in 1..n * n * n {
            let cur = hilbert_decode_3d(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs()
                + (cur.1 as i64 - prev.1 as i64).abs()
                + (cur.2 as i64 - prev.2 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn morton_has_jumps_hilbert_does_not() {
        // Sanity check that the two curves are genuinely different.
        let order = 3;
        let n = 1u64 << order;
        let mut morton_jumps = 0;
        for d in 1..n * n {
            let a = morton_decode(d - 1);
            let b = morton_decode(d);
            if (b.0 as i64 - a.0 as i64).abs() + (b.1 as i64 - a.1 as i64).abs() > 1 {
                morton_jumps += 1;
            }
        }
        assert!(morton_jumps > 0);
    }

    #[test]
    fn order_for_sizes() {
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(64), 6);
        assert_eq!(order_for(65), 7);
    }

    #[test]
    fn sfc_key_dispatch() {
        assert_eq!(sfc_key(SfcCurve::Morton, 4, 3, 5), morton_key(3, 5));
        assert_eq!(sfc_key(SfcCurve::Hilbert, 4, 3, 5), hilbert_key(4, 3, 5));
        assert_eq!(
            sfc_key_nd::<2>(SfcCurve::Hilbert, 4, [3, 5]),
            hilbert_key(4, 3, 5)
        );
        assert_eq!(
            sfc_key_nd::<3>(SfcCurve::Morton, 4, [3, 5, 7]),
            morton_key_3d(3, 5, 7)
        );
        assert_eq!(
            sfc_key_nd::<3>(SfcCurve::Hilbert, 4, [3, 5, 7]),
            hilbert_key_3d(4, 3, 5, 7)
        );
    }
}
